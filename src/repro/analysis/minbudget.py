"""Minimum budget search: the machinery behind Figures 1 and 2.

Given a server period ``T`` and a task set, find the smallest budget ``Q``
such that the set is schedulable inside the reservation:

- :func:`min_budget_dedicated` — one task in its own CBS, tested against
  the dedicated supply bound (Figure 1's setting);
- :func:`min_budget_shared_rm` — several tasks sharing one reservation
  with Rate Monotonic priorities inside, tested with the exact
  request-bound / supply-bound comparison at the classic testing points
  (Figure 2's setting);
- :func:`min_bandwidth_shared_edf` — same but EDF inside the server, for
  the ablation of the intra-server policy.

All tests are monotone in ``Q``, so a binary search converges; ``tol``
bounds the absolute error on the returned budget.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.analysis.demand import edf_dbf, edf_deadline_points, rm_arrival_points, rm_rbf
from repro.analysis.supply import cbs_dedicated_sbf, periodic_sbf
from repro.analysis.tasks import Task


def _binary_search_budget(
    period: float, feasible: Callable[[float], bool], tol: float
) -> float | None:
    """Smallest Q in (0, period] with ``feasible(Q)`` true, or None."""
    if not feasible(period):
        return None
    lo, hi = 0.0, period
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi


def dedicated_schedulable(task: Task, budget: float, period: float) -> bool:
    """Sufficient test: one task in a dedicated CBS (Q, T).

    The job must fit inside the worst-case supply by its deadline, and the
    reserved rate must cover the long-run utilisation so backlog cannot
    accumulate across jobs.
    """
    if budget <= 0:
        return False
    if budget > period:
        return True  # caller clamps; treat as full processor
    rate_ok = budget / period >= task.utilisation - 1e-12
    return rate_ok and cbs_dedicated_sbf(task.relative_deadline, budget, period) >= task.cost - 1e-9


def min_budget_dedicated(task: Task, period: float, *, tol: float = 1e-6) -> float | None:
    """Minimum budget to schedule ``task`` in a dedicated CBS of period
    ``period``; None when even a full budget does not suffice."""
    return _binary_search_budget(period, lambda q: dedicated_schedulable(task, q, period), tol)


def min_bandwidth_dedicated(task: Task, period: float, *, tol: float = 1e-6) -> float | None:
    """Minimum bandwidth Q/T for :func:`min_budget_dedicated` (Figure 1)."""
    q = min_budget_dedicated(task, period, tol=tol)
    return None if q is None else q / period


def shared_rm_schedulable(tasks: Sequence[Task], budget: float, period: float) -> bool:
    """Exact test: ``tasks`` under RM inside a shared reservation (Q, T).

    For every task there must exist a time ``t`` before its deadline where
    the cumulated request bound fits in the periodic-resource supply.
    """
    if budget <= 0:
        return False
    ordered = sorted(tasks, key=lambda t: (t.period,))
    for i in range(len(ordered)):
        points = rm_arrival_points(i, ordered)
        ok = any(
            rm_rbf(i, ordered, t) <= periodic_sbf(t, budget, period) + 1e-9 for t in points
        )
        if not ok:
            return False
    return True


def min_budget_shared_rm(tasks: Sequence[Task], period: float, *, tol: float = 1e-6) -> float | None:
    """Minimum budget for ``tasks`` sharing one RM-scheduled reservation."""
    return _binary_search_budget(period, lambda q: shared_rm_schedulable(tasks, q, period), tol)


def min_bandwidth_shared_rm(tasks: Sequence[Task], period: float, *, tol: float = 1e-6) -> float | None:
    """Minimum bandwidth Q/T for :func:`min_budget_shared_rm` (Figure 2)."""
    q = min_budget_shared_rm(tasks, period, tol=tol)
    return None if q is None else q / period


def _hyperperiod(tasks: Sequence[Task]) -> float:
    periods = [t.period for t in tasks]
    if all(float(p).is_integer() for p in periods):
        return float(math.lcm(*(int(p) for p in periods)))
    # fall back to a pragmatic horizon for non-integer periods
    return max(periods) * 2 * len(tasks)


def shared_edf_schedulable(tasks: Sequence[Task], budget: float, period: float) -> bool:
    """Exact test: ``tasks`` under EDF inside a shared reservation (Q, T):
    ``dbf(t) <= sbf(t)`` at every deadline point up to the hyperperiod."""
    if budget <= 0:
        return False
    horizon = _hyperperiod(tasks)
    for t in edf_deadline_points(tasks, horizon):
        if edf_dbf(tasks, t) > periodic_sbf(t, budget, period) + 1e-9:
            return False
    return True


def min_bandwidth_shared_edf(tasks: Sequence[Task], period: float, *, tol: float = 1e-6) -> float | None:
    """Minimum bandwidth for EDF inside a shared reservation."""
    q = _binary_search_budget(period, lambda q: shared_edf_schedulable(tasks, q, period), tol)
    return None if q is None else q / period
