"""Hierarchical schedulability analysis (§3.2, Figures 1 and 2).

Pure real-time mathematics, independent of the simulator:

- :mod:`.supply` — supply bound functions of a CPU reservation: the
  dedicated-CBS lower bound (worst-case initial service delay ``T - Q``)
  and the Shin & Lee periodic-resource bound (delay ``2(T - Q)``) used
  when several tasks share one server;
- :mod:`.demand` — EDF demand bound and fixed-priority request bound
  functions;
- :mod:`.minbudget` — minimum budget / bandwidth search for a server
  period against a task set, the machinery behind both figures.

All functions are unit-agnostic: times may be ints or floats in any unit,
as long as they are consistent.
"""

from repro.analysis.demand import edf_dbf, edf_deadline_points, rm_rbf
from repro.analysis.minbudget import (
    min_bandwidth_dedicated,
    min_bandwidth_shared_edf,
    min_bandwidth_shared_rm,
    min_budget_dedicated,
    min_budget_shared_rm,
)
from repro.analysis.response import (
    edf_schedulable_utilisation,
    liu_layland_bound,
    rm_response_time,
    rm_response_times,
    rm_schedulable_by_bound,
    rm_schedulable_exact,
)
from repro.analysis.supply import cbs_dedicated_sbf, periodic_sbf, sbf_breakpoints
from repro.analysis.tasks import Task

__all__ = [
    "Task",
    "liu_layland_bound",
    "rm_schedulable_by_bound",
    "rm_response_time",
    "rm_response_times",
    "rm_schedulable_exact",
    "edf_schedulable_utilisation",
    "cbs_dedicated_sbf",
    "periodic_sbf",
    "sbf_breakpoints",
    "edf_dbf",
    "edf_deadline_points",
    "rm_rbf",
    "min_budget_dedicated",
    "min_bandwidth_dedicated",
    "min_budget_shared_rm",
    "min_bandwidth_shared_rm",
    "min_bandwidth_shared_edf",
]
