"""Classical fixed-priority and EDF schedulability results.

Complements the supply/demand machinery with the closed-form tests the
real-time literature leans on (and the paper cites through [16, 19]):

- :func:`liu_layland_bound` — the 1973 utilisation bound ``n(2^{1/n}−1)``
  under which *any* implicit-deadline set is RM-schedulable;
- :func:`rm_response_time` / :func:`rm_response_times` — the exact
  response-time iteration (Joseph & Pandya / Audsley) for a dedicated
  processor;
- :func:`edf_schedulable_utilisation` — EDF's exact U ≤ 1 condition for
  implicit deadlines.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.analysis.tasks import Task, total_utilisation


def liu_layland_bound(n: int) -> float:
    """The RM utilisation bound for ``n`` tasks: ``n(2^{1/n} - 1)``.

    >>> round(liu_layland_bound(1), 3)
    1.0
    >>> round(liu_layland_bound(2), 3)
    0.828
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def rm_schedulable_by_bound(tasks: Sequence[Task]) -> bool:
    """Sufficient Liu & Layland check (may reject schedulable sets)."""
    if not tasks:
        return True
    return total_utilisation(tasks) <= liu_layland_bound(len(tasks)) + 1e-12


def rm_response_time(
    task_index: int, tasks: Sequence[Task], *, max_iterations: int = 10_000
) -> float | None:
    """Exact worst-case response time of ``tasks[task_index]`` under RM.

    Priorities follow the Rate Monotonic order of the sequence (shorter
    period first; ties by position).  Returns ``None`` when the iteration
    exceeds the task's deadline (the task is unschedulable).
    """
    me = tasks[task_index]
    higher = [
        other
        for j, other in enumerate(tasks)
        if j != task_index
        and (other.period < me.period or (other.period == me.period and j < task_index))
    ]
    response = me.cost
    for _ in range(max_iterations):
        interference = sum(math.ceil(response / h.period) * h.cost for h in higher)
        nxt = me.cost + interference
        if nxt == response:
            return response if response <= me.relative_deadline else None
        if nxt > me.relative_deadline:
            return None
        response = nxt
    raise RuntimeError("response-time iteration did not converge")


def rm_response_times(tasks: Sequence[Task]) -> list[float | None]:
    """Worst-case response times of every task (None = deadline miss)."""
    return [rm_response_time(i, tasks) for i in range(len(tasks))]


def rm_schedulable_exact(tasks: Sequence[Task]) -> bool:
    """Exact RM schedulability through response-time analysis."""
    return all(r is not None for r in rm_response_times(tasks))


def edf_schedulable_utilisation(tasks: Sequence[Task]) -> bool:
    """EDF's necessary-and-sufficient U ≤ 1 test (implicit deadlines only).

    Raises :class:`ValueError` when any task has a constrained deadline —
    the utilisation test is not sufficient there; use the demand bound
    machinery in :mod:`repro.analysis.minbudget` instead.
    """
    for t in tasks:
        if t.relative_deadline != t.period:
            raise ValueError(
                "utilisation test requires implicit deadlines; use the "
                "demand-bound test for constrained deadlines"
            )
    return total_utilisation(tasks) <= 1.0 + 1e-12
