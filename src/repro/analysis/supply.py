"""Supply bound functions of a CPU reservation (Q, T).

``sbf(t)`` lower-bounds the CPU time a reservation delivers in *any*
interval of length ``t``.  Two variants matter here:

- :func:`cbs_dedicated_sbf` — a CBS serving a **single** task.  The CBS
  sets the server deadline at the task's arrival, so the worst case is an
  initial service delay of ``T - Q`` followed by ``Q`` units of service in
  every server period.  This is the model behind Figure 1 (and the
  analysis of the authors' earlier work [8]).

- :func:`periodic_sbf` — the Shin & Lee periodic resource model, for a
  reservation **shared** by several tasks whose arrivals are not aligned
  with the server: worst-case initial delay ``2(T - Q)``.  This is the
  hierarchical-scheduling model behind Figure 2.

Both are piecewise linear, nondecreasing, and superadditive-ish; the
breakpoint helper exposes the corners for exact schedulability tests.
"""

from __future__ import annotations


def _validate(budget: float, period: float) -> None:
    if budget <= 0 or period <= 0:
        raise ValueError(f"budget and period must be positive, got Q={budget}, T={period}")
    if budget > period:
        raise ValueError(f"budget {budget} exceeds period {period}")


def _delayed_periodic_supply(t: float, budget: float, period: float, delay: float) -> float:
    """Supply of a pattern: ``delay`` of nothing, then Q-per-T forever."""
    if t <= delay:
        return 0.0
    rel = t - delay
    k = int(rel // period)
    rem = rel - k * period
    return k * budget + min(budget, rem)


def cbs_dedicated_sbf(t: float, budget: float, period: float) -> float:
    """Worst-case supply of a dedicated CBS (Q, T) in an interval ``t``.

    Initial delay ``T - Q`` (deadline set at arrival; budget delivered
    just before it), then worst-case ``Q`` per ``T``.
    """
    _validate(budget, period)
    return _delayed_periodic_supply(t, budget, period, period - budget)


def periodic_sbf(t: float, budget: float, period: float) -> float:
    """Shin & Lee supply bound of a periodic resource (Q, T).

    Initial delay ``2(T - Q)``: the interval may open right after a
    back-to-back pair of supply chunks.
    """
    _validate(budget, period)
    return _delayed_periodic_supply(t, budget, period, 2.0 * (period - budget))


def sbf_breakpoints(horizon: float, budget: float, period: float, *, dedicated: bool) -> list[float]:
    """Slope-change points of the chosen sbf in ``(0, horizon]``.

    The sbf alternates between slope 1 (service) and slope 0 (gap); exact
    schedulability checks only need these corners plus the horizon.
    """
    _validate(budget, period)
    if horizon <= 0:
        return []
    delay = (period - budget) if dedicated else 2.0 * (period - budget)
    points: list[float] = []
    k = 0
    while True:
        service_start = delay + k * period
        service_end = service_start + budget
        if service_start >= horizon:
            break
        points.append(service_start)
        if service_end < horizon:
            points.append(service_end)
        k += 1
    points.append(horizon)
    return points
