"""Task model for the analysis layer."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    """A periodic task (C, P) with an optional constrained deadline.

    ``cost`` is the worst-case execution time, ``period`` the minimum
    inter-arrival time; the deadline defaults to the period (the paper's
    implicit-deadline model).
    """

    cost: float
    period: float
    deadline: float | None = None

    def __post_init__(self) -> None:
        """Validate the task parameters."""
        if self.cost <= 0 or self.period <= 0:
            raise ValueError(f"cost and period must be positive, got {self}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.cost > self.relative_deadline:
            raise ValueError(f"cost exceeds deadline: {self}")

    @property
    def relative_deadline(self) -> float:
        """The effective relative deadline (period when implicit)."""
        return self.deadline if self.deadline is not None else self.period

    @property
    def utilisation(self) -> float:
        """C / P."""
        return self.cost / self.period


def total_utilisation(tasks: Iterable[Task]) -> float:
    """Σ C_i / P_i of a collection of :class:`Task`."""
    return sum(t.utilisation for t in tasks)
