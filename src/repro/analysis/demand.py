"""Demand side: EDF demand bound and fixed-priority request bound.

- :func:`edf_dbf` — Baruah's demand bound function: the total execution
  the task set can *require* to complete inside any interval of length
  ``t`` under EDF;
- :func:`rm_rbf` — the request bound function of one task under
  preemptive fixed priorities: its own cost plus all higher-priority
  interference released in ``[0, t]`` (Lehoczky/Sha/Ding exact analysis).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.analysis.tasks import Task


def edf_dbf(tasks: Sequence[Task], t: float) -> float:
    """EDF demand bound of ``tasks`` in an interval of length ``t``.

    ``dbf(t) = Σ_i max(0, floor((t - D_i)/P_i) + 1) · C_i``
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t}")
    total = 0.0
    for task in tasks:
        jobs = math.floor((t - task.relative_deadline) / task.period) + 1
        if jobs > 0:
            total += jobs * task.cost
    return total


def edf_deadline_points(tasks: Sequence[Task], horizon: float) -> list[float]:
    """Absolute deadlines of synchronous-release jobs in ``(0, horizon]``.

    These are the only points where :func:`edf_dbf` steps, hence the only
    points an exact EDF schedulability check needs.
    """
    points: set[float] = set()
    for task in tasks:
        d = task.relative_deadline
        while d <= horizon:
            points.add(d)
            d += task.period
    return sorted(points)


def rm_rbf(task_index: int, tasks: Sequence[Task], t: float) -> float:
    """Request bound of ``tasks[task_index]`` at ``t`` under RM priorities.

    Priorities are implied by the Rate Monotonic order of the ``tasks``
    sequence itself: every task with a strictly shorter period (ties:
    earlier position) pre-empts.

    ``rbf_i(t) = C_i + Σ_{j ∈ hp(i)} ceil(t/P_j) · C_j``
    """
    if t <= 0:
        raise ValueError(f"t must be > 0, got {t}")
    me = tasks[task_index]
    total = me.cost
    for j, other in enumerate(tasks):
        if j == task_index:
            continue
        if other.period < me.period or (other.period == me.period and j < task_index):
            total += math.ceil(t / other.period) * other.cost
    return total


def rm_arrival_points(task_index: int, tasks: Sequence[Task]) -> list[float]:
    """Testing points for the exact RM check of ``tasks[task_index]``:
    all higher-priority arrival instants up to the deadline, plus the
    deadline itself."""
    me = tasks[task_index]
    horizon = me.relative_deadline
    points: set[float] = {horizon}
    for j, other in enumerate(tasks):
        if j == task_index:
            continue
        if other.period < me.period or (other.period == me.period and j < task_index):
            k = 1
            while k * other.period < horizon:
                points.add(k * other.period)
                k += 1
    return sorted(points)
