"""SC pack — contracts of the discrete-event simulation kernel.

These rules encode invariants that the kernel cannot cheaply check at
runtime: an instruction that is constructed but never ``yield``-ed is
silently dead (the process just skips the work), a calendar closure that
captures a loop variable fires with the *last* iteration's binding, and
monkey-patching a ``__slots__`` class breaks the bound-method caches the
PR-2 hot paths rely on.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Severity
from repro.analysis.lint.rules import ParsedModule, Rule
from repro.analysis.lint.astutil import loaded_names, target_names

#: Methods that post a callback onto the kernel calendar.
CALENDAR_METHODS = frozenset({"at", "every", "push"})


def _is_generator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether ``fn``'s own body (not nested defs) contains a yield."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def _check_unyielded_syscall(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    for fn in ast.walk(module.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_generator(fn):
            continue
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            if isinstance(call.func, ast.Name) and call.func.id in ctx.instruction_classes:
                yield SC001.diagnostic(
                    module,
                    node,
                    f"instruction `{call.func.id}(...)` constructed but not "
                    f"`yield`-ed in a process generator; the kernel never "
                    f"sees it and the work silently vanishes",
                )


class _CalendarClosureVisitor(ast.NodeVisitor):
    """Flag calendar callbacks that capture enclosing loop variables."""

    def __init__(self, module: ParsedModule) -> None:
        """Track loop-variable scopes for one module walk."""
        self.module = module
        self.diagnostics: list = []
        self.loop_targets_stack: list[set[str]] = []
        #: functions defined inside a loop, name -> def node
        self.loop_defs_stack: list[dict[str, ast.AST]] = []

    def _fresh_scope(self, node: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.loop_targets_stack.append(set())
        self.loop_defs_stack.append({})
        self.generic_visit(node)
        self.loop_targets_stack.pop()
        self.loop_defs_stack.pop()

    def visit_Module(self, node: ast.Module) -> None:
        """Module body is its own (loop-free) scope."""
        self._fresh_scope(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Record loop-nested defs, then recurse into a fresh scope."""
        if self.loop_targets_stack and self.loop_targets_stack[-1]:
            # nested def inside a loop: remember it for by-name handoff
            self.loop_defs_stack[-1][node.name] = node
        self._fresh_scope(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_For(self, node: ast.For) -> None:
        """Bind the loop targets for the duration of the loop body."""
        targets = self.loop_targets_stack[-1] if self.loop_targets_stack else set()
        added = set(target_names(node.target)) - targets
        targets |= added
        self.generic_visit(node)
        targets -= added

    def _captured(self, callback: ast.expr) -> set[str]:
        """Loop variables a callback argument captures by reference."""
        if not self.loop_targets_stack:
            return set()
        targets = self.loop_targets_stack[-1]
        if not targets:
            return set()
        if isinstance(callback, ast.Lambda):
            params = {a.arg for a in (
                *callback.args.posonlyargs,
                *callback.args.args,
                *callback.args.kwonlyargs,
            )}
            if callback.args.vararg:
                params.add(callback.args.vararg.arg)
            if callback.args.kwarg:
                params.add(callback.args.kwarg.arg)
            return (loaded_names(callback.body) - params) & targets
        if isinstance(callback, ast.Name):
            fn = self.loop_defs_stack[-1].get(callback.id)
            if fn is not None:
                params = {a.arg for a in fn.args.args}  # type: ignore[attr-defined]
                return (loaded_names(fn) - params) & targets
        return set()

    def visit_Call(self, node: ast.Call) -> None:
        """Inspect calendar-posting calls for captured loop variables."""
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in CALENDAR_METHODS:
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                captured = self._captured(arg)
                if captured:
                    names = ", ".join(sorted(captured))
                    self.diagnostics.append(
                        SC002.diagnostic(
                            self.module,
                            arg,
                            f"calendar callback captures loop variable(s) "
                            f"{names} by reference; every posted event will "
                            f"see the last iteration's value — bind with a "
                            f"default argument or a payload instead",
                        )
                    )
        self.generic_visit(node)


def _check_calendar_closures(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    visitor = _CalendarClosureVisitor(module)
    visitor.visit(module.tree)
    yield from visitor.diagnostics


def _enclosing_class_names(tree: ast.Module) -> dict[int, str]:
    """Map id() of every node to the name of its enclosing class body."""
    owner: dict[int, str] = {}
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef):
            for sub in ast.walk(cls):
                owner.setdefault(id(sub), cls.name)
    return owner


def _check_slots_patch(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    if not ctx.slots_classes:
        return
    owner = _enclosing_class_names(module.tree)
    for node in ast.walk(module.tree):
        patched: str | None = None
        cls_name: str | None = None
        anchor: ast.AST = node
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ctx.slots_classes
                ):
                    cls_name = target.value.id
                    patched = f"{cls_name}.{target.attr}"
                    anchor = target
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Name)
                and fn.id == "setattr"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in ctx.slots_classes
            ):
                cls_name = node.args[0].id
                patched = f"setattr({cls_name}, ...)"
        if patched is None:
            continue
        if owner.get(id(node)) == cls_name:
            continue  # assignment inside the class's own body
        yield SC003.diagnostic(
            module,
            anchor,
            f"monkey-patch of `__slots__` class attribute `{patched}`; the "
            f"kernel caches bound methods of these classes on its hot path, "
            f"so runtime patching is silently ignored or inconsistent",
        )


SC001 = Rule(
    id="SC001",
    pack="SC",
    title="instruction constructed but not yielded",
    severity=Severity.ERROR,
    rationale=(
        "Programs hand instructions to the kernel by yielding them; a bare "
        "`Compute(...)` statement builds the object and throws it away."
    ),
    check=_check_unyielded_syscall,
)

SC002 = Rule(
    id="SC002",
    pack="SC",
    title="calendar callback captures a loop variable",
    severity=Severity.WARNING,
    rationale=(
        "Closures capture variables by reference; every event posted in the "
        "loop fires with the final iteration's binding (Python's classic "
        "late-binding trap, on a path where it corrupts the simulation)."
    ),
    check=_check_calendar_closures,
)

SC003 = Rule(
    id="SC003",
    pack="SC",
    title="monkey-patching a __slots__ class",
    severity=Severity.ERROR,
    rationale=(
        "__slots__ classes sit on the simulator's hottest paths and their "
        "methods are cached as bound references; patching the class at "
        "runtime desynchronises those caches."
    ),
    check=_check_slots_patch,
)

RULES = (SC001, SC002, SC003)
