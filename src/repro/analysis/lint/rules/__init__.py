"""Rule registry for the determinism & sim-invariant linter.

A rule is a small object with an id (``DT001``), a pack (``DT``), a
default :class:`~repro.analysis.lint.diagnostics.Severity`, and a
``check`` callable that walks one parsed module and yields diagnostics.
The registry (:data:`RULES`) is the single source of truth: the CLI's
``--list-rules``, the docs catalogue test and the engine all read it.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator

from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: str
    source: str
    tree: ast.Module


CheckFn = Callable[[ParsedModule, ProjectContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, documentation and its checker."""

    id: str
    pack: str
    title: str
    severity: Severity
    rationale: str
    check: CheckFn

    def diagnostic(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a diagnostic anchored at ``node``'s exact span."""
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None),
            end_col=getattr(node, "end_col_offset", None),
            message=message,
        )


def _build_registry() -> dict[str, Rule]:
    from repro.analysis.lint.rules import (
        concurrency,
        determinism,
        fastforward,
        knobpack,
        multiproc,
        observability,
        simcontracts,
    )

    registry: dict[str, Rule] = {}
    for rule in (
        *determinism.RULES,
        *simcontracts.RULES,
        *multiproc.RULES,
        *observability.RULES,
        *concurrency.RULES,
        *knobpack.RULES,
        *fastforward.RULES,
    ):
        if rule.id in registry:  # pragma: no cover - defensive
            raise ValueError(f"duplicate rule id {rule.id}")
        registry[rule.id] = rule
    return registry


#: All registered rules, keyed by id, in pack order.
RULES: dict[str, Rule] = _build_registry()


def select_rules(patterns: Iterable[str] | None) -> list[Rule]:
    """Resolve ``--select`` patterns to rules.

    A pattern is a rule id (``DT001``), a pack prefix (``SC``), or a
    shell-style glob over rule ids (``CC*``, ``DT00[1-3]``):

    >>> [r.id for r in select_rules(["SC"])]
    ['SC001', 'SC002', 'SC003']
    >>> [r.id for r in select_rules(["CC*"])]
    ['CC001', 'CC002', 'CC003']
    >>> [r.id for r in select_rules(["DT00[1-3]"])]
    ['DT001', 'DT002', 'DT003']
    >>> select_rules(None) == list(RULES.values())
    True
    """
    if patterns is None:
        return list(RULES.values())
    chosen: list[Rule] = []
    unknown: list[str] = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matches = [r for r in RULES.values() if fnmatch.fnmatchcase(r.id, pattern)]
        else:
            matches = [r for r in RULES.values() if r.id == pattern or r.pack == pattern]
        if not matches:
            unknown.append(pattern)
        chosen.extend(m for m in matches if m not in chosen)
    if unknown:
        raise ValueError(f"unknown rule or pack: {', '.join(unknown)}")
    return chosen
