"""CC pack: call-graph contracts for cross-process pool workers.

The fleet engine, the experiment runner and the tuner all ship worker
callables into ``ProcessPoolExecutor`` pools.  MP001/MP002 already
police the *syntactic* shape (module-level def, no direct global
mutation in the body); these rules use the resolved worker set and the
transitive effect summaries to police what a worker *reaches*:

- **CC001** — a worker's call closure mutates module-level state in
  some callee.  Each pool process has its own copy of that state, so
  the mutation silently diverges between jobs=1 and jobs=N.
- **CC002** — a worker's call closure reads a module-level RNG
  instance.  Even a seeded RNG shared this way consumes differently as
  chunk boundaries move, breaking seed-determinism across ``--jobs``.
- **CC003** — a worker def carries a mutable default argument; the
  default is per-process state that outlives chunks.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.astutil import iter_scoped_functions
from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.rules import ParsedModule, Rule

#: Calls whose result is a fresh mutable container per evaluation — as a
#: *default argument* they are evaluated once per process instead.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray", "defaultdict", "deque"})


def _worker_defs(
    module: ParsedModule, ctx: ProjectContext
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """``(function id, def node)`` for pool workers defined in this module."""
    graph = ctx.graph
    if graph is None:
        return
    for qual, _owner, fn in iter_scoped_functions(module.tree):
        fid = f"{module.path}::{qual}"
        if fid in graph.workers:
            yield fid, fn


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain)


def _check_cc001(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag workers whose *callees* mutate module-level state."""
    graph = ctx.graph
    if graph is None:
        return
    for fid, fn in _worker_defs(module, ctx):
        chain = graph.effects[fid].global_write_chain
        # a direct write (chain is just [worker, global:...]) is MP002's
        # territory; this rule adds the interprocedural reach
        if chain is not None and len(chain) > 2:
            yield rule.diagnostic(
                module,
                fn,
                f"pool worker `{fn.name}` reaches a module-state mutation "
                f"through its call graph: {_chain_text(chain)}",
            )


def _check_cc002(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag workers whose call closure reads a module-level RNG."""
    graph = ctx.graph
    if graph is None:
        return
    for fid, fn in _worker_defs(module, ctx):
        chain = graph.effects[fid].rng_read_chain
        if chain is not None:
            yield rule.diagnostic(
                module,
                fn,
                f"pool worker `{fn.name}` shares a module-level RNG across "
                f"chunks: {_chain_text(chain)}; derive a per-task RNG from "
                "the task's own seed instead",
            )


def _check_cc003(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag mutable default arguments on pool worker defs."""
    for _fid, fn in _worker_defs(module, ctx):
        args = fn.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is None:
                continue
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            )
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            ):
                mutable = True
            if mutable:
                yield rule.diagnostic(
                    module,
                    default,
                    f"mutable default on pool worker `{fn.name}`; it is "
                    "evaluated once per process and carries state across "
                    "chunks",
                )


CC001 = Rule(
    id="CC001",
    pack="CC",
    title="worker call graph mutates module state",
    severity=Severity.ERROR,
    rationale=(
        "Each pool process owns a private copy of every module global; a "
        "mutation reached anywhere in a worker's call closure therefore "
        "diverges between jobs=1 and jobs=N even though the worker body "
        "itself looks clean (which is all MP002 can see)."
    ),
    check=lambda module, ctx: _check_cc001(CC001, module, ctx),
)

CC002 = Rule(
    id="CC002",
    pack="CC",
    title="worker shares a module-level RNG across chunks",
    severity=Severity.ERROR,
    rationale=(
        "A module-level RNG instance is re-created per process and consumed "
        "in chunk order, so results depend on the chunking — seeded or not. "
        "Workers must derive a private RNG from their task's own seed."
    ),
    check=lambda module, ctx: _check_cc002(CC002, module, ctx),
)

CC003 = Rule(
    id="CC003",
    pack="CC",
    title="mutable default argument on a pool worker",
    severity=Severity.WARNING,
    rationale=(
        "Default arguments are evaluated once per process; a mutable one is "
        "hidden per-process state that accumulates across the chunks that "
        "process happens to execute, making output chunking-dependent."
    ),
    check=lambda module, ctx: _check_cc003(CC003, module, ctx),
)

#: The CC pack, in id order.
RULES: tuple[Rule, ...] = (CC001, CC002, CC003)
