"""MP pack — safety of the PR-1 process-pool harness.

The experiment runner fans work out over ``multiprocessing`` with the
spawn/forkserver start methods; everything crossing the pool boundary is
pickled.  A lambda or nested function handed to a ``map_fn`` hook dies
with an opaque ``PicklingError`` only when ``--jobs > 1`` is actually
used, and a worker that rebinds module globals produces results that
differ between serial and sharded runs — exactly the bit-identity the
harness promises.  Both hazards are statically visible.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Severity
from repro.analysis.lint.rules import ParsedModule, Rule


def _module_level_defs(tree: ast.Module) -> set[str]:
    return {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _nested_defs(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function."""
    nested: set[str] = set()
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(fn):
            if sub is fn:
                continue
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(sub.name)
    return nested


def _map_fn_callables(tree: ast.Module) -> Iterator[tuple[ast.expr, str]]:
    """Yield (node, role) for every callable handed to a map_fn hook.

    Covers the two sides of the contract: ``f(..., map_fn=<callable>)``
    (installing the map) and ``map_fn(<work_fn>, ...)`` (dispatching work
    through it).
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg == "map_fn":
                yield kw.value, "map_fn= argument"
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id == "map_fn" and node.args:
            yield node.args[0], "work callable of a map_fn(...) dispatch"


def _check_picklable(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    nested = _nested_defs(module.tree)
    for callable_node, role in _map_fn_callables(module.tree):
        if isinstance(callable_node, ast.Lambda):
            yield MP001.diagnostic(
                module,
                callable_node,
                f"lambda as {role}; lambdas cannot be pickled to "
                f"spawn/forkserver pool workers — use a module-level "
                f"function",
            )
        elif isinstance(callable_node, ast.Name) and callable_node.id in nested:
            yield MP001.diagnostic(
                module,
                callable_node,
                f"nested function `{callable_node.id}` as {role}; closures "
                f"cannot be pickled to pool workers — hoist it to module "
                f"level",
            )


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _check_global_mutation(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    tree = module.tree
    worker_names = {
        node.id
        for node, _role in _map_fn_callables(tree)
        if isinstance(node, ast.Name)
    } & _module_level_defs(tree)
    if not worker_names:
        return
    module_names = _module_level_names(tree)
    for fn in tree.body:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if fn.name not in worker_names:
            continue
        local_names = {
            a.arg
            for a in (
                *fn.args.posonlyargs,
                *fn.args.args,
                *fn.args.kwonlyargs,
            )
        }
        declared_global: set[str] = set()
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
                yield MP002.diagnostic(
                    module,
                    sub,
                    f"pool worker `{fn.name}` declares "
                    f"`global {', '.join(sub.names)}`; rebinding module "
                    f"state in a worker diverges from the serial run (each "
                    f"process mutates its own copy)",
                )
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    base = target
                    while isinstance(base, (ast.Subscript, ast.Attribute)):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base is not target
                        and base.id in module_names
                        and base.id not in local_names
                        and base.id not in declared_global
                    ):
                        yield MP002.diagnostic(
                            module,
                            target,
                            f"pool worker `{fn.name}` mutates module-level "
                            f"`{base.id}`; per-process copies diverge from "
                            f"the serial run — pass state through the work "
                            f"unit or use an explicit per-process memo",
                        )


MP001 = Rule(
    id="MP001",
    pack="MP",
    title="unpicklable callable handed to a map_fn hook",
    severity=Severity.ERROR,
    rationale=(
        "Work crossing the process-pool boundary is pickled; lambdas and "
        "closures fail only at --jobs > 1, far from where they were written."
    ),
    check=_check_picklable,
)

MP002 = Rule(
    id="MP002",
    pack="MP",
    title="pool worker mutates module globals",
    severity=Severity.ERROR,
    rationale=(
        "Each pool process mutates its own copy of module state, so sharded "
        "results silently diverge from the serial run the harness promises "
        "to reproduce bit-identically."
    ),
    check=_check_global_mutation,
)

RULES = (MP001, MP002)
