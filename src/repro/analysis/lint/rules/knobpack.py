"""KN pack: every tunable parameter resolves through the knob registry.

:data:`repro.core.knobs.CONTROLLER_KNOBS` is the single source of truth
for controller/tuner parameter names, ranges and defaults — the fleet
spec validators, the tuner's search space and the docs all read it.
These rules keep it that way:

- **KN001** — a knob key string (registry subscript, ``.get`` call,
  ``validate_knob`` call, or an entry of a ``*KNOBS*``-named string
  tuple) that is not a registered knob name.  Catches typos and keys
  that silently bypass validation.
- **KN002** — a ``Knob(...)`` constructed outside the registry module:
  a second place defining parameter ranges is exactly the drift the
  registry exists to prevent.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.astutil import import_aliases, resolve_dotted
from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.rules import ParsedModule, Rule

_REGISTRY_DOTTED = "repro.core.knobs.CONTROLLER_KNOBS"
_KNOB_DOTTED = "repro.core.knobs.Knob"
_VALIDATE_DOTTED = "repro.core.knobs.validate_knob"


def _is_registry_expr(node: ast.expr, aliases: dict[str, str]) -> bool:
    if isinstance(node, ast.Name) and node.id == "CONTROLLER_KNOBS":
        return True
    return resolve_dotted(node, aliases) == _REGISTRY_DOTTED


def _key_nodes(tree: ast.Module, aliases: dict[str, str]) -> Iterator[ast.Constant]:
    """Every string-constant node used as a knob key in this module."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and _is_registry_expr(node.value, aliases):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                yield key
        elif isinstance(node, ast.Call):
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in {"get", "pop"}
                and _is_registry_expr(fn.value, aliases)
                and node.args
            ):
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    yield first
            elif (
                (isinstance(fn, ast.Name) and fn.id == "validate_knob")
                or resolve_dotted(fn, aliases) == _VALIDATE_DOTTED
            ) and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    yield first
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None or not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                continue
            named = any(
                isinstance(t, ast.Name) and "KNOB" in t.id for t in targets
            )
            if not named:
                continue
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    yield elt


def _check_kn001(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag knob key strings absent from the registry."""
    graph = ctx.graph
    if graph is None or not graph.knob_keys:
        return  # registry not in view; nothing to resolve against
    aliases = import_aliases(module.tree)
    for key in _key_nodes(module.tree, aliases):
        name = key.value
        if name not in graph.knob_keys:
            known = ", ".join(sorted(graph.knob_keys))
            yield rule.diagnostic(
                module,
                key,
                f"unknown knob key {name!r}; registered knobs: {known}",
            )


def _check_kn002(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag ``Knob(...)`` constructions outside the registry module."""
    graph = ctx.graph
    if graph is None:
        return
    facts = graph.modules.get(module.path)
    if facts is not None and facts.knob_keys:
        return  # this *is* the registry module
    aliases = import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        dotted = resolve_dotted(fn, aliases)
        if dotted == _KNOB_DOTTED or (
            isinstance(fn, ast.Name)
            and fn.id == "Knob"
            and aliases.get("Knob", "").endswith(".Knob")
        ):
            yield rule.diagnostic(
                module,
                node,
                "Knob constructed outside repro.core.knobs; parameter ranges "
                "must live in CONTROLLER_KNOBS so the tuner, validators and "
                "docs stay in agreement",
            )


KN001 = Rule(
    id="KN001",
    pack="KN",
    title="unknown knob key",
    severity=Severity.ERROR,
    rationale=(
        "A key string that does not resolve in CONTROLLER_KNOBS either "
        "typos an existing knob (silently reading a default) or invents a "
        "parameter that bypasses range validation and the tuner's space."
    ),
    check=lambda module, ctx: _check_kn001(KN001, module, ctx),
)

KN002 = Rule(
    id="KN002",
    pack="KN",
    title="parameter range defined outside the registry",
    severity=Severity.ERROR,
    rationale=(
        "Duplicated Knob definitions drift: a range widened in one place "
        "but not the other makes the tuner explore values the runtime "
        "rejects (or vice versa). The registry is the only place ranges "
        "may be spelled."
    ),
    check=lambda module, ctx: _check_kn002(KN002, module, ctx),
)

#: The KN pack, in id order.
RULES: tuple[Rule, ...] = (KN001, KN002)
