"""FF pack: scheduler fast-forward conformance (ROADMAP item 4 seed).

Steady-state fast-forward (PR 6) detects schedule cycles through the
``cycle_state`` / ``shift_times`` / ``cycle_periods`` / ``cycle_counters``
surface on :class:`repro.sched.base.Scheduler`.  The base class ships
safe defaults, but *silently* relying on them is how a new scheduler
ends up fast-forwarding incorrectly: the default ``cycle_state`` returns
``None`` (never eligible), the default ``shift_times`` shifts nothing.
A scheduler class must therefore say what it means:

- implement the full surface (like CBS), or
- declare which methods intentionally rely on the base defaults via
  ``cycle_defaults_ok = ("shift_times", ...)``, or
- declare itself out of the mechanism via ``cycle_ineligible = True``.

**FF001** flags a concrete scheduler whose surface is partial with no
declaration; **FF002** flags declarations that have gone stale (naming
a method the class now overrides, naming a non-surface method, or an
``cycle_ineligible`` marker on a class implementing everything).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.callgraph import CYCLE_SURFACE, SchedulerSurface
from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.rules import ParsedModule, Rule


def _surface_classes(
    module: ParsedModule, ctx: ProjectContext
) -> Iterator[tuple[ast.ClassDef, SchedulerSurface]]:
    """``(class def node, SchedulerSurface)`` for schedulers in this module."""
    graph = ctx.graph
    if graph is None:
        return
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        surface = graph.scheduler_surfaces.get(node.name)
        if surface is None:
            continue
        if surface.path != module.path:
            continue  # a different class of the same name owns the surface
        yield node, surface


def _check_ff001(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag partial fast-forward surfaces with no explicit declaration."""
    for node, surface in _surface_classes(module, ctx):
        if surface.abstract or surface.ineligible:
            continue
        covered = surface.defined | surface.declared_defaults
        missing = [m for m in CYCLE_SURFACE if m not in covered]
        if missing:
            yield rule.diagnostic(
                module,
                node,
                f"scheduler `{node.name}` leaves {', '.join(missing)} to the "
                "base defaults without declaring it; implement the surface, "
                "add `cycle_defaults_ok = (...)`, or mark the class "
                "`cycle_ineligible = True`",
            )


def _check_ff002(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag stale or contradictory fast-forward declarations."""
    graph = ctx.graph
    if graph is None:
        return
    for node, surface in _surface_classes(module, ctx):
        facts_entry = graph.classes.get(node.name)
        own_declared: tuple[str, ...] = ()
        if facts_entry is not None and facts_entry[0].cycle_defaults_ok is not None:
            own_declared = tuple(facts_entry[0].cycle_defaults_ok)
        bogus = [m for m in own_declared if m not in CYCLE_SURFACE]
        if bogus:
            yield rule.diagnostic(
                module,
                node,
                f"`cycle_defaults_ok` on `{node.name}` names "
                f"{', '.join(bogus)}, which is not part of the fast-forward "
                f"surface ({', '.join(CYCLE_SURFACE)})",
            )
        stale = [m for m in own_declared if m in surface.own_defined]
        if stale:
            yield rule.diagnostic(
                module,
                node,
                f"`cycle_defaults_ok` on `{node.name}` still lists "
                f"{', '.join(stale)}, which the class now implements; drop "
                "the stale entries",
            )
        if surface.ineligible and set(CYCLE_SURFACE) <= surface.defined:
            yield rule.diagnostic(
                module,
                node,
                f"`{node.name}` is marked `cycle_ineligible` yet implements "
                "the full fast-forward surface; remove the marker or the "
                "implementation",
            )


FF001 = Rule(
    id="FF001",
    pack="FF",
    title="undeclared partial fast-forward surface",
    severity=Severity.ERROR,
    rationale=(
        "A scheduler silently inheriting base-class cycle defaults is "
        "indistinguishable from one that forgot them; fast-forward then "
        "quietly never engages (or engages wrongly). The surface must be "
        "implemented, declared default-reliant, or declared ineligible."
    ),
    check=lambda module, ctx: _check_ff001(FF001, module, ctx),
)

FF002 = Rule(
    id="FF002",
    pack="FF",
    title="stale fast-forward declaration",
    severity=Severity.WARNING,
    rationale=(
        "Declarations are only useful while they are true: entries for "
        "methods the class now implements, names outside the surface, or "
        "an ineligibility marker on a fully-implemented scheduler all "
        "misdescribe the class to the conformance kit."
    ),
    check=lambda module, ctx: _check_ff002(FF002, module, ctx),
)

#: The FF pack, in id order.
RULES: tuple[Rule, ...] = (FF001, FF002)
