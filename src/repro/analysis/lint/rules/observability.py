"""OB pack: telemetry hook sites must be guarded and read-only.

The runtime's invariant (PR 3) is that telemetry is *passive*: with the
hub detached every ``self._obs`` hook site is skipped, and with it
attached the simulation trajectory must be byte-identical.  The golden
digests check this dynamically for the scenarios that happen to run;
these rules check it statically for every hook site.

- **OB001** — code *inside* an ``_obs`` guard must be write-free: no
  direct attribute writes (outside the ``_obs*`` namespace the hub
  owns) and no calls whose transitive effect summary writes sim state.
  The diagnostic carries the witness call chain.
- **OB002** — a call on ``self._obs`` (or a local alias of it) outside
  any ``is not None`` guard: crashes when telemetry is detached.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.astutil import iter_child_nodes_compat, iter_scoped_functions
from repro.analysis.lint.callgraph import classify_call
from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.rules import ParsedModule, Rule


def _obs_aliases(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names bound to ``self._obs`` (``obs = self._obs`` idiom)."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target, value = node.targets[0], node.value
        if (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Attribute)
            and value.attr == "_obs"
        ):
            names.add(target.id)
    return names


def _is_obs_expr(node: ast.expr, aliases: set[str]) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr == "_obs"
    return isinstance(node, ast.Name) and node.id in aliases


def _is_obs_guard(test: ast.expr, aliases: set[str]) -> bool:
    """``<obs> is not None``, bare ``<obs>`` truthiness, or either
    conjunct of an ``and``."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        if isinstance(test.ops[0], ast.IsNot):
            left, right = test.left, test.comparators[0]
            if isinstance(right, ast.Constant) and right.value is None:
                return _is_obs_expr(left, aliases)
    if _is_obs_expr(test, aliases):
        return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_is_obs_guard(value, aliases) for value in test.values)
    return False


def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(chain)


def _check_ob001(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag writes (direct or reachable) inside ``_obs`` guards."""
    graph = ctx.graph
    if graph is None:
        return
    for qual, owner, fn in iter_scoped_functions(module.tree):
        aliases = _obs_aliases(fn)

        def check_guarded(
            node: ast.AST, qual: str = qual, owner: str = owner
        ) -> Iterator[Diagnostic]:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Assign, ast.AugAssign, ast.Delete)):
                    targets = (
                        sub.targets
                        if isinstance(sub, (ast.Assign, ast.Delete))
                        else [sub.target]
                    )
                    for target in targets:
                        attr = target
                        if isinstance(attr, ast.Subscript):
                            attr = attr.value
                        if isinstance(attr, ast.Attribute) and not attr.attr.startswith(
                            "_obs"
                        ):
                            yield rule.diagnostic(
                                module,
                                sub,
                                f"write to `.{attr.attr}` inside an `_obs` guard; "
                                "guarded telemetry blocks must be read-only",
                            )
                elif isinstance(sub, ast.Call):
                    ref = classify_call(sub, class_name=owner)
                    if ref is None:
                        continue
                    receiver = sub.func.value if isinstance(sub.func, ast.Attribute) else None
                    if receiver is not None and _is_obs_expr(receiver, aliases):
                        continue  # the telemetry call itself
                    for target_id in graph.resolve_ref(ref, module.path, qual):
                        chain = graph.effects[target_id].sim_write_chain
                        if chain is not None:
                            yield rule.diagnostic(
                                module,
                                sub,
                                f"call inside an `_obs` guard reaches a sim-state "
                                f"write: {_chain_text(chain)}",
                            )
                            break

        def scan(
            stmts: list[ast.stmt], guarded: bool, aliases: set[str] = aliases
        ) -> Iterator[Diagnostic]:
            for stmt in stmts:
                if isinstance(stmt, ast.If) and _is_obs_guard(stmt.test, aliases):
                    yield from scan(stmt.body, True)
                    yield from scan(stmt.orelse, guarded)
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs are scanned as their own functions
                if guarded:
                    yield from check_guarded(stmt)
                    continue
                for child in iter_child_nodes_compat(stmt):
                    if isinstance(child, ast.stmt):
                        yield from scan([child], guarded)

        yield from scan(fn.body, False)


def _check_ob002(
    rule: Rule, module: ParsedModule, ctx: ProjectContext
) -> Iterator[Diagnostic]:
    """Flag ``self._obs.hook(...)`` calls outside an ``is not None`` guard."""
    for _qual, _owner, fn in iter_scoped_functions(module.tree):
        aliases = _obs_aliases(fn)

        def scan(
            stmts: list[ast.stmt], guarded: bool, aliases: set[str] = aliases
        ) -> Iterator[Diagnostic]:
            for stmt in stmts:
                if isinstance(stmt, ast.If) and _is_obs_guard(stmt.test, aliases):
                    yield from scan(stmt.orelse, guarded)
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs are scanned as their own functions
                if guarded:
                    continue  # everything below a guard is safe for OB002
                for child in iter_child_nodes_compat(stmt):
                    if isinstance(child, ast.stmt):
                        yield from scan([child], guarded)
                    elif isinstance(child, ast.expr):
                        for sub in ast.walk(child):
                            if (
                                isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Attribute)
                                and _is_obs_expr(sub.func.value, aliases)
                            ):
                                yield rule.diagnostic(
                                    module,
                                    sub,
                                    "telemetry call without an `is not None` guard; "
                                    "crashes when the hub is detached",
                                )

        yield from scan(fn.body, False)


OB001 = Rule(
    id="OB001",
    pack="OB",
    title="guarded telemetry block reaches a sim-state write",
    severity=Severity.ERROR,
    rationale=(
        "Code under an `_obs` guard runs only when telemetry is attached; any "
        "write it reaches (directly or through calls, per the transitive "
        "effect summaries) makes the trajectory diverge between telemetry "
        "on and off, breaking the byte-identity invariant the golden digests "
        "pin."
    ),
    check=lambda module, ctx: _check_ob001(OB001, module, ctx),
)

OB002 = Rule(
    id="OB002",
    pack="OB",
    title="unguarded telemetry hook call",
    severity=Severity.ERROR,
    rationale=(
        "`self._obs` is None whenever no hub is attached; hook calls outside "
        "an `is not None` guard crash exactly in the default, telemetry-off "
        "configuration that production sims run."
    ),
    check=lambda module, ctx: _check_ob002(OB002, module, ctx),
)

#: The OB pack, in id order.
RULES: tuple[Rule, ...] = (OB001, OB002)
