"""DT pack — determinism hazards.

The simulator's whole value rests on bit-identical replay: golden-trace
digests (PR 2), serial-vs-parallel equality (PR 1) and zero-intensity
fault transparency (PR 4) all assume that a run is a pure function of
its seeds.  These rules forbid the ambient inputs (wall clock, entropy)
and the numeric hazards (floats in the integer-nanosecond time domain,
unordered set iteration) that silently break that assumption.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.context import ProjectContext
from repro.analysis.lint.diagnostics import Severity
from repro.analysis.lint.rules import ParsedModule, Rule
from repro.analysis.lint.astutil import (
    annotation_is_set,
    import_aliases,
    is_float_tainted,
    is_set_expr,
    resolve_dotted,
    target_names,
)

#: Wall-clock reads (and wall-clock sleeping): the simulation must see
#: only the virtual clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "time.localtime",
        "time.gmtime",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Ambient entropy: process-unique or OS-random values.
ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: Dotted prefixes that are entropy wholesale.
ENTROPY_PREFIXES = ("secrets.",)

#: Seedable RNG constructors: deterministic *only* when given a seed.
SEEDABLE_RNGS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    }
)

#: Integer-nanosecond sinks by *constructor* name: argument positions and
#: keywords that carry virtual time and must stay integral.
TIME_SINK_CTORS: dict[str, tuple[tuple[int, ...], tuple[str, ...]]] = {
    "Compute": ((0,), ("duration",)),
    "Syscall": ((1, 3), ("cost", "return_cost")),
    "SleepUntil": ((0,), ("wake_at",)),
    "SleepFor": ((0,), ("duration",)),
    "Segment": ((1,), ("remaining", "entry_time")),
}

#: Integer-nanosecond sinks by *method* name (attribute calls).
TIME_SINK_METHODS: dict[str, tuple[tuple[int, ...], tuple[str, ...]]] = {
    "run": ((0,), ("until",)),
    "at": ((0,), ("when",)),
    "every": ((0,), ("period", "start")),
    "push": ((0,), ("time",)),
    "spawn": ((), ("at",)),
    "run_until_exit": ((1,), ("hard_limit",)),
}


def _check_wall_clock(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    aliases = import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = resolve_dotted(node.func, aliases)
        if dotted in WALL_CLOCK_CALLS:
            yield DT001.diagnostic(
                module,
                node,
                f"wall-clock call `{dotted}` in simulation code; the virtual "
                f"clock (`kernel.clock`, integer ns) is the only time source",
            )


def _check_entropy(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    aliases = import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = resolve_dotted(node.func, aliases)
        if dotted is None:
            continue
        if dotted in ENTROPY_CALLS or dotted.startswith(ENTROPY_PREFIXES):
            yield DT002.diagnostic(
                module,
                node,
                f"ambient entropy `{dotted}`; every random stream must come "
                f"from an explicitly seeded generator",
            )
        elif dotted in SEEDABLE_RNGS and not node.args and not node.keywords:
            yield DT002.diagnostic(
                module,
                node,
                f"`{dotted}()` without a seed draws OS entropy; pass an "
                f"explicit seed",
            )
        elif dotted.startswith("random.") and dotted not in SEEDABLE_RNGS:
            yield DT002.diagnostic(
                module,
                node,
                f"module-level `{dotted}` uses the shared global RNG; use a "
                f"dedicated seeded `random.Random(seed)` instance",
            )
        elif dotted.startswith("numpy.random.") and dotted not in SEEDABLE_RNGS:
            yield DT002.diagnostic(
                module,
                node,
                f"global-state `{dotted}`; use a seeded "
                f"`numpy.random.default_rng(seed)` generator",
            )


def _sink_spec(node: ast.Call) -> tuple[tuple[int, ...], tuple[str, ...]] | None:
    fn = node.func
    if isinstance(fn, ast.Name):
        return TIME_SINK_CTORS.get(fn.id)
    if isinstance(fn, ast.Attribute):
        return TIME_SINK_METHODS.get(fn.attr)
    return None


def _check_float_time(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        spec = _sink_spec(node)
        if spec is None:
            continue
        positions, keywords = spec
        tainted: list[ast.expr] = [
            node.args[i]
            for i in positions
            if i < len(node.args) and is_float_tainted(node.args[i])
        ]
        tainted.extend(
            kw.value
            for kw in node.keywords
            if kw.arg in keywords and is_float_tainted(kw.value)
        )
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else fn.attr  # type: ignore[union-attr]
        for arg in tainted:
            yield DT003.diagnostic(
                module,
                arg,
                f"float-tainted expression flows into the integer-ns clock "
                f"API `{name}(...)`; wrap it in `int(...)`/`round(...)` or "
                f"use `repro.sim.time.from_seconds`",
            )


def _check_float_eq(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        sides = [node.left, *node.comparators]
        if any(is_float_tainted(side) for side in sides):
            yield DT004.diagnostic(
                module,
                node,
                "`==`/`!=` against a float in scheduler code; compare "
                "integer nanoseconds, or use an explicit tolerance",
            )


class _SetIterVisitor(ast.NodeVisitor):
    """Find iteration over unordered sets inside one module."""

    #: Iteration-order-preserving wrappers whose first argument is the
    #: iterated collection.
    ORDER_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})

    def __init__(self, module: ParsedModule, ctx: ProjectContext) -> None:
        """Seed per-module state from the project-wide context."""
        self.module = module
        self.diagnostics: list = []
        self.set_attrs: set[str] = set(ctx.set_attrs)
        self.set_vars_stack: list[set[str]] = [set()]
        self._collect_set_attrs(module.tree)

    def _collect_set_attrs(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Attribute)
                and isinstance(node.target.value, ast.Name)
                and node.target.value.id == "self"
                and annotation_is_set(node.annotation)
            ):
                self.set_attrs.add(node.target.attr)

    # -- scope handling -------------------------------------------------
    def _function_scope(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        local_sets: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and is_set_expr(
                sub.value, local_sets, self.set_attrs
            ):
                for target in sub.targets:
                    local_sets.update(target_names(target))
            elif (
                isinstance(sub, ast.AnnAssign)
                and annotation_is_set(sub.annotation)
                and isinstance(sub.target, ast.Name)
            ):
                local_sets.add(sub.target.id)
        self.set_vars_stack.append(local_sets)
        self.generic_visit(node)
        self.set_vars_stack.pop()

    visit_FunctionDef = _function_scope
    visit_AsyncFunctionDef = _function_scope

    # -- iteration sites ------------------------------------------------
    def _iterated_set(self, iter_expr: ast.expr) -> ast.expr | None:
        set_vars = self.set_vars_stack[-1]
        if is_set_expr(iter_expr, set_vars, self.set_attrs):
            return iter_expr
        if isinstance(iter_expr, ast.Call):
            fn = iter_expr.func
            if (
                isinstance(fn, ast.Name)
                and fn.id in self.ORDER_WRAPPERS
                and iter_expr.args
                and is_set_expr(iter_expr.args[0], set_vars, self.set_attrs)
            ):
                return iter_expr.args[0]
        return None

    def _flag(self, found: ast.expr) -> None:
        self.diagnostics.append(
            DT005.diagnostic(
                self.module,
                found,
                "iteration over an unordered `set`; wrap it in `sorted(...)` "
                "so downstream scheduling/event-queue decisions cannot "
                "depend on hash ordering",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        """Flag ``for ... in <set>`` loops."""
        found = self._iterated_set(node.iter)
        if found is not None:
            self._flag(found)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.ListComp | ast.GeneratorExp | ast.DictComp) -> None:
        for gen in node.generators:
            found = self._iterated_set(gen.iter)
            if found is not None:
                self._flag(found)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        """Set-from-set comprehensions stay unflagged (order-free)."""
        # building a *new* set from a set is order-free; only flag when
        # the element expression is order-sensitive — out of static
        # reach, so stay silent here.
        self.generic_visit(node)


def _check_set_iteration(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    visitor = _SetIterVisitor(module, ctx)
    visitor.visit(module.tree)
    yield from visitor.diagnostics


#: Dict-view accessors whose iteration order is insertion history.
DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _dict_view_call(expr: ast.expr) -> ast.Call | None:
    """``d.keys()`` / ``d.values()`` / ``d.items()``, else ``None``."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in DICT_VIEW_METHODS
        and not expr.args
        and not expr.keywords
    ):
        return expr
    return None


def _iterated_dict_view(iter_expr: ast.expr) -> ast.Call | None:
    """The dict view iterated by ``iter_expr``, seen through order wrappers."""
    found = _dict_view_call(iter_expr)
    if found is not None:
        return found
    if isinstance(iter_expr, ast.Call):
        fn = iter_expr.func
        if (
            isinstance(fn, ast.Name)
            and fn.id in _SetIterVisitor.ORDER_WRAPPERS
            and iter_expr.args
        ):
            return _dict_view_call(iter_expr.args[0])
    return None


def _check_dict_view_iteration(module: ParsedModule, ctx: ProjectContext) -> Iterator:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.For):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
            iters = [gen.iter for gen in node.generators]
        else:
            continue
        for iter_expr in iters:
            found = _iterated_dict_view(iter_expr)
            if found is not None:
                yield DT006.diagnostic(
                    module,
                    found,
                    "dict-view iteration in digest-construction code follows "
                    "insertion history, which differs between a stepped and a "
                    "fast-forwarded run; wrap it in `sorted(...)` so the "
                    "digest is canonical",
                )


DT001 = Rule(
    id="DT001",
    pack="DT",
    title="wall-clock read in simulation code",
    severity=Severity.ERROR,
    rationale=(
        "The simulation is a pure function of its seeds; reading the host "
        "clock makes replay (and the golden-trace digests) host-dependent."
    ),
    check=_check_wall_clock,
)

DT002 = Rule(
    id="DT002",
    pack="DT",
    title="ambient entropy / unseeded randomness",
    severity=Severity.ERROR,
    rationale=(
        "Global or OS-seeded RNGs differ per process and per run; every "
        "stochastic choice must flow from an explicitly seeded generator."
    ),
    check=_check_entropy,
)

DT003 = Rule(
    id="DT003",
    pack="DT",
    title="float arithmetic flowing into the integer-ns clock API",
    severity=Severity.WARNING,
    rationale=(
        "All virtual times are integer nanoseconds; a float reaching the "
        "calendar drifts across platforms and breaks exact event ordering."
    ),
    check=_check_float_time,
)

DT004 = Rule(
    id="DT004",
    pack="DT",
    title="float equality in scheduler code",
    severity=Severity.ERROR,
    rationale=(
        "Budget and deadline comparisons decide preemptions; exact float "
        "equality is representation-dependent and silently flips decisions."
    ),
    check=_check_float_eq,
)

DT005 = Rule(
    id="DT005",
    pack="DT",
    title="iteration over an unordered set",
    severity=Severity.WARNING,
    rationale=(
        "Set iteration order follows hashing, which varies with insertion "
        "history; feeding it into scheduling decisions or the event queue "
        "makes runs irreproducible."
    ),
    check=_check_set_iteration,
)

DT006 = Rule(
    id="DT006",
    pack="DT",
    title="unsorted dict-view iteration in digest construction",
    severity=Severity.ERROR,
    rationale=(
        "A state digest must be a canonical function of the state, but "
        "dict iteration order is insertion history — two bit-identical "
        "simulator states reached along different paths would hash "
        "differently and break cycle detection."
    ),
    check=_check_dict_view_iteration,
)

RULES = (DT001, DT002, DT003, DT004, DT005, DT006)
