"""Whole-project call graph and per-function effect summaries.

This is the interprocedural layer under the OB/CC/KN/FF rule packs.
Extraction (:func:`extract_module_facts`) is purely syntactic and
per-module — it never imports the scanned code and its output
(:class:`ModuleFacts`) is JSON-serialisable, which is what makes the
incremental cache (:mod:`repro.analysis.lint.cache`) possible: a module
whose source digest is unchanged contributes its cached facts without
being re-parsed.  Combination (:func:`combine_facts`) then resolves
call references into a project-wide graph and propagates *effect
summaries* transitively through it.

An effect summary classifies every function as a combination of

- **pure** — no state reads, no writes, no IO;
- **reads-sim-state** — reads attributes or module globals;
- **writes-sim-state** — writes an attribute of a shared object (or
  mutates one in place via ``.append``/``.update``/...) outside the
  telemetry namespace; ``self.x = ...`` inside ``__init__`` is exempt
  (initialising a fresh object is not mutating existing state), as are
  writes to ``_obs*``-prefixed attributes (the telemetry hub's reserved
  namespace) and any write performed inside ``repro/obs/`` itself;
- **writes-global-state** — rebinds or mutates a module-level name;
- **performs-IO** — calls into the filesystem / process / console APIs.

Propagation is a monotone fixed point over the call graph: a witness
*chain* (caller → ... → writer) is recorded once per function and never
replaced, so cycles terminate and diagnostics can show the exact path.
Unresolvable calls (builtins, dynamic callables, very common container
method names) contribute nothing — the analysis under-approximates
rather than drowning the packs in false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.lint.astutil import (
    annotation_is_set,
    import_aliases,
    iter_child_nodes_compat,
)

#: In-place mutator methods: calling one on an attribute or a module
#: global is a write to that object.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "rotate",
        "sort",
        "reverse",
    }
)

#: Method names too common to bind by name across the project: an
#: attribute call ``x.get(...)`` could be any dict, so edges through
#: these names would connect everything to everything.
METHOD_EDGE_STOPLIST = frozenset(
    {
        "get",
        "keys",
        "values",
        "items",
        "append",
        "add",
        "update",
        "pop",
        "copy",
        "sort",
        "split",
        "join",
        "strip",
        "format",
        "encode",
        "decode",
        "read",
        "write",
        "close",
        "open",
    }
)

#: Direct IO by callable name / dotted prefix.
IO_NAME_CALLS = frozenset({"open", "print", "input"})
IO_DOTTED_PREFIXES = ("os.", "shutil.", "subprocess.", "socket.", "urllib.", "http.")
IO_METHODS = frozenset(
    {
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
        "mkdir",
        "unlink",
        "rmdir",
        "touch",
        "rename",
        "replace",
        "flush",
    }
)

#: RNG constructors whose *instances* must not be shared across pool
#: chunk boundaries (seeded or not: chunk-width changes consumption).
RNG_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)

#: Root classes of the scheduler taxonomy; their ``cycle_*`` bodies are
#: the documented *defaults*, not implementations.
SCHEDULER_ROOTS = frozenset({"Scheduler", "SmpScheduler"})

#: The fast-forward conformance surface of :class:`repro.sched.base.Scheduler`.
CYCLE_SURFACE = ("cycle_state", "shift_times", "cycle_periods", "cycle_counters")


@dataclass(frozen=True)
class CallRef:
    """One unresolved call site recorded during extraction.

    ``kind`` is ``"name"`` (a bare-name call, resolved against nested
    defs, module functions, imports and classes), ``"self"`` (a
    ``self.m()``/``cls.m()`` call, resolved through the owner class's
    project MRO) or ``"method"`` (``obj.m()``, resolved by method name
    project-wide, stoplist permitting).
    """

    kind: str
    name: str
    owner: str = ""

    def to_json(self) -> list[str]:
        """Serialise for the facts cache."""
        return [self.kind, self.name, self.owner]

    @staticmethod
    def from_json(raw: list[str]) -> CallRef:
        """Rebuild from :meth:`to_json` output."""
        return CallRef(kind=raw[0], name=raw[1], owner=raw[2])


@dataclass
class FunctionFacts:
    """Per-function base facts extracted from one module."""

    qualname: str
    lineno: int
    #: attribute names written through a non-``self`` receiver
    writes_attrs: list[str] = field(default_factory=list)
    #: attribute names written through a literal ``self`` receiver
    writes_self_attrs: list[str] = field(default_factory=list)
    #: non-local names this function rebinds/mutates (module-level
    #: candidates; qualified against ``module_globals`` at combine time)
    writes_names: list[str] = field(default_factory=list)
    #: non-local names read: ``["module", name]`` or ``["import", dotted]``
    loads: list[list[str]] = field(default_factory=list)
    calls: list[CallRef] = field(default_factory=list)
    reads_state: bool = False
    io: bool = False

    def to_json(self) -> dict[str, Any]:
        """Serialise for the facts cache."""
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "writes_attrs": list(self.writes_attrs),
            "writes_self_attrs": list(self.writes_self_attrs),
            "writes_names": list(self.writes_names),
            "loads": [list(item) for item in self.loads],
            "calls": [c.to_json() for c in self.calls],
            "reads_state": self.reads_state,
            "io": self.io,
        }

    @staticmethod
    def from_json(raw: dict[str, Any]) -> FunctionFacts:
        """Rebuild from :meth:`to_json` output."""
        return FunctionFacts(
            qualname=raw["qualname"],
            lineno=raw["lineno"],
            writes_attrs=list(raw["writes_attrs"]),
            writes_self_attrs=list(raw["writes_self_attrs"]),
            writes_names=list(raw["writes_names"]),
            loads=[list(item) for item in raw["loads"]],
            calls=[CallRef.from_json(c) for c in raw["calls"]],
            reads_state=raw["reads_state"],
            io=raw["io"],
        )


@dataclass
class ClassFacts:
    """Per-class facts: bases, methods, conformance declarations."""

    name: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    has_slots: bool = False
    abstract: bool = False
    #: ``cycle_defaults_ok = ("shift_times", ...)`` declaration, if any
    cycle_defaults_ok: list[str] | None = None
    #: ``cycle_ineligible = True`` declaration
    cycle_ineligible: bool = False

    def to_json(self) -> dict[str, Any]:
        """Serialise for the facts cache."""
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "has_slots": self.has_slots,
            "abstract": self.abstract,
            "cycle_defaults_ok": (
                None if self.cycle_defaults_ok is None else list(self.cycle_defaults_ok)
            ),
            "cycle_ineligible": self.cycle_ineligible,
        }

    @staticmethod
    def from_json(raw: dict[str, Any]) -> ClassFacts:
        """Rebuild from :meth:`to_json` output."""
        return ClassFacts(
            name=raw["name"],
            lineno=raw["lineno"],
            bases=list(raw["bases"]),
            methods=list(raw["methods"]),
            has_slots=raw["has_slots"],
            abstract=raw["abstract"],
            cycle_defaults_ok=(
                None if raw["cycle_defaults_ok"] is None else list(raw["cycle_defaults_ok"])
            ),
            cycle_ineligible=raw["cycle_ineligible"],
        )


@dataclass
class ModuleFacts:
    """Everything the project-wide combiner needs from one module."""

    path: str
    parse_failed: bool = False
    functions: list[FunctionFacts] = field(default_factory=list)
    classes: list[ClassFacts] = field(default_factory=list)
    #: module-level assigned names (the CC globals universe)
    module_globals: list[str] = field(default_factory=list)
    #: module-level names bound to an RNG instance
    module_rngs: list[str] = field(default_factory=list)
    #: ``{local name: canonical dotted}`` import table
    aliases: dict[str, str] = field(default_factory=dict)
    #: set-typed attribute names (DT005's cross-file table)
    set_attrs: list[str] = field(default_factory=list)
    #: worker callables shipped to a pool, as unresolved refs
    workers: list[CallRef] = field(default_factory=list)
    #: string keys of a ``CONTROLLER_KNOBS = {...}`` literal, if defined
    knob_keys: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        """Serialise for the facts cache."""
        return {
            "path": self.path,
            "parse_failed": self.parse_failed,
            "functions": [f.to_json() for f in self.functions],
            "classes": [c.to_json() for c in self.classes],
            "module_globals": list(self.module_globals),
            "module_rngs": list(self.module_rngs),
            "aliases": dict(self.aliases),
            "set_attrs": list(self.set_attrs),
            "workers": [w.to_json() for w in self.workers],
            "knob_keys": list(self.knob_keys),
        }

    @staticmethod
    def from_json(raw: dict[str, Any]) -> ModuleFacts:
        """Rebuild from :meth:`to_json` output."""
        return ModuleFacts(
            path=raw["path"],
            parse_failed=raw["parse_failed"],
            functions=[FunctionFacts.from_json(f) for f in raw["functions"]],
            classes=[ClassFacts.from_json(c) for c in raw["classes"]],
            module_globals=list(raw["module_globals"]),
            module_rngs=list(raw["module_rngs"]),
            aliases=dict(raw["aliases"]),
            set_attrs=list(raw["set_attrs"]),
            workers=[CallRef.from_json(w) for w in raw["workers"]],
            knob_keys=list(raw["knob_keys"]),
        )


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _string_tuple(node: ast.expr) -> list[str] | None:
    """A tuple/list literal of string constants, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: list[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


def _is_abstract_def(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in fn.decorator_list:
        name = deco.id if isinstance(deco, ast.Name) else (
            deco.attr if isinstance(deco, ast.Attribute) else None
        )
        if name in {"abstractmethod", "abstractproperty"}:
            return True
    return False


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters plus every name the function itself binds."""
    args = fn.args
    names = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            names.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if sub is not fn:
                names.add(sub.name)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            names.add(sub.name)
    return names


def classify_call(
    node: ast.Call,
    *,
    class_name: str = "",
) -> CallRef | None:
    """Map one call expression to a :class:`CallRef` (or ``None``).

    ``class_name`` is the enclosing class when the call appears inside a
    method body, so ``self.m()`` can be routed through the owner's MRO.
    """
    fn = node.func
    if isinstance(fn, ast.Name):
        return CallRef(kind="name", name=fn.id)
    if isinstance(fn, ast.Attribute):
        value = fn.value
        if isinstance(value, ast.Name) and value.id in {"self", "cls"} and class_name:
            return CallRef(kind="self", name=fn.attr, owner=class_name)
        return CallRef(kind="method", name=fn.attr)
    return None


class _ModuleExtractor:
    """Single-pass fact extraction over one parsed module."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.facts = ModuleFacts(path=path)
        self.facts.aliases = import_aliases(tree)

    def run(self) -> ModuleFacts:
        """Extract and return the module's facts."""
        self._module_level()
        self._collect_set_attrs()
        for node in self.tree.body:
            self._visit_scope(node, class_stack=[], func_stack=[])
        return self.facts

    # -- module level ----------------------------------------------------
    def _module_level(self) -> None:
        aliases = self.facts.aliases
        for node in self.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self.facts.module_globals.append(target.id)
                if value is None:
                    continue
                if isinstance(value, ast.Call):
                    dotted = _dotted_of(value.func, aliases)
                    if dotted is not None and (
                        dotted in RNG_CONSTRUCTORS
                        or dotted.startswith(("random.", "numpy.random."))
                    ):
                        self.facts.module_rngs.append(target.id)
                if target.id == "CONTROLLER_KNOBS" and isinstance(value, ast.Dict):
                    for key in value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            self.facts.knob_keys.append(key.value)

    def _collect_set_attrs(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.AnnAssign) and annotation_is_set(node.annotation):
                if isinstance(node.target, ast.Attribute):
                    self.facts.set_attrs.append(node.target.attr)
                elif isinstance(node.target, ast.Name) and _inside_class_body(
                    self.tree, node
                ):
                    # handled per-class below; collected here for the flat table
                    self.facts.set_attrs.append(node.target.id)

    # -- scopes ----------------------------------------------------------
    def _visit_scope(
        self, node: ast.stmt, *, class_stack: list[str], func_stack: list[str]
    ) -> None:
        if isinstance(node, ast.ClassDef):
            self._class_facts(node)
            for stmt in node.body:
                self._visit_scope(
                    stmt, class_stack=[*class_stack, node.name], func_stack=func_stack
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = ".".join([*class_stack, *func_stack, node.name])
            self._function_facts(node, qual, class_stack[-1] if class_stack else "")
            for stmt in node.body:
                self._visit_scope(
                    stmt,
                    class_stack=class_stack,
                    func_stack=[*func_stack, node.name],
                )
            return
        # other statements can still *contain* defs (if/try bodies, with
        # blocks, except* handlers); recurse through the compat iterator
        for child in iter_child_nodes_compat(node):
            if isinstance(child, ast.stmt):
                self._visit_scope(child, class_stack=class_stack, func_stack=func_stack)

    def _class_facts(self, node: ast.ClassDef) -> None:
        facts = ClassFacts(name=node.name, lineno=node.lineno)
        for base in node.bases:
            if isinstance(base, ast.Name):
                facts.bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                facts.bases.append(base.attr)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                facts.methods.append(stmt.name)
                if _is_abstract_def(stmt):
                    facts.abstract = True
                continue
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "__slots__":
                    facts.has_slots = True
                elif target.id == "cycle_defaults_ok" and value is not None:
                    facts.cycle_defaults_ok = _string_tuple(value) or []
                elif target.id == "cycle_ineligible" and value is not None:
                    facts.cycle_ineligible = (
                        isinstance(value, ast.Constant) and value.value is True
                    )
        self.facts.classes.append(facts)

    # -- functions -------------------------------------------------------
    def _function_facts(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, qual: str, class_name: str
    ) -> None:
        facts = FunctionFacts(qualname=qual, lineno=fn.lineno)
        locals_ = _local_names(fn)
        declared_global: set[str] = set()
        aliases = self.facts.aliases

        def note_attr_write(target: ast.Attribute) -> None:
            base = target.value
            if isinstance(base, ast.Name) and base.id in {"self", "cls"}:
                facts.writes_self_attrs.append(target.attr)
            else:
                facts.writes_attrs.append(target.attr)

        def note_store(target: ast.expr) -> None:
            if isinstance(target, ast.Attribute):
                note_attr_write(target)
            elif isinstance(target, ast.Subscript):
                base: ast.expr = target.value
                if isinstance(base, ast.Attribute):
                    note_attr_write(base)
                elif isinstance(base, ast.Name) and base.id not in locals_:
                    facts.writes_names.append(base.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    note_store(elt)

        for sub in _walk_own_body(fn):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
                facts.writes_names.extend(sub.names)
            elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    sub.targets
                    if isinstance(sub, (ast.Assign, ast.Delete))
                    else [sub.target]
                )
                for target in targets:
                    note_store(target)
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        facts.writes_names.append(target.id)
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                facts.reads_state = True
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in locals_:
                    continue
                dotted = aliases.get(sub.id)
                if dotted is not None:
                    facts.loads.append(["import", dotted])
                else:
                    facts.loads.append(["module", sub.id])
                    facts.reads_state = True
            elif isinstance(sub, ast.Call):
                self._note_call(sub, facts, locals_, class_name)
        facts.loads = [
            [kind, name] for kind, name in sorted({(it[0], it[1]) for it in facts.loads})
        ]
        facts.writes_attrs = sorted(set(facts.writes_attrs))
        facts.writes_self_attrs = sorted(set(facts.writes_self_attrs))
        facts.writes_names = sorted(set(facts.writes_names))
        self.facts.functions.append(facts)

    def _note_call(
        self,
        node: ast.Call,
        facts: FunctionFacts,
        locals_: set[str],
        class_name: str,
    ) -> None:
        aliases = self.facts.aliases
        fn = node.func
        dotted = _dotted_of(fn, aliases)
        if dotted is not None and dotted.startswith(IO_DOTTED_PREFIXES):
            facts.io = True
        if isinstance(fn, ast.Name):
            if fn.id in IO_NAME_CALLS:
                facts.io = True
            if fn.id == "map_fn" and node.args:
                self._note_worker(node.args[0], class_name)
        elif isinstance(fn, ast.Attribute):
            if fn.attr in IO_METHODS:
                facts.io = True
            if fn.attr in MUTATOR_METHODS:
                receiver = fn.value
                if isinstance(receiver, ast.Attribute):
                    base = receiver.value
                    if isinstance(base, ast.Name) and base.id in {"self", "cls"}:
                        facts.writes_self_attrs.append(receiver.attr)
                    else:
                        facts.writes_attrs.append(receiver.attr)
                elif isinstance(receiver, ast.Name) and receiver.id not in locals_:
                    facts.writes_names.append(receiver.id)
            if fn.attr == "submit" and node.args:
                self._note_worker(node.args[0], class_name)
            elif fn.attr in {"map", "imap", "imap_unordered", "starmap"} and node.args:
                recv = fn.value
                recv_name = recv.id if isinstance(recv, ast.Name) else (
                    recv.attr if isinstance(recv, ast.Attribute) else ""
                )
                if "pool" in recv_name.lower() or "executor" in recv_name.lower():
                    self._note_worker(node.args[0], class_name)
        for kw in node.keywords:
            if kw.arg in {"map_fn", "initializer"}:
                self._note_worker(kw.value, class_name)
        ref = classify_call(node, class_name=class_name)
        if ref is not None:
            facts.calls.append(ref)

    def _note_worker(self, node: ast.expr, class_name: str) -> None:
        ref = (
            classify_call(ast.Call(func=node, args=[], keywords=[]), class_name=class_name)
            if isinstance(node, (ast.Name, ast.Attribute))
            else None
        )
        if ref is not None:
            self.facts.workers.append(ref)


def _walk_own_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.AST]:
    """Every node in ``fn``'s own body, not descending into nested defs.

    Nested functions are extracted separately (they carry their own
    facts), and lambda bodies hold no statements; both are pruned.
    ``try``/``except*`` handlers and PEP 695 scopes traverse through
    :func:`~repro.analysis.lint.astutil.iter_child_nodes_compat`.
    """
    out: list[ast.AST] = []
    stack: list[ast.AST] = [child for child in fn.body]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            continue
        out.append(node)
        stack.extend(iter_child_nodes_compat(node))
    return out


def _dotted_of(node: ast.expr, aliases: dict[str, str]) -> str | None:
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def _inside_class_body(tree: ast.Module, target: ast.AST) -> bool:
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef) and any(stmt is target for stmt in cls.body):
            return True
    return False


def extract_module_facts(path: str, tree: ast.Module) -> ModuleFacts:
    """Extract :class:`ModuleFacts` from one parsed module."""
    return _ModuleExtractor(path, tree).run()


def failed_module_facts(path: str) -> ModuleFacts:
    """Facts placeholder for a module that failed to parse."""
    return ModuleFacts(path=path, parse_failed=True)


# ---------------------------------------------------------------------------
# combination: call graph + effect propagation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EffectSummary:
    """Transitive effect classification of one function.

    The three ``*_chain`` fields are witness call paths (function ids,
    ending in a human-readable ``attr:x`` / ``global:m::g`` / ``io``
    token); ``None`` means the effect is absent.
    """

    reads_state: bool = False
    sim_write_chain: tuple[str, ...] | None = None
    global_write_chain: tuple[str, ...] | None = None
    rng_read_chain: tuple[str, ...] | None = None
    io_chain: tuple[str, ...] | None = None

    @property
    def writes_sim_state(self) -> bool:
        """Whether a shared-object attribute write is reachable."""
        return self.sim_write_chain is not None

    @property
    def writes_global_state(self) -> bool:
        """Whether a module-global rebind/mutation is reachable."""
        return self.global_write_chain is not None

    @property
    def performs_io(self) -> bool:
        """Whether filesystem/process/console IO is reachable."""
        return self.io_chain is not None

    @property
    def pure(self) -> bool:
        """No reads, no writes, no IO anywhere in the call closure."""
        return not (
            self.reads_state
            or self.writes_sim_state
            or self.writes_global_state
            or self.performs_io
        )

    def classify(self) -> tuple[str, ...]:
        """Stable labels for reports and docs (``("pure",)`` if clean)."""
        labels: list[str] = []
        if self.writes_sim_state:
            labels.append("writes-sim-state")
        if self.writes_global_state:
            labels.append("writes-global-state")
        if self.performs_io:
            labels.append("performs-IO")
        if self.reads_state and not labels:
            labels.append("reads-sim-state")
        return tuple(labels) if labels else ("pure",)


@dataclass(frozen=True)
class SchedulerSurface:
    """Resolved fast-forward conformance surface of one scheduler class."""

    cls: str
    path: str
    lineno: int
    abstract: bool
    #: ``CYCLE_SURFACE`` methods defined by the class or a project ancestor
    defined: frozenset[str]
    #: methods declared as intentionally relying on the base defaults
    declared_defaults: frozenset[str]
    #: ``True`` when ``cycle_defaults_ok`` was declared (even empty)
    has_declaration: bool
    ineligible: bool
    #: methods the class's own body defines (for staleness checks)
    own_defined: frozenset[str]


def _module_dotted(path: str) -> str:
    """Dotted module name of a lint path (``repro/sim/kernel.py`` form)."""
    posix = path.replace("\\", "/")
    if "repro/" in posix:
        posix = "repro/" + posix.rsplit("repro/", 1)[1]
    if posix.endswith("/__init__.py"):
        posix = posix[: -len("/__init__.py")]
    elif posix.endswith(".py"):
        posix = posix[:-3]
    return posix.strip("/").replace("/", ".")


class ProjectGraph:
    """The combined, resolved project view rules query.

    Built once per lint run by :func:`combine_facts`; exposes the call
    graph (``edges``), the effect table (``effects``), the resolved
    worker set (``workers``), the scheduler conformance surfaces
    (``scheduler_surfaces``) and the knob-registry key set
    (``knob_keys``).
    """

    def __init__(self, modules: list[ModuleFacts]) -> None:
        self.modules: dict[str, ModuleFacts] = {m.path: m for m in modules}
        #: function id -> (facts, module)
        self.functions: dict[str, tuple[FunctionFacts, ModuleFacts]] = {}
        #: dotted module name -> path
        self._dotted_to_path: dict[str, str] = {}
        #: method name -> sorted ids defining it (inside a class)
        self._methods: dict[str, list[str]] = {}
        #: class name -> (ClassFacts, module path); first definition wins
        self.classes: dict[str, tuple[ClassFacts, str]] = {}
        self.knob_keys: frozenset[str] = frozenset()
        self._index()
        self.edges: dict[str, tuple[str, ...]] = self._resolve_edges()
        self.effects: dict[str, EffectSummary] = self._propagate()
        self.workers: frozenset[str] = self._resolve_workers()
        self.scheduler_surfaces: dict[str, SchedulerSurface] = self._scheduler_surfaces()

    # -- indexing --------------------------------------------------------
    def _index(self) -> None:
        knob_keys: set[str] = set()
        for path in sorted(self.modules):
            mod = self.modules[path]
            self._dotted_to_path.setdefault(_module_dotted(path), path)
            knob_keys.update(mod.knob_keys)
            for fn in mod.functions:
                fid = f"{path}::{fn.qualname}"
                self.functions[fid] = (fn, mod)
                if "." in fn.qualname:
                    owner = fn.qualname.rsplit(".", 1)[0]
                    if any(c.name == owner.split(".")[-1] for c in mod.classes):
                        name = fn.qualname.rsplit(".", 1)[1]
                        self._methods.setdefault(name, []).append(fid)
            for cls in mod.classes:
                self.classes.setdefault(cls.name, (cls, path))
        self.knob_keys = frozenset(knob_keys)

    def function_id(self, path: str, qualname: str) -> str | None:
        """The id of ``qualname`` in module ``path``, if extracted."""
        fid = f"{path}::{qualname}"
        return fid if fid in self.functions else None

    # -- call resolution -------------------------------------------------
    def resolve_ref(self, ref: CallRef, path: str, caller_qual: str = "") -> tuple[str, ...]:
        """Resolve one :class:`CallRef` from module ``path`` to target ids."""
        mod = self.modules.get(path)
        if mod is None:
            return ()
        if ref.kind == "name":
            return self._resolve_name(ref.name, mod, caller_qual)
        if ref.kind == "self":
            target = self._resolve_method_in_mro(ref.owner, ref.name)
            return (target,) if target else ()
        if ref.kind == "method":
            if ref.name in METHOD_EDGE_STOPLIST:
                return ()
            return tuple(self._methods.get(ref.name, ()))
        return ()

    def _resolve_name(
        self, name: str, mod: ModuleFacts, caller_qual: str
    ) -> tuple[str, ...]:
        # nested def of the caller
        if caller_qual:
            nested = self.function_id(mod.path, f"{caller_qual}.{name}")
            if nested:
                return (nested,)
        # module-level function
        direct = self.function_id(mod.path, name)
        if direct:
            return (direct,)
        # imported function:  from repro.x import f  ->  repro.x.f
        dotted = mod.aliases.get(name)
        if dotted and "." in dotted:
            module_dotted, attr = dotted.rsplit(".", 1)
            target_path = self._dotted_to_path.get(module_dotted)
            if target_path:
                imported = self.function_id(target_path, attr)
                if imported:
                    return (imported,)
                ctor = self._resolve_method_in_mro(attr, "__init__")
                if ctor:
                    return (ctor,)
        # constructor of a project class
        if name in self.classes:
            ctor = self._resolve_method_in_mro(name, "__init__")
            if ctor:
                return (ctor,)
        return ()

    def _resolve_method_in_mro(self, class_name: str, method: str) -> str | None:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            cls, path = entry
            if method in cls.methods:
                return self.function_id(path, f"{cls.name}.{method}")
            queue.extend(cls.bases)
        return None

    def _resolve_edges(self) -> dict[str, tuple[str, ...]]:
        edges: dict[str, tuple[str, ...]] = {}
        for fid in sorted(self.functions):
            fn, mod = self.functions[fid]
            targets: list[str] = []
            for ref in fn.calls:
                targets.extend(self.resolve_ref(ref, mod.path, fn.qualname))
            edges[fid] = tuple(sorted(set(targets)))
        return edges

    # -- effect propagation ---------------------------------------------
    def _base_effects(self, fid: str) -> EffectSummary:
        fn, mod = self.functions[fid]
        in_obs = "repro/obs/" in mod.path or mod.path.startswith("repro/obs")
        simple = fn.qualname.rsplit(".", 1)[-1]
        sim_attrs = [a for a in fn.writes_attrs if not a.startswith("_obs")]
        if simple != "__init__":
            sim_attrs += [a for a in fn.writes_self_attrs if not a.startswith("_obs")]
        sim_chain: tuple[str, ...] | None = None
        if sim_attrs and not in_obs:
            sim_chain = (fid, f"attr:{sorted(sim_attrs)[0]}")
        global_names = sorted(
            n for n in fn.writes_names if n in set(mod.module_globals)
        )
        global_chain: tuple[str, ...] | None = None
        if global_names:
            global_chain = (fid, f"global:{mod.path}::{global_names[0]}")
        rng_chain: tuple[str, ...] | None = None
        rng_reads = sorted(self._rng_reads(fn, mod))
        if rng_reads:
            rng_chain = (fid, f"rng:{rng_reads[0]}")
        io_chain: tuple[str, ...] | None = (fid, "io") if fn.io else None
        return EffectSummary(
            reads_state=fn.reads_state,
            sim_write_chain=sim_chain,
            global_write_chain=global_chain,
            rng_read_chain=rng_chain,
            io_chain=io_chain,
        )

    def _rng_reads(self, fn: FunctionFacts, mod: ModuleFacts) -> list[str]:
        found: list[str] = []
        module_rngs = set(mod.module_rngs)
        for kind, name in fn.loads:
            if kind == "module" and name in module_rngs:
                found.append(f"{mod.path}::{name}")
            elif kind == "import" and "." in name:
                module_dotted, attr = name.rsplit(".", 1)
                target_path = self._dotted_to_path.get(module_dotted)
                if target_path and attr in set(self.modules[target_path].module_rngs):
                    found.append(f"{target_path}::{attr}")
        return found

    def _propagate(self) -> dict[str, EffectSummary]:
        effects = {fid: self._base_effects(fid) for fid in sorted(self.functions)}
        changed = True
        while changed:
            changed = False
            for fid in sorted(effects):
                current = effects[fid]
                reads = current.reads_state
                sim = current.sim_write_chain
                glo = current.global_write_chain
                rng = current.rng_read_chain
                io = current.io_chain
                for callee in self.edges.get(fid, ()):
                    if callee == fid:
                        continue
                    ce = effects[callee]
                    reads = reads or ce.reads_state
                    if sim is None and ce.sim_write_chain is not None:
                        sim = (fid, *ce.sim_write_chain)
                    if glo is None and ce.global_write_chain is not None:
                        glo = (fid, *ce.global_write_chain)
                    if rng is None and ce.rng_read_chain is not None:
                        rng = (fid, *ce.rng_read_chain)
                    if io is None and ce.io_chain is not None:
                        io = (fid, *ce.io_chain)
                updated = EffectSummary(
                    reads_state=reads,
                    sim_write_chain=sim,
                    global_write_chain=glo,
                    rng_read_chain=rng,
                    io_chain=io,
                )
                if updated != current:
                    effects[fid] = updated
                    changed = True
        return effects

    # -- workers ---------------------------------------------------------
    def _resolve_workers(self) -> frozenset[str]:
        found: set[str] = set()
        for path in sorted(self.modules):
            mod = self.modules[path]
            for ref in mod.workers:
                found.update(self.resolve_ref(ref, path))
        return frozenset(found)

    # -- scheduler conformance ------------------------------------------
    def _scheduler_closure(self) -> set[str]:
        closure = set(SCHEDULER_ROOTS)
        before = -1
        while before != len(closure):
            before = len(closure)
            for name, (cls, _path) in self.classes.items():
                if set(cls.bases) & closure:
                    closure.add(name)
        return closure

    def _scheduler_surfaces(self) -> dict[str, SchedulerSurface]:
        closure = self._scheduler_closure()
        surfaces: dict[str, SchedulerSurface] = {}
        for name in sorted(closure - SCHEDULER_ROOTS):
            entry = self.classes.get(name)
            if entry is None:
                continue
            cls, path = entry
            defined: set[str] = set()
            declared: set[str] = set()
            has_declaration = cls.cycle_defaults_ok is not None
            ineligible = cls.cycle_ineligible
            seen: set[str] = set()
            queue = [name]
            while queue:
                current = queue.pop(0)
                if current in seen or current in SCHEDULER_ROOTS:
                    continue
                seen.add(current)
                centry = self.classes.get(current)
                if centry is None:
                    continue
                ccls, _cpath = centry
                defined.update(m for m in ccls.methods if m in CYCLE_SURFACE)
                if ccls.cycle_defaults_ok is not None:
                    declared.update(ccls.cycle_defaults_ok)
                    has_declaration = True
                ineligible = ineligible or ccls.cycle_ineligible
                queue.extend(ccls.bases)
            surfaces[name] = SchedulerSurface(
                cls=name,
                path=path,
                lineno=cls.lineno,
                abstract=cls.abstract,
                defined=frozenset(defined),
                declared_defaults=frozenset(declared),
                has_declaration=has_declaration,
                ineligible=ineligible,
                own_defined=frozenset(m for m in cls.methods if m in CYCLE_SURFACE),
            )
        return surfaces


def combine_facts(modules: list[ModuleFacts]) -> ProjectGraph:
    """Combine per-module facts into the resolved :class:`ProjectGraph`."""
    return ProjectGraph(modules)
