"""Inline waiver syntax: ``# repro: allow[RULE]  -- reason``.

A waiver suppresses diagnostics of the named rule(s) on its own line, or
— when it is the only thing on its line — on the next source line.  The
``-- reason`` suffix is mandatory policy: a reason-less waiver is itself
reported (rule ``WV001``) and :mod:`scripts.check_waivers` fails CI on
it, so every suppression in the tree stays auditable.

Comments are found with :mod:`tokenize` rather than a line regex so that
waiver-shaped text inside string literals is never mis-parsed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

#: Matches the waiver comment body.  Rule list is comma-separated rule
#: ids (``DT001``) or pack prefixes (``DT``); the reason follows ``--``.
WAIVER_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z]{2,3}\d{0,3}(?:\s*,\s*[A-Z]{2,3}\d{0,3})*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Waiver:
    """One parsed waiver comment."""

    path: str
    line: int
    rules: tuple[str, ...]
    reason: str | None
    #: True when the comment is alone on its line (waives the next line).
    own_line: bool

    def covers(self, rule: str) -> bool:
        """Whether this waiver names ``rule`` (exactly or by pack prefix)."""
        return any(rule == r or (r.isalpha() and rule.startswith(r)) for r in self.rules)

    @property
    def target_line(self) -> int:
        """The source line whose diagnostics this waiver suppresses."""
        return self.line + 1 if self.own_line else self.line


def parse_waivers(source: str, path: str = "<string>") -> list[Waiver]:
    """Extract every waiver comment from ``source``.

    >>> ws = parse_waivers("x = now()  # repro: allow[DT001] -- replay stamp\\n")
    >>> (ws[0].rules, ws[0].reason, ws[0].own_line)
    (('DT001',), 'replay stamp', False)
    """
    waivers: list[Waiver] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Unparseable source is reported by the engine; no waivers apply.
        return waivers
    for tok in tokens:
        if tok.type is not tokenize.COMMENT:
            continue
        match = WAIVER_RE.search(tok.string)
        if match is None:
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(","))
        line_no = tok.start[0]
        text = lines[line_no - 1] if line_no <= len(lines) else ""
        own_line = text[: tok.start[1]].strip() == ""
        waivers.append(
            Waiver(
                path=path,
                line=line_no,
                rules=rules,
                reason=match.group("reason"),
                own_line=own_line,
            )
        )
    return waivers
