"""Lint driver: file discovery, scoping, rule execution, waiver audit.

The engine parses every file once, builds the cross-file
:class:`~repro.analysis.lint.context.ProjectContext`, runs each rule
over the files its scope covers, and then settles the waiver ledger:
an inline waiver suppresses matching diagnostics on its target line,
a reason-less waiver is reported as ``WV001`` and a waiver that
suppresses nothing as ``WV002`` — so the suppression surface can only
shrink, never silently rot.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import Any

from repro.analysis.lint.cache import AnalysisCache, facts_digest, source_digest
from repro.analysis.lint.callgraph import (
    ModuleFacts,
    extract_module_facts,
    failed_module_facts,
)
from repro.analysis.lint.context import ProjectContext, build_context_from_facts
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.rules import RULES, ParsedModule, Rule
from repro.analysis.lint.waivers import Waiver, parse_waivers

#: Path fragments (posix) a rule is restricted to by default.  Rules
#: absent from this table run everywhere.  The determinism pack guards
#: the simulation core; wall-clock reads in the experiment *harness*
#: (timing how long a sweep took) are legitimate.
SIM_DIRS = (
    "repro/sim/",
    "repro/sched/",
    "repro/core/",
    "repro/workloads/",
    "repro/faults/",
    "repro/fleet/",
)

DEFAULT_SCOPE: dict[str, tuple[str, ...]] = {
    "DT001": SIM_DIRS,
    # the tuner promises seed-determinism (same seed => byte-identical
    # report), so its RNG discipline is guarded like the sim core's
    "DT002": SIM_DIRS + ("repro/tune/",),
    "DT003": SIM_DIRS,
    # repro/core/events holds trigger thresholds compared against event
    # counts and virtual times: float equality there is always a bug
    # (DT003 already covers it through the repro/core/ entry above)
    "DT004": ("repro/sched/", "repro/faults/", "repro/fleet/", "repro/tune/", "repro/core/events"),
    "DT005": SIM_DIRS,
    # digest construction only: elsewhere dict views are insertion-ordered
    # and deterministic, but a digest must be canonical across histories
    "DT006": ("repro/sim/cycles", "repro/fleet/summary"),
    # the telemetry read-only theorem applies where `_obs` hook sites
    # live: the sim kernel, the schedulers, the runtime/controller/
    # supervisor/daemon stack, the fault harness and the trace recorder.
    # repro/obs/ itself is exempt: the hub mutating its own sinks is the
    # point, and effect extraction already discounts it.
    "OB001": ("repro/sim/", "repro/sched/", "repro/core/", "repro/faults/", "repro/tracer/"),
    "OB002": ("repro/sim/", "repro/sched/", "repro/core/", "repro/faults/", "repro/tracer/"),
}

#: Waiver-audit pseudo-rules (engine-level; they have no ``check``).
WV001 = ("WV001", "waiver without a reason")
WV002 = ("WV002", "waiver that suppresses nothing")


@dataclass(frozen=True)
class LintConfig:
    """What to lint and how strictly to scope it."""

    rules: tuple[Rule, ...] = tuple(RULES.values())
    #: Apply :data:`DEFAULT_SCOPE` path restrictions (tests disable this
    #: to run any rule against arbitrary fixture paths).
    scoped: bool = True
    #: Audit waivers (WV001/WV002); fixture tests may disable.
    audit_waivers: bool = True


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    waivers: list[Waiver] = field(default_factory=list)
    files: int = 0
    #: Files whose rules actually executed this run.
    analysed: int = 0
    #: Files served verbatim from the incremental cache's report layer.
    cached: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        """Active (non-waived) error diagnostics."""
        return [d for d in self.diagnostics if not d.waived and d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Active (non-waived) warning diagnostics."""
        return [d for d in self.diagnostics if not d.waived and d.severity is Severity.WARNING]

    @property
    def waived(self) -> list[Diagnostic]:
        """Diagnostics suppressed by an inline waiver."""
        return [d for d in self.diagnostics if d.waived]

    def failed(self, *, strict: bool = False) -> bool:
        """Whether the run should exit non-zero."""
        if self.errors:
            return True
        return strict and bool(self.warnings)

    def to_json(self) -> dict[str, Any]:
        """Machine-readable report (schema v2, see docs/static-analysis.md).

        v2 adds the incremental-analysis counters ``analysed`` and
        ``cached`` to both the top level and the summary block; the v1
        fields are unchanged.
        """
        return {
            "version": 2,
            "tool": "repro.analysis.lint",
            "files": self.files,
            "analysed": self.analysed,
            "cached": self.cached,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "waivers": [
                {
                    "path": w.path,
                    "line": w.line,
                    "rules": list(w.rules),
                    "reason": w.reason,
                }
                for w in self.waivers
            ],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "waived": len(self.waived),
                "files": self.files,
                "analysed": self.analysed,
                "cached": self.cached,
            },
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [d.render() for d in self.diagnostics if not d.waived]
        lines.append(
            f"{self.files} file(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.waived)} waived "
            f"({self.analysed} analysed, {self.cached} from cache)"
        )
        return "\n".join(lines)


def _rule_applies(rule_id: str, path: str, config: LintConfig) -> bool:
    if not config.scoped:
        return True
    fragments = DEFAULT_SCOPE.get(rule_id)
    if fragments is None:
        return True
    posix = Path(path).as_posix()
    return any(fragment in posix for fragment in fragments)


def _apply_waivers(
    diagnostics: list[Diagnostic],
    waivers: Sequence[Waiver],
    used: set[Waiver],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for diag in diagnostics:
        matched = None
        for waiver in waivers:
            if waiver.target_line == diag.line and waiver.covers(diag.rule):
                matched = waiver
                break
        if matched is not None:
            used.add(matched)
            out.append(diag.with_waiver(matched.reason))
        else:
            out.append(diag)
    return out


def _config_key(config: LintConfig) -> str:
    """Digest of the rule selection and engine flags (report-layer key)."""
    parts = [rule.id for rule in config.rules]
    parts += [f"scoped={config.scoped}", f"audit={config.audit_waivers}"]
    payload = ",".join(parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _parse_error_diag(path: str, exc: Exception) -> Diagnostic:
    lineno = getattr(exc, "lineno", 1) or 1
    offset = (getattr(exc, "offset", 1) or 1) - 1
    return Diagnostic(
        rule="E999",
        severity=Severity.ERROR,
        path=path,
        line=lineno,
        col=offset,
        message=f"source failed to parse: {exc}",
    )


def _lint_one_file(
    path: str,
    source: str,
    tree: ast.Module | None,
    config: LintConfig,
    ctx: ProjectContext,
) -> tuple[list[Diagnostic], list[Waiver]]:
    """Run rules + waiver settlement on one parsed file."""
    file_diags: list[Diagnostic] = []
    if tree is None:
        # facts extraction already recorded the failure; re-parse just to
        # recover the error's message and position for the diagnostic
        try:
            ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            file_diags.append(_parse_error_diag(path, exc))
        return file_diags, []
    module = ParsedModule(path=path, source=source, tree=tree)
    for rule in config.rules:
        if not _rule_applies(rule.id, path, config):
            continue
        file_diags.extend(rule.check(module, ctx))
    file_diags.sort(key=lambda d: (d.line, d.col, d.rule))
    waivers = parse_waivers(source, path)
    used: set[Waiver] = set()
    file_diags = _apply_waivers(file_diags, waivers, used)
    if config.audit_waivers:
        selected_ids = {rule.id for rule in config.rules}
        for waiver in waivers:
            if waiver.reason is None:
                file_diags.append(
                    Diagnostic(
                        rule=WV001[0],
                        severity=Severity.ERROR,
                        path=path,
                        line=waiver.line,
                        col=0,
                        message=(
                            "waiver without a reason; write "
                            "`# repro: allow[RULE]  -- why`"
                        ),
                    )
                )
            # a waiver for a rule outside the selected set cannot be
            # judged useless — its rule never ran (--select subsets)
            judgeable = any(waiver.covers(rid) for rid in selected_ids)
            if waiver not in used and judgeable:
                file_diags.append(
                    Diagnostic(
                        rule=WV002[0],
                        severity=Severity.ERROR,
                        path=path,
                        line=waiver.line,
                        col=0,
                        message=(
                            f"waiver for {', '.join(waiver.rules)} "
                            f"suppresses nothing; delete it"
                        ),
                    )
                )
    return file_diags, list(waivers)


def lint_sources(
    sources: dict[str, str],
    *,
    config: LintConfig | None = None,
    ctx: ProjectContext | None = None,
    cache: AnalysisCache | None = None,
    restrict: set[str] | None = None,
) -> LintReport:
    """Lint in-memory ``{path: source}`` files (the engine's heart).

    Two phases.  **Facts**: every file is parsed (or served from the
    cache's facts layer) so the interprocedural context sees the whole
    project, ``restrict`` or not.  **Rules**: rules run per file —
    skipped for files outside ``restrict`` (``--changed-only``), and
    served from the cache's report layer when the file, the project
    facts and the rule config all match a previous run.
    """
    config = config or LintConfig()
    report = LintReport()

    # Phase 1: per-module facts (cache-aware) + cross-file context.
    digests: dict[str, str] = {}
    trees: dict[str, ast.Module | None] = {}
    facts: list[ModuleFacts] = []
    for path, source in sources.items():
        digest = source_digest(source)
        digests[path] = digest
        cached_facts = cache.facts_for(digest) if cache is not None else None
        if cached_facts is not None and cached_facts.path == path:
            facts.append(cached_facts)
            continue
        try:
            tree: ast.Module | None = ast.parse(source, filename=path)
        except (SyntaxError, ValueError):
            tree = None
        trees[path] = tree
        module_facts = (
            failed_module_facts(path) if tree is None else extract_module_facts(path, tree)
        )
        facts.append(module_facts)
        if cache is not None:
            cache.store_facts(digest, module_facts)
    if ctx is None:
        ctx = build_context_from_facts(facts)

    # Phase 2: rules per file, report-layer cache consulted first.
    checked = [p for p in sources if restrict is None or p in restrict]
    report.files = len(checked)
    project_key = facts_digest(facts) if cache is not None else ""
    config_key = _config_key(config) if cache is not None else ""
    for path in checked:
        source = sources[path]
        report_key = ""
        if cache is not None:
            raw_key = f"{digests[path]}:{project_key}:{config_key}"
            report_key = hashlib.sha256(raw_key.encode("utf-8")).hexdigest()
            hit = cache.report_for(report_key)
            if hit is not None:
                file_diags, waivers = hit
                report.diagnostics.extend(file_diags)
                report.waivers.extend(waivers)
                report.cached += 1
                continue
        if path in trees:
            tree = trees[path]
        else:
            # facts came from the cache, so the file was never parsed
            # this run; parse it now for the rule phase
            try:
                tree = ast.parse(source, filename=path)
            except (SyntaxError, ValueError):
                tree = None
        file_diags, waivers = _lint_one_file(path, source, tree, config, ctx)
        report.diagnostics.extend(file_diags)
        report.waivers.extend(waivers)
        report.analysed += 1
        if cache is not None:
            cache.store_report(report_key, file_diags, waivers)
    if cache is not None:
        cache.save()
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return report


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    config: LintConfig | None = None,
) -> list[Diagnostic]:
    """Lint one in-memory source string; returns its diagnostics.

    Convenience wrapper used by rule unit tests and doc examples:

    >>> diags = lint_source(
    ...     "import time\\nt0 = time.time()\\n",
    ...     path="repro/sim/demo.py",
    ... )
    >>> [(d.rule, d.line) for d in diags]
    [('DT001', 2)]
    """
    return lint_sources({path: source}, config=config).diagnostics


def discover_files(paths: Iterable[str | os.PathLike[str]]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py" and path.is_file():
            out.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_paths(
    paths: Iterable[str | os.PathLike[str]],
    *,
    config: LintConfig | None = None,
    cache: AnalysisCache | None = None,
    restrict: set[str] | None = None,
) -> LintReport:
    """Lint files and directories on disk.

    ``restrict`` entries are matched against the same cwd-relative posix
    keys the report uses; every discovered file still feeds the
    cross-file context, restricted or not.
    """
    files = discover_files(paths)
    cwd = Path.cwd()
    sources: dict[str, str] = {}
    for file in files:
        try:
            rel = file.resolve().relative_to(cwd)
            key = rel.as_posix()
        except ValueError:
            key = file.as_posix()
        sources[key] = file.read_text(encoding="utf-8")
    return lint_sources(sources, config=config, cache=cache, restrict=restrict)
