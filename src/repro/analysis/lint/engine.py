"""Lint driver: file discovery, scoping, rule execution, waiver audit.

The engine parses every file once, builds the cross-file
:class:`~repro.analysis.lint.context.ProjectContext`, runs each rule
over the files its scope covers, and then settles the waiver ledger:
an inline waiver suppresses matching diagnostics on its target line,
a reason-less waiver is reported as ``WV001`` and a waiver that
suppresses nothing as ``WV002`` — so the suppression surface can only
shrink, never silently rot.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import Any

from repro.analysis.lint.context import ProjectContext, build_context
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.rules import RULES, ParsedModule, Rule
from repro.analysis.lint.waivers import Waiver, parse_waivers

#: Path fragments (posix) a rule is restricted to by default.  Rules
#: absent from this table run everywhere.  The determinism pack guards
#: the simulation core; wall-clock reads in the experiment *harness*
#: (timing how long a sweep took) are legitimate.
SIM_DIRS = (
    "repro/sim/",
    "repro/sched/",
    "repro/core/",
    "repro/workloads/",
    "repro/faults/",
    "repro/fleet/",
)

DEFAULT_SCOPE: dict[str, tuple[str, ...]] = {
    "DT001": SIM_DIRS,
    # the tuner promises seed-determinism (same seed => byte-identical
    # report), so its RNG discipline is guarded like the sim core's
    "DT002": SIM_DIRS + ("repro/tune/",),
    "DT003": SIM_DIRS,
    # repro/core/events holds trigger thresholds compared against event
    # counts and virtual times: float equality there is always a bug
    # (DT003 already covers it through the repro/core/ entry above)
    "DT004": ("repro/sched/", "repro/faults/", "repro/fleet/", "repro/tune/", "repro/core/events"),
    "DT005": SIM_DIRS,
    # digest construction only: elsewhere dict views are insertion-ordered
    # and deterministic, but a digest must be canonical across histories
    "DT006": ("repro/sim/cycles", "repro/fleet/summary"),
}

#: Waiver-audit pseudo-rules (engine-level; they have no ``check``).
WV001 = ("WV001", "waiver without a reason")
WV002 = ("WV002", "waiver that suppresses nothing")


@dataclass(frozen=True)
class LintConfig:
    """What to lint and how strictly to scope it."""

    rules: tuple[Rule, ...] = tuple(RULES.values())
    #: Apply :data:`DEFAULT_SCOPE` path restrictions (tests disable this
    #: to run any rule against arbitrary fixture paths).
    scoped: bool = True
    #: Audit waivers (WV001/WV002); fixture tests may disable.
    audit_waivers: bool = True


@dataclass
class LintReport:
    """Outcome of one lint run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    waivers: list[Waiver] = field(default_factory=list)
    files: int = 0

    @property
    def errors(self) -> list[Diagnostic]:
        """Active (non-waived) error diagnostics."""
        return [d for d in self.diagnostics if not d.waived and d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Active (non-waived) warning diagnostics."""
        return [d for d in self.diagnostics if not d.waived and d.severity is Severity.WARNING]

    @property
    def waived(self) -> list[Diagnostic]:
        """Diagnostics suppressed by an inline waiver."""
        return [d for d in self.diagnostics if d.waived]

    def failed(self, *, strict: bool = False) -> bool:
        """Whether the run should exit non-zero."""
        if self.errors:
            return True
        return strict and bool(self.warnings)

    def to_json(self) -> dict[str, Any]:
        """Machine-readable report (schema v1, see docs/static-analysis.md)."""
        return {
            "version": 1,
            "tool": "repro.analysis.lint",
            "files": self.files,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "waivers": [
                {
                    "path": w.path,
                    "line": w.line,
                    "rules": list(w.rules),
                    "reason": w.reason,
                }
                for w in self.waivers
            ],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "waived": len(self.waived),
                "files": self.files,
            },
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [d.render() for d in self.diagnostics if not d.waived]
        lines.append(
            f"{self.files} file(s): {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.waived)} waived"
        )
        return "\n".join(lines)


def _rule_applies(rule_id: str, path: str, config: LintConfig) -> bool:
    if not config.scoped:
        return True
    fragments = DEFAULT_SCOPE.get(rule_id)
    if fragments is None:
        return True
    posix = Path(path).as_posix()
    return any(fragment in posix for fragment in fragments)


def _apply_waivers(
    diagnostics: list[Diagnostic],
    waivers: Sequence[Waiver],
    used: set[Waiver],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for diag in diagnostics:
        matched = None
        for waiver in waivers:
            if waiver.target_line == diag.line and waiver.covers(diag.rule):
                matched = waiver
                break
        if matched is not None:
            used.add(matched)
            out.append(diag.with_waiver(matched.reason))
        else:
            out.append(diag)
    return out


def lint_sources(
    sources: dict[str, str],
    *,
    config: LintConfig | None = None,
    ctx: ProjectContext | None = None,
) -> LintReport:
    """Lint in-memory ``{path: source}`` files (the engine's heart)."""
    config = config or LintConfig()
    if ctx is None:
        ctx = build_context(sources)
    report = LintReport(files=len(sources))
    for path, source in sources.items():
        try:
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            lineno = getattr(exc, "lineno", 1) or 1
            offset = (getattr(exc, "offset", 1) or 1) - 1
            report.diagnostics.append(
                Diagnostic(
                    rule="E999",
                    severity=Severity.ERROR,
                    path=path,
                    line=lineno,
                    col=offset,
                    message=f"source failed to parse: {exc}",
                )
            )
            continue
        module = ParsedModule(path=path, source=source, tree=tree)
        file_diags: list[Diagnostic] = []
        for rule in config.rules:
            if not _rule_applies(rule.id, path, config):
                continue
            file_diags.extend(rule.check(module, ctx))
        file_diags.sort(key=lambda d: (d.line, d.col, d.rule))
        waivers = parse_waivers(source, path)
        report.waivers.extend(waivers)
        used: set[Waiver] = set()
        file_diags = _apply_waivers(file_diags, waivers, used)
        report.diagnostics.extend(file_diags)
        if config.audit_waivers:
            for waiver in waivers:
                if waiver.reason is None:
                    report.diagnostics.append(
                        Diagnostic(
                            rule=WV001[0],
                            severity=Severity.ERROR,
                            path=path,
                            line=waiver.line,
                            col=0,
                            message=(
                                "waiver without a reason; write "
                                "`# repro: allow[RULE]  -- why`"
                            ),
                        )
                    )
                if waiver not in used:
                    report.diagnostics.append(
                        Diagnostic(
                            rule=WV002[0],
                            severity=Severity.ERROR,
                            path=path,
                            line=waiver.line,
                            col=0,
                            message=(
                                f"waiver for {', '.join(waiver.rules)} "
                                f"suppresses nothing; delete it"
                            ),
                        )
                    )
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return report


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    config: LintConfig | None = None,
) -> list[Diagnostic]:
    """Lint one in-memory source string; returns its diagnostics.

    Convenience wrapper used by rule unit tests and doc examples:

    >>> diags = lint_source(
    ...     "import time\\nt0 = time.time()\\n",
    ...     path="repro/sim/demo.py",
    ... )
    >>> [(d.rule, d.line) for d in diags]
    [('DT001', 2)]
    """
    return lint_sources({path: source}, config=config).diagnostics


def discover_files(paths: Iterable[str | os.PathLike[str]]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py" and path.is_file():
            out.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_paths(
    paths: Iterable[str | os.PathLike[str]],
    *,
    config: LintConfig | None = None,
) -> LintReport:
    """Lint files and directories on disk."""
    files = discover_files(paths)
    cwd = Path.cwd()
    sources: dict[str, str] = {}
    for file in files:
        try:
            rel = file.resolve().relative_to(cwd)
            key = rel.as_posix()
        except ValueError:
            key = file.as_posix()
        sources[key] = file.read_text(encoding="utf-8")
    return lint_sources(sources, config=config)
