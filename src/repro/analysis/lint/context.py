"""Cross-file facts the rules need (a cheap whole-project pre-pass).

Three symbol tables are collected before any rule runs:

- ``slots_classes`` — names of classes whose body assigns ``__slots__``
  (rule SC003 flags monkey-patching these);
- ``instruction_classes`` — names of classes that are (or extend) the
  simulator's instruction taxonomy (rule SC001 flags constructing one as
  a bare statement instead of ``yield``-ing it);
- ``set_attrs`` — attribute names annotated or initialised as
  ``set``/``frozenset`` anywhere in the project, so rule DT005 can flag
  ``for pid in server.members`` even when the class lives in another
  file.

The pre-pass is purely syntactic: it never imports the scanned code, so
linting stays safe on broken or hostile sources.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.astutil import annotation_is_set

#: The instruction classes of :mod:`repro.sim.instructions`; seeds the
#: instruction table so fixtures need not re-declare them.
INSTRUCTION_SEEDS = frozenset({"Compute", "Syscall", "Fire", "Label", "Instruction"})


@dataclass(frozen=True)
class ProjectContext:
    """Symbol tables shared by every rule invocation of one lint run."""

    slots_classes: frozenset[str] = frozenset()
    instruction_classes: frozenset[str] = INSTRUCTION_SEEDS
    #: Attribute names known (project-wide) to hold ``set``/``frozenset``.
    set_attrs: frozenset[str] = frozenset()
    #: Paths that failed to parse during the pre-pass (reported once).
    unparsed: tuple[str, ...] = ()


@dataclass
class _Collector:
    """Mutable accumulator the pre-pass folds module trees into."""

    slots_classes: set[str] = field(default_factory=set)
    instruction_classes: set[str] = field(default_factory=lambda: set(INSTRUCTION_SEEDS))
    set_attrs: set[str] = field(default_factory=set)
    unparsed: list[str] = field(default_factory=list)

    def _add_set_attrs(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.AnnAssign):
                continue
            if not annotation_is_set(node.annotation):
                continue
            # instance attribute (`self.x: set[int] = ...`) or a class-body
            # declaration (`members: set[int]`): both name a set-typed slot.
            if isinstance(node.target, ast.Attribute):
                self.set_attrs.add(node.target.attr)

    def add_tree(self, tree: ast.Module) -> None:
        """Fold one module's classes and set-typed attributes in."""
        self._add_set_attrs(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and annotation_is_set(stmt.annotation)
                ):
                    self.set_attrs.add(stmt.target.id)
            base_names = {
                base.id if isinstance(base, ast.Name) else base.attr
                for base in node.bases
                if isinstance(base, (ast.Name, ast.Attribute))
            }
            if base_names & self.instruction_classes:
                self.instruction_classes.add(node.name)
            for stmt in node.body:
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                if any(isinstance(t, ast.Name) and t.id == "__slots__" for t in targets):
                    self.slots_classes.add(node.name)

    def freeze(self) -> ProjectContext:
        """Snapshot the accumulator into an immutable context."""
        return ProjectContext(
            slots_classes=frozenset(self.slots_classes),
            instruction_classes=frozenset(self.instruction_classes),
            set_attrs=frozenset(self.set_attrs),
            unparsed=tuple(self.unparsed),
        )


def build_context(sources: dict[str, str]) -> ProjectContext:
    """Fold ``{path: source}`` into a :class:`ProjectContext`.

    Instruction-class collection iterates to a fixed point so a chain of
    subclasses spread over several files still resolves (two passes
    suffice per level of the chain; realistic depth is tiny).
    """
    collector = _Collector()
    trees: list[ast.Module] = []
    for path, source in sources.items():
        try:
            trees.append(ast.parse(source, filename=path))
        except (SyntaxError, ValueError):
            collector.unparsed.append(path)
    before = -1
    while before != len(collector.instruction_classes):
        before = len(collector.instruction_classes)
        for tree in trees:
            collector.add_tree(tree)
    return collector.freeze()
