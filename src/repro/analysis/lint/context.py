"""Cross-file facts the rules need (the whole-project pre-pass).

The pre-pass extracts per-module :class:`~repro.analysis.lint.callgraph.ModuleFacts`
(purely syntactic — it never imports the scanned code, so linting stays
safe on broken or hostile sources) and combines them into a
:class:`~repro.analysis.lint.callgraph.ProjectGraph`: the project call
graph, transitive effect summaries, resolved pool-worker set, scheduler
conformance surfaces and the knob-registry key set.  The classic symbol
tables ride on top:

- ``slots_classes`` — names of classes whose body assigns ``__slots__``
  (rule SC003 flags monkey-patching these);
- ``instruction_classes`` — names of classes that are (or extend) the
  simulator's instruction taxonomy (rule SC001 flags constructing one as
  a bare statement instead of ``yield``-ing it);
- ``set_attrs`` — attribute names annotated or initialised as
  ``set``/``frozenset`` anywhere in the project, so rule DT005 can flag
  ``for pid in server.members`` even when the class lives in another
  file.

Because facts are JSON-serialisable and keyed by source digest, the
incremental cache (:mod:`repro.analysis.lint.cache`) can skip extraction
for unchanged modules and rebuild the combined context from stored
facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.callgraph import (
    ModuleFacts,
    ProjectGraph,
    combine_facts,
    extract_module_facts,
    failed_module_facts,
)

#: The instruction classes of :mod:`repro.sim.instructions`; seeds the
#: instruction table so fixtures need not re-declare them.
INSTRUCTION_SEEDS = frozenset({"Compute", "Syscall", "Fire", "Label", "Instruction"})


@dataclass(frozen=True, eq=False)
class ProjectContext:
    """Symbol tables and graph shared by every rule of one lint run."""

    slots_classes: frozenset[str] = frozenset()
    instruction_classes: frozenset[str] = INSTRUCTION_SEEDS
    #: Attribute names known (project-wide) to hold ``set``/``frozenset``.
    set_attrs: frozenset[str] = frozenset()
    #: Paths that failed to parse during the pre-pass (reported once).
    unparsed: tuple[str, ...] = ()
    #: The resolved interprocedural view; ``None`` only for the bare
    #: default context (rule unit tests), in which case the OB/CC/KN/FF
    #: packs report nothing.
    graph: ProjectGraph | None = field(default=None, repr=False)


def _instruction_closure(modules: list[ModuleFacts]) -> frozenset[str]:
    closure = set(INSTRUCTION_SEEDS)
    before = -1
    while before != len(closure):
        before = len(closure)
        for mod in modules:
            for cls in mod.classes:
                if set(cls.bases) & closure:
                    closure.add(cls.name)
    return frozenset(closure)


def build_context_from_facts(modules: list[ModuleFacts]) -> ProjectContext:
    """Combine extracted (or cache-restored) facts into a context."""
    slots: set[str] = set()
    set_attrs: set[str] = set()
    unparsed: list[str] = []
    for mod in modules:
        if mod.parse_failed:
            unparsed.append(mod.path)
        set_attrs.update(mod.set_attrs)
        slots.update(cls.name for cls in mod.classes if cls.has_slots)
    return ProjectContext(
        slots_classes=frozenset(slots),
        instruction_classes=_instruction_closure(modules),
        set_attrs=frozenset(set_attrs),
        unparsed=tuple(sorted(unparsed)),
        graph=combine_facts(modules),
    )


def build_context(sources: dict[str, str]) -> ProjectContext:
    """Fold ``{path: source}`` into a :class:`ProjectContext`.

    Extraction is per-module; combination (including the instruction
    fixed point and effect propagation) happens once over all facts.
    """
    modules: list[ModuleFacts] = []
    for path, source in sources.items():
        try:
            tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError):
            modules.append(failed_module_facts(path))
            continue
        modules.append(extract_module_facts(path, tree))
    return build_context_from_facts(modules)
