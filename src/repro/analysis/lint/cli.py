"""Command-line front end of the linter.

Reached two ways — ``repro-exp lint ...`` (subcommand of the main CLI)
and ``python -m repro.analysis ...`` (standalone, importable without the
experiment stack).  Exit status: 0 clean, 1 diagnostics found, 2 usage
error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.lint.engine import (
    DEFAULT_SCOPE,
    LintConfig,
    LintReport,
    lint_paths,
)
from repro.analysis.lint.rules import RULES, select_rules

#: Default lint target: the installed ``repro`` package source tree.
def default_paths() -> list[str]:
    """Locate ``src/repro`` relative to this file (works from a checkout)."""
    import repro

    return [p for p in repro.__path__]


def build_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    """Create (or extend, for the ``repro-exp lint`` subcommand) the parser."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="python -m repro.analysis",
            description="Determinism & sim-invariant linter for the repro tree.",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument("--json", action="store_true", help="emit the machine-readable report")
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids or pack prefixes (e.g. DT001,SC)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI setting)",
    )
    parser.add_argument(
        "--no-scope",
        action="store_true",
        help="apply every rule to every file, ignoring the default path scopes",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def list_rules_text() -> str:
    """The rule catalogue as aligned text (also used by --list-rules)."""
    lines = []
    for rule in RULES.values():
        scope = DEFAULT_SCOPE.get(rule.id)
        where = ", ".join(s.rstrip("/") for s in scope) if scope else "everywhere"
        lines.append(f"{rule.id}  {rule.severity.value:7s}  {rule.title}  [{where}]")
    lines.append("WV001  error    waiver without a reason  [everywhere]")
    lines.append("WV002  error    waiver that suppresses nothing  [everywhere]")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(list_rules_text())
        return 0
    try:
        rules = select_rules(
            [s.strip() for s in args.select.split(",") if s.strip()]
            if args.select
            else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = LintConfig(rules=tuple(rules), scoped=not args.no_scope)
    try:
        report: LintReport = lint_paths(args.paths or default_paths(), config=config)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=2, allow_nan=False))
    else:
        print(report.render())
    return 1 if report.failed(strict=args.strict) else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    return run_lint(build_parser().parse_args(argv))
