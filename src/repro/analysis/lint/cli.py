"""Command-line front end of the linter.

Reached two ways — ``repro-exp lint ...`` (subcommand of the main CLI)
and ``python -m repro.analysis ...`` (standalone, importable without the
experiment stack).  Exit status: 0 clean, 1 diagnostics found, 2 usage
error.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.lint.cache import AnalysisCache
from repro.analysis.lint.engine import (
    DEFAULT_SCOPE,
    LintConfig,
    LintReport,
    lint_paths,
)
from repro.analysis.lint.rules import RULES, select_rules
from repro.analysis.lint.sarif import to_sarif


#: Default lint target: the installed ``repro`` package source tree.
def default_paths() -> list[str]:
    """Locate ``src/repro`` relative to this file (works from a checkout)."""
    import repro

    return [p for p in repro.__path__]


def build_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    """Create (or extend, for the ``repro-exp lint`` subcommand) the parser."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="python -m repro.analysis",
            description="Determinism & sim-invariant linter for the repro tree.",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--output",
        choices=("text", "json", "sarif"),
        default=None,
        help="report format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (alias of --output json)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids, pack prefixes or globs (e.g. DT001,SC,CC*)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (the CI setting)",
    )
    parser.add_argument(
        "--no-scope",
        action="store_true",
        help="apply every rule to every file, ignoring the default path scopes",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="incremental-analysis cache directory (warm runs re-analyse only changed files)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "run rules only on files reported by `git diff --name-only HEAD`; "
            "unchanged files still feed the cross-file analysis"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def list_rules_text() -> str:
    """The rule catalogue as aligned text (also used by --list-rules)."""
    lines = []
    for rule in RULES.values():
        scope = DEFAULT_SCOPE.get(rule.id)
        where = ", ".join(s.rstrip("/") for s in scope) if scope else "everywhere"
        lines.append(f"{rule.id}  {rule.severity.value:7s}  {rule.title}  [{where}]")
    lines.append("WV001  error    waiver without a reason  [everywhere]")
    lines.append("WV002  error    waiver that suppresses nothing  [everywhere]")
    return "\n".join(lines)


def changed_files() -> set[str]:
    """Repo files touched since ``HEAD``, as cwd-relative posix paths.

    Union of ``git diff --name-only HEAD`` (staged + unstaged) and
    ``git ls-files --others --exclude-standard`` (new untracked files),
    mapped from repo-root-relative to cwd-relative so they match
    ``lint_paths`` report keys.
    """
    try:
        root = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        listing = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        raise RuntimeError(f"git unavailable for --changed-only: {exc}") from exc
    cwd = Path.cwd()
    out: set[str] = set()
    for line in (listing + untracked).splitlines():
        name = line.strip()
        if not name:
            continue
        path = Path(root) / name
        try:
            out.add(path.resolve().relative_to(cwd).as_posix())
        except ValueError:
            out.add(path.as_posix())
    return out


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(list_rules_text())
        return 0
    output = args.output or ("json" if args.json else "text")
    try:
        rules = select_rules(
            [s.strip() for s in args.select.split(",") if s.strip()]
            if args.select
            else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = LintConfig(rules=tuple(rules), scoped=not args.no_scope)
    cache = AnalysisCache(args.cache) if args.cache else None
    restrict: set[str] | None = None
    if args.changed_only:
        try:
            changed = changed_files()
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        restrict = {
            key
            for key in changed
            if key.endswith(".py")
        }
    try:
        report: LintReport = lint_paths(
            args.paths or default_paths(), config=config, cache=cache, restrict=restrict
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if output == "json":
        print(json.dumps(report.to_json(), indent=2, allow_nan=False))
    elif output == "sarif":
        print(json.dumps(to_sarif(report.diagnostics), indent=2, allow_nan=False))
    else:
        print(report.render())
    return 1 if report.failed(strict=args.strict) else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analysis``."""
    return run_lint(build_parser().parse_args(argv))
