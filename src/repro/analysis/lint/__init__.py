"""Determinism & sim-invariant linter (static analysis).

Every guarantee the reproduction makes — bit-identical golden traces,
telemetry transparency, zero-intensity fault transparency — is enforced
*dynamically*, after a hazard has been committed.  This package closes
the gap statically: an AST-based linter with domain-specific rule packs
catches wall-clock reads, ambient entropy, float time arithmetic,
ordering-dependent set iteration and simulation-contract violations at
lint time, before any simulation runs.

Rule packs
----------

- **DT (determinism)** — hazards that break bit-identical replay:
  wall-clock reads, unseeded randomness, float literals flowing into the
  integer-nanosecond clock API, float ``==``, iteration over unordered
  sets.
- **SC (simulation contracts)** — invariants of the DES kernel: syscall
  instructions must be ``yield``-ed, calendar closures must not capture
  loop variables, ``__slots__`` classes must not be monkey-patched.
- **MP (multiprocessing safety)** — invariants of the PR-1 process-pool
  harness: ``map_fn`` work callables must be module-level picklables and
  must not rebind module globals.
- **WV (waivers)** — the audit trail itself: every inline waiver
  (``# repro: allow[RULE]  -- reason``) must carry a reason and must
  actually suppress something.

Entry points: ``repro-exp lint`` / ``python -m repro.analysis`` on the
command line, :func:`lint_paths` / :func:`lint_source` from Python.
"""

from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.engine import LintConfig, LintReport, lint_paths, lint_source
from repro.analysis.lint.rules import RULES, Rule
from repro.analysis.lint.waivers import Waiver, parse_waivers

__all__ = [
    "Diagnostic",
    "Severity",
    "LintConfig",
    "LintReport",
    "lint_paths",
    "lint_source",
    "RULES",
    "Rule",
    "Waiver",
    "parse_waivers",
]
