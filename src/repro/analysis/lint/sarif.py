"""SARIF 2.1.0 output for CI code-scanning integration.

One run object, one driver (``repro.analysis.lint``), one rule entry
per *registered* rule (so code-scanning UIs can show titles and help
text even for rules that found nothing this run), one result per
diagnostic.  Waived diagnostics are emitted with a ``suppressions``
entry of kind ``inSource`` carrying the waiver reason, matching how
GitHub code scanning models inline suppressions.

The emitted document validates against the OASIS SARIF 2.1.0 schema;
``tests/analysis/lint/test_sarif.py`` pins the structural invariants.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)

#: Engine-level pseudo-rules that can appear in reports but are not in
#: the registry (parse failures and the waiver audit).
_PSEUDO_RULES: dict[str, str] = {
    "E999": "source failed to parse",
    "WV001": "waiver without a reason",
    "WV002": "waiver that suppresses nothing",
}


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_descriptors() -> list[dict[str, Any]]:
    descriptors: list[dict[str, Any]] = []
    for rule in RULES.values():
        descriptors.append(
            {
                "id": rule.id,
                "name": rule.id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": _level(rule.severity)},
                "properties": {"pack": rule.pack},
            }
        )
    for rule_id, title in _PSEUDO_RULES.items():
        descriptors.append(
            {
                "id": rule_id,
                "name": rule_id,
                "shortDescription": {"text": title},
                "defaultConfiguration": {"level": "error"},
                "properties": {"pack": "engine"},
            }
        )
    return descriptors


def _result_of(diag: Diagnostic, rule_index: dict[str, int]) -> dict[str, Any]:
    region: dict[str, Any] = {
        "startLine": diag.line,
        # SARIF columns are 1-based; Diagnostic columns follow ast (0-based)
        "startColumn": diag.col + 1,
    }
    if diag.end_line is not None:
        region["endLine"] = diag.end_line
    if diag.end_col is not None:
        region["endColumn"] = diag.end_col + 1
    result: dict[str, Any] = {
        "ruleId": diag.rule,
        "level": _level(diag.severity),
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": region,
                }
            }
        ],
    }
    if diag.rule in rule_index:
        result["ruleIndex"] = rule_index[diag.rule]
    if diag.waived:
        suppression: dict[str, Any] = {"kind": "inSource"}
        if diag.waiver_reason:
            suppression["justification"] = diag.waiver_reason
        result["suppressions"] = [suppression]
    return result


def to_sarif(
    diagnostics: list[Diagnostic], *, tool_version: str = "1.0.0"
) -> dict[str, Any]:
    """Render diagnostics as a SARIF 2.1.0 log dictionary."""
    descriptors = _rule_descriptors()
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis.lint",
                        "version": tool_version,
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result_of(d, rule_index) for d in diagnostics],
            }
        ],
    }
