"""Shared AST plumbing for the rule packs.

Import resolution maps local aliases back to canonical dotted names
(``from time import perf_counter as pc`` makes ``pc()`` resolve to
``time.perf_counter``), so the determinism rules match *what is called*,
not how the import was spelled.  The float-taint walk asks whether an
expression can introduce a non-integer into the integer-nanosecond time
domain, pruning subtrees that an explicit integer conversion already
sanitises.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: Calls that re-integerise their result; float arithmetic beneath one
#: of these is already sanitised when it reaches the clock API.
INT_SANITISERS = frozenset({"int", "round", "len", "from_seconds", "from_millis", "from_micros"})

#: ``try`` statements, including PEP 654 ``try/except*`` on 3.11+.  Use
#: this instead of ``ast.Try`` in isinstance checks so exception-group
#: handlers are traversed rather than silently falling through.
TRY_NODES: tuple[type[ast.AST], ...] = (
    (ast.Try, ast.TryStar) if hasattr(ast, "TryStar") else (ast.Try,)
)

#: PEP 695 ``type X = ...`` statements (3.12+); empty tuple on older
#: interpreters so ``isinstance(node, TYPE_ALIAS_NODES)`` is just False.
TYPE_ALIAS_NODES: tuple[type[ast.AST], ...] = (
    (ast.TypeAlias,) if hasattr(ast, "TypeAlias") else ()  # type: ignore[attr-defined]
)


def is_type_alias(node: ast.AST) -> bool:
    """Whether ``node`` is a PEP 695 ``type X = ...`` statement."""
    return bool(TYPE_ALIAS_NODES) and isinstance(node, TYPE_ALIAS_NODES)


def iter_child_nodes_compat(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.iter_child_nodes`` that is safe on 3.12 node kinds.

    Two differences from the stdlib helper:

    - PEP 695 type-alias statements are yielded as opaque leaves — their
      value subtree is a *type expression*, not runtime code, so walking
      into it would make rules report on annotations;
    - ``try/except*`` handlers are traversed explicitly, so a walker
      written against ``ast.Try`` still sees code inside exception-group
      handlers instead of skipping the statement wholesale.
    """
    if is_type_alias(node):
        return
    if isinstance(node, TRY_NODES):
        for stmt in (
            *getattr(node, "body", ()),
            *getattr(node, "handlers", ()),
            *getattr(node, "orelse", ()),
            *getattr(node, "finalbody", ()),
        ):
            yield stmt
        return
    yield from ast.iter_child_nodes(node)


def iter_scoped_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, enclosing_class, def_node)`` for every function.

    Qualified names join enclosing class and function names with dots
    (``Kernel.run``, ``outer.inner``), matching the ids the call-graph
    extraction assigns, so rules can look a def node's effect summary up
    directly.  Traversal uses :func:`iter_child_nodes_compat`, so defs
    inside ``except*`` handlers are found and PEP 695 aliases skipped.
    """

    def visit(
        node: ast.stmt, class_stack: tuple[str, ...], func_stack: tuple[str, ...]
    ) -> Iterator[tuple[str, str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                yield from visit(stmt, (*class_stack, node.name), func_stack)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = ".".join((*class_stack, *func_stack, node.name))
            owner = class_stack[-1] if class_stack else ""
            yield qual, owner, node
            for stmt in node.body:
                yield from visit(stmt, class_stack, (*func_stack, node.name))
            return
        for child in iter_child_nodes_compat(node):
            if isinstance(child, ast.stmt):
                yield from visit(child, class_stack, func_stack)

    for stmt in tree.body:
        yield from visit(stmt, (), ())


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map every imported local name to its canonical dotted path."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def resolve_dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a ``Name``/``Attribute`` chain, if any.

    ``np.random.seed`` with ``import numpy as np`` resolves to
    ``numpy.random.seed``; anything rooted in a non-import (a local
    variable, a call result) resolves to ``None``.
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def float_taints(node: ast.expr) -> Iterator[ast.expr]:
    """Yield sub-expressions that put floats into an integer time value.

    Taints are float literals and true divisions.  Subtrees under an
    explicit integer sanitiser (``int(...)``, ``round(...)``,
    ``from_seconds(...)``, ...) are pruned — their float arithmetic never
    escapes as a float.
    """
    stack: list[ast.expr] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Call):
            fn = cur.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if name in INT_SANITISERS:
                continue  # sanitised subtree
            stack.extend(cur.args)
            stack.extend(kw.value for kw in cur.keywords)
            continue
        if isinstance(cur, ast.Constant) and type(cur.value) is float:
            yield cur
            continue
        if isinstance(cur, ast.BinOp):
            if isinstance(cur.op, ast.Div):
                yield cur
            stack.extend((cur.left, cur.right))
            continue
        stack.extend(ast.iter_child_nodes(cur))  # type: ignore[arg-type]


def is_float_tainted(node: ast.expr) -> bool:
    """Whether :func:`float_taints` finds anything under ``node``."""
    return next(float_taints(node), None) is not None


def target_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by an assignment/loop target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from target_names(elt)
    elif isinstance(target, ast.Starred):
        yield from target_names(target.value)


def loaded_names(node: ast.AST) -> set[str]:
    """Every name read (Load context) anywhere under ``node``."""
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def is_set_expr(node: ast.expr, set_vars: set[str], set_attrs: set[str]) -> bool:
    """Whether ``node`` is statically known to evaluate to a ``set``.

    Recognises set literals/comprehensions, ``set()``/``frozenset()``
    calls, local names bound to one (``set_vars``), annotated ``self.x``
    attributes (``set_attrs``), and set-algebra method calls on any of
    those.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in {"set", "frozenset"}:
            return True
        if isinstance(fn, ast.Attribute) and fn.attr in {
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            return is_set_expr(fn.value, set_vars, set_attrs)
        return False
    if isinstance(node, ast.Name):
        return node.id in set_vars
    if isinstance(node, ast.Attribute):
        # any base object: `self.members` but also `server.members` when
        # the attribute name is project-wide known to be a set.
        return node.attr in set_attrs
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expr(node.left, set_vars, set_attrs) or is_set_expr(
            node.right, set_vars, set_attrs
        )
    return False


def annotation_is_set(annotation: ast.expr | None) -> bool:
    """Whether a type annotation denotes ``set``/``frozenset`` (any params)."""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in {"set", "frozenset", "Set", "FrozenSet", "MutableSet"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"Set", "FrozenSet", "MutableSet"}
    return False
