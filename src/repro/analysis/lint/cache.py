"""Incremental analysis cache for warm ``repro-exp lint`` runs.

The interprocedural pre-pass makes lint runs project-shaped: every file
is parsed, facts are extracted, and effects are propagated before any
rule fires.  This cache makes warm runs re-analyse only what changed,
with two layers keyed by content digests (never by mtime):

- **facts layer** — per-module
  :class:`~repro.analysis.lint.callgraph.ModuleFacts`, keyed by the
  file's source digest.  An unchanged file contributes its cached facts
  without being re-parsed; the project graph is then recombined from
  all facts (combination is cheap, extraction is not).
- **report layer** — per-file diagnostics and waivers, keyed by the
  file digest *plus* the combined facts digest of the whole project
  *plus* the rule-config key.  An edit that changes no cross-file facts
  re-runs rules only on the edited file; an edit that shifts project
  facts (a new class, a changed call edge) invalidates every report,
  as soundness demands.

Both layers are invalidated wholesale when the lint package's own
source digest changes — a rule edit must never serve stale findings.
Writes are atomic (``tempfile`` + ``os.replace``) so interrupted runs
leave the previous cache intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.analysis.lint.callgraph import ModuleFacts
from repro.analysis.lint.diagnostics import Diagnostic, Severity
from repro.analysis.lint.waivers import Waiver

#: Bump to discard caches whose layout this module no longer reads.
CACHE_VERSION = 1


def source_digest(source: str) -> str:
    """Content digest of one source file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def lint_package_digest() -> str:
    """Digest of the lint package's own sources (rules included).

    Any change to the analyzer invalidates everything it ever cached.
    """
    root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for file in sorted(root.rglob("*.py")):
        digest.update(file.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(file.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def facts_digest(modules: list[ModuleFacts]) -> str:
    """Digest of the combined project facts (the report layer's key).

    Computed from the extracted facts rather than the raw sources, so
    comment-only or docstring-only edits to *other* files do not
    invalidate a file's cached report.
    """
    payload = json.dumps(
        [m.to_json() for m in sorted(modules, key=lambda m: m.path)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _waiver_to_json(waiver: Waiver) -> dict[str, Any]:
    return {
        "path": waiver.path,
        "line": waiver.line,
        "rules": list(waiver.rules),
        "reason": waiver.reason,
        "own_line": waiver.own_line,
    }


def _waiver_from_json(raw: dict[str, Any]) -> Waiver:
    return Waiver(
        path=raw["path"],
        line=raw["line"],
        rules=tuple(raw["rules"]),
        reason=raw["reason"],
        own_line=raw["own_line"],
    )


def _diag_from_json(raw: dict[str, Any]) -> Diagnostic:
    return Diagnostic(
        rule=raw["rule"],
        severity=Severity(raw["severity"]),
        path=raw["path"],
        line=raw["line"],
        col=raw["col"],
        message=raw["message"],
        end_line=raw["end_line"],
        end_col=raw["end_col"],
        waived=raw["waived"],
        waiver_reason=raw["waiver_reason"],
    )


class AnalysisCache:
    """On-disk two-layer cache, loaded once per lint run.

    Usage: construct with a directory, query ``facts_for`` /
    ``report_for`` during the run, record fresh results with
    ``store_facts`` / ``store_report``, then :meth:`save`.  ``save``
    keeps only the entries touched this run, so the cache tracks the
    current file set instead of accreting dead digests.
    """

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        self.path = Path(directory) / "lint-cache.json"
        self._engine_key = f"{CACHE_VERSION}:{lint_package_digest()}"
        self._facts: dict[str, dict[str, Any]] = {}
        self._reports: dict[str, dict[str, Any]] = {}
        self._live_facts: set[str] = set()
        self._live_reports: set[str] = set()
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if data.get("engine") != self._engine_key:
            return  # analyzer changed: discard everything
        facts = data.get("facts")
        reports = data.get("reports")
        if isinstance(facts, dict):
            self._facts = facts
        if isinstance(reports, dict):
            self._reports = reports

    # -- facts layer -----------------------------------------------------
    def facts_for(self, file_digest: str) -> ModuleFacts | None:
        """Cached facts for a source digest, if present."""
        raw = self._facts.get(file_digest)
        if raw is None:
            return None
        self._live_facts.add(file_digest)
        try:
            return ModuleFacts.from_json(raw)
        except (KeyError, TypeError):  # pragma: no cover - corrupt entry
            return None

    def store_facts(self, file_digest: str, facts: ModuleFacts) -> None:
        """Record freshly extracted facts."""
        self._facts[file_digest] = facts.to_json()
        self._live_facts.add(file_digest)

    # -- report layer ----------------------------------------------------
    def report_for(
        self, key: str
    ) -> tuple[list[Diagnostic], list[Waiver]] | None:
        """Cached per-file diagnostics and waivers, if present."""
        raw = self._reports.get(key)
        if raw is None:
            return None
        self._live_reports.add(key)
        try:
            diags = [_diag_from_json(d) for d in raw["diagnostics"]]
            waivers = [_waiver_from_json(w) for w in raw["waivers"]]
        except (KeyError, TypeError, ValueError):  # pragma: no cover
            return None
        return diags, waivers

    def store_report(
        self, key: str, diagnostics: list[Diagnostic], waivers: list[Waiver]
    ) -> None:
        """Record one file's post-waiver diagnostics for reuse."""
        self._reports[key] = {
            "diagnostics": [d.to_json() for d in diagnostics],
            "waivers": [_waiver_to_json(w) for w in waivers],
        }
        self._live_reports.add(key)

    # -- persistence -----------------------------------------------------
    def save(self) -> None:
        """Atomically persist the entries touched by this run."""
        payload = {
            "engine": self._engine_key,
            "facts": {k: v for k, v in self._facts.items() if k in self._live_facts},
            "reports": {
                k: v for k, v in self._reports.items() if k in self._live_reports
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, self.path)
        except BaseException:  # pragma: no cover - crash safety
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
