"""Diagnostic records emitted by the linter.

A :class:`Diagnostic` pins one rule violation to an exact source span
(1-based line, 0-based column, matching :mod:`ast` node offsets).  The
span is part of the contract: rule unit tests assert it exactly, and the
JSON output feeds editor integrations that need precise anchors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How seriously a diagnostic should be taken.

    ``ERROR`` diagnostics fail the lint run; ``WARNING`` diagnostics fail
    it only under ``--strict`` (which CI uses).  Heuristic rules whose
    matches occasionally need human judgement default to ``WARNING``.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        """The lowercase severity name (as printed in diagnostics)."""
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    end_line: int | None = None
    end_col: int | None = None
    waived: bool = False
    waiver_reason: str | None = None
    extra: dict[str, Any] = field(default_factory=dict, compare=False)

    def with_waiver(self, reason: str | None) -> Diagnostic:
        """A copy marked as suppressed by an inline waiver."""
        return Diagnostic(
            rule=self.rule,
            severity=self.severity,
            path=self.path,
            line=self.line,
            col=self.col,
            message=self.message,
            end_line=self.end_line,
            end_col=self.end_col,
            waived=True,
            waiver_reason=reason,
            extra=self.extra,
        )

    def render(self) -> str:
        """Human-readable one-line form (``path:line:col RULE message``)."""
        mark = " (waived)" if self.waived else ""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity}]{mark} {self.message}"
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-serialisable form (stable schema, see docs/static-analysis.md)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "message": self.message,
            "waived": self.waived,
            "waiver_reason": self.waiver_reason,
        }
