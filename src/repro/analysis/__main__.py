"""``python -m repro.analysis`` — run the determinism linter.

Equivalent to ``repro-exp lint``; see :mod:`repro.analysis.lint`.
"""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
