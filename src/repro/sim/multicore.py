"""Multicore kernel with globally scheduled CPUs.

Complements the *partitioned* multicore runtime
(:class:`repro.core.smp.SmpSelfTuningRuntime`) with the other half of the
§6 design space: one shared run queue, ``n_cpus`` identical CPUs, and a
global scheduler that assigns the ``n`` most urgent processes to them at
every decision point — migrations included (counted in
:attr:`MultiCoreKernel.stats`).

The kernel machinery (programs, blocking, tracers, timers, probes) is
inherited from :class:`repro.sim.kernel.Kernel`; only the dispatch loop is
replaced.  All CPUs advance in lockstep through a shared virtual clock, so
simultaneity is exact: a quantum ends when *any* CPU hits a segment end,
a scheduler bound or a calendar event.

Global schedulers implement :class:`SmpScheduler` — the uniprocessor
protocol plus :meth:`SmpScheduler.pick_n`.
"""

from __future__ import annotations

from repro.sched.base import SmpScheduler
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.process import Process, ProcState

__all__ = ["MultiCoreKernel", "SmpScheduler"]


class MultiCoreKernel(Kernel):
    """``n_cpus`` identical CPUs over a shared clock and calendar."""

    def __init__(self, scheduler: SmpScheduler, n_cpus: int, config: KernelConfig | None = None) -> None:
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        super().__init__(scheduler, config)
        self.n_cpus = n_cpus
        self._running: list[Process | None] = [None] * n_cpus
        self._last_cpu: dict[int, int] = {}
        #: cross-CPU migrations observed
        self.migrations = 0

    # the single-CPU bookkeeping hook: drop from whichever CPU holds it
    def _unassign(self, proc: Process) -> None:
        for cpu, running in enumerate(self._running):
            if running is proc:
                self._running[cpu] = None

    def _assign(self, assignment: list[Process | None], until: int) -> None:
        """Apply a new CPU assignment, accounting switches/migrations."""
        # keep procs on their previous CPU where possible to avoid
        # spurious "migrations" when the assignment set is unchanged
        placed: list[Process | None] = [None] * self.n_cpus
        pending: list[Process] = []
        current_set = {id(p) for p in self._running if p is not None}
        for proc in assignment:
            if proc is None:
                continue
            if id(proc) in current_set:
                cpu = self._running.index(proc)
                placed[cpu] = proc
            else:
                pending.append(proc)
        free = [i for i in range(self.n_cpus) if placed[i] is None]
        for proc, cpu in zip(pending, free, strict=False):
            placed[cpu] = proc
            self.stats.context_switches += 1
            last = self._last_cpu.get(proc.pid)
            if last is not None and last != cpu:
                self.migrations += 1
            self._last_cpu[proc.pid] = cpu
            cost = self.config.context_switch_cost
            if cost > 0:
                self.clock = min(until, self.clock + cost)
            if self.switch_hook is not None:
                self.switch_hook(proc, self.clock)
        for old in self._running:
            if old is not None and old not in placed and old.state is ProcState.RUNNING:
                old.state = ProcState.READY
        self._running = placed
        for proc in self._running:
            if proc is not None:
                proc.state = ProcState.RUNNING
                if proc.woken_at is not None:
                    latency = self.clock - proc.woken_at
                    proc.sched_latency.add(latency)
                    proc.woken_at = None
                    if self.latency_hook is not None:
                        self.latency_hook(proc, latency, self.clock)

    def run(self, until: int, *, stop_before_switch: bool = False) -> None:
        """Advance virtual time to ``until`` on every CPU.

        ``stop_before_switch`` is accepted for signature compatibility with
        :meth:`repro.sim.kernel.Kernel.run` and ignored: multicore kernels
        are never fast-forwarded (cycle detection is uniprocessor-only).
        """
        if until < self.clock:
            raise ValueError(f"cannot run backwards: clock={self.clock}, until={until}")
        scheduler: SmpScheduler = self.scheduler  # type: ignore[assignment]
        while self.clock < until:
            if self._stop_run:
                return
            self._dispatch_due()
            assignment = scheduler.pick_n(self.clock, self.n_cpus)
            if all(p is None for p in assignment):
                nxt = self.events.peek_time()
                if nxt is None:
                    self.stats.idle_time += (until - self.clock) * self.n_cpus
                    self.clock = until
                    return
                step_to = min(nxt, until)
                self.stats.idle_time += (step_to - self.clock) * self.n_cpus
                self.clock = step_to
                continue
            self._assign(assignment, until)
            if self.clock >= until:
                return

            # make sure every running process has a segment to execute
            needs_repick = False
            for proc in list(self._running):
                if proc is None:
                    continue
                if proc.segment is None:
                    self._fetch_next(proc)
                    if proc.segment is None:
                        # exited or changed state through zero-time
                        # instructions: re-decide the whole assignment
                        needs_repick = True
            if needs_repick:
                continue

            quantum = until - self.clock
            nxt = self.events.peek_time()
            if nxt is not None:
                quantum = min(quantum, nxt - self.clock)
            active = [p for p in self._running if p is not None]
            for proc in active:
                quantum = min(quantum, proc.segment.remaining)
                bound = scheduler.time_until_internal_event(proc, self.clock)
                if bound is not None:
                    quantum = min(quantum, bound)
            if quantum <= 0:
                if nxt is not None and nxt <= self.clock:
                    continue
                # a scheduler bound is already due: let charge() observe it
                for proc in active:
                    scheduler.charge(proc, 0, self.clock)
                continue

            self.clock += quantum
            idle_cpus = self.n_cpus - len(active)
            self.stats.idle_time += quantum * idle_cpus
            for proc in active:
                proc.cpu_time += quantum
                self.stats.busy_time += quantum
                proc.segment.remaining -= quantum
                scheduler.charge(proc, quantum, self.clock)
            for proc in active:
                if proc.segment is not None and proc.segment.remaining == 0:
                    self._complete_segment(proc)
