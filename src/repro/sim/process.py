"""Process model.

A :class:`Process` wraps a program generator plus the bookkeeping the kernel
needs: scheduling state, the currently executing segment, and accounting of
consumed CPU time (the ``CLOCK_PROCESS_CPUTIME_ID`` equivalent that the
paper's LFS++ sensor reads) and of wake-up→dispatch latency.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Generator

from repro.sim.instructions import BlockSpec, Instruction, Syscall

Program = Generator[Instruction, int, None]


class ProcState(enum.Enum):
    """Scheduling state of a process."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class SegmentKind(enum.Enum):
    """What kind of work the current segment represents."""

    USER = "user"  # user-mode compute
    SYSCALL = "syscall"  # in-kernel portion of a system call
    SYSCALL_RETURN = "syscall_return"  # return path after a blocking call


class Segment:
    """A contiguous slab of CPU work the process still has to perform.

    A plain ``__slots__`` class rather than a dataclass: the kernel
    allocates one per segment on the hottest path of the simulator.
    """

    __slots__ = ("kind", "remaining", "syscall", "block", "entry_time")

    def __init__(
        self,
        kind: SegmentKind,
        remaining: int,
        syscall: Syscall | None = None,
        block: BlockSpec | None = None,
        entry_time: int = -1,  # when the syscall entry was stamped
    ) -> None:
        self.kind = kind
        self.remaining = remaining
        self.syscall = syscall
        self.block = block
        self.entry_time = entry_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Segment(kind={self.kind}, remaining={self.remaining}, "
            f"syscall={self.syscall!r}, block={self.block!r}, "
            f"entry_time={self.entry_time})"
        )


class LatencyStats:
    """Wake-up→dispatch latency accumulator (ns)."""

    __slots__ = ("n", "total", "max", "_m2", "_mean")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0
        self.max = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, latency: int) -> None:
        """Record one wake-up latency."""
        self.n += 1
        self.total += latency
        self.max = max(self.max, latency)
        delta = latency - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (latency - self._mean)

    @property
    def mean(self) -> float:
        """Average latency, ns (0 before any sample)."""
        return self._mean if self.n else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation, ns."""
        return math.sqrt(self._m2 / (self.n - 1)) if self.n > 1 else 0.0


class Process:
    """A simulated process (or thread; the model does not distinguish).

    ``__slots__`` because the kernel touches ``state``/``segment``/
    ``cpu_time``/... several times per scheduling decision.
    """

    __slots__ = (
        "pid",
        "name",
        "program",
        "state",
        "segment",
        "cpu_time",
        "exit_time",
        "start_time",
        "syscall_count",
        "sched_data",
        "wakeup_handle",
        "started",
        "crash",
        "sched_latency",
        "woken_at",
    )

    def __init__(self, pid: int, name: str, program: Program) -> None:
        self.pid = pid
        self.name = name
        self.program = program
        self.state = ProcState.NEW
        self.segment: Segment | None = None
        #: total CPU time consumed (user + kernel), ns
        self.cpu_time = 0
        #: wall-clock time the process exited, or None while alive
        self.exit_time: int | None = None
        #: wall-clock time the process was admitted to the kernel
        self.start_time: int | None = None
        #: number of completed system calls
        self.syscall_count = 0
        #: opaque slot for the scheduler (run-queue node, server ref, ...)
        self.sched_data: object | None = None
        #: event handle for a pending wake-up (sleep), if any
        self.wakeup_handle: object | None = None
        #: whether the program generator has been started (first ``next``)
        self.started = False
        #: the exception that killed the program, if any (see
        #: :attr:`crashed`); a well-behaved exit leaves it None
        self.crash: BaseException | None = None
        #: wake-up→dispatch latency accounting (filled by the kernel)
        self.sched_latency = LatencyStats()
        #: timestamp of the pending wake-up not yet dispatched, if any
        self.woken_at: int | None = None

    @property
    def crashed(self) -> bool:
        """True when the program died on an uncaught exception."""
        return self.crash is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Process(pid={self.pid}, name={self.name!r}, state={self.state.value})"

    @property
    def alive(self) -> bool:
        """True until the program generator is exhausted."""
        return self.state is not ProcState.EXITED

    @property
    def runnable(self) -> bool:
        """True when the process can be picked by the scheduler."""
        return self.state in (ProcState.READY, ProcState.RUNNING)
