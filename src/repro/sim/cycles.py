"""Steady-state fast-forward via schedule-cycle detection.

Grolleau, Goossens & Cucu-Grosjean prove that a deterministic memoryless
scheduler running a periodic task set enters a *cyclic schedule*: once the
complete simulator state repeats, every future hyperperiod is a verbatim
replay of the last one, shifted in time.  Long steady-state horizons (the
paper's Table 2/3 sweeps) therefore spend almost all of their wall-clock
time re-deriving known switches.

This module exploits that theorem without giving up bit-identity:

1. the run is *chunked* at hyperperiod boundaries (LCM of all workload and
   server periods) using ``Kernel.run(..., stop_before_switch=True)``, so
   chunked stepping is indistinguishable from one monolithic ``run``;
2. at each boundary a :func:`state_digest` is taken — event-calendar shape,
   per-process program positions and block states, scheduler state with
   absolute times normalised against ``now``, and workload RNG/phase state;
3. when a digest repeats, the simulation stops stepping and *extrapolates*:
   the recorded cycle's switch trace and latency samples are replayed ``K``
   more times with time offsets, monotone counters advance by ``K`` times
   their per-cycle delta, and every absolute-time field (clock, calendar,
   deadlines, pending sleeps) shifts by ``K * cycle_len``;
4. the residual partial cycle runs normally.

Eligibility is deliberately strict — anything the digest cannot prove
equivalent (tracers, telemetry, label probes, fault plans, aperiodic
processes, unsupported schedulers, foreign calendar callbacks) disables the
fast path and the run completes normally, bit-identical to a plain run.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any
from weakref import WeakKeyDictionary

import numpy as np

from repro.sim.instructions import SleepFor, SleepUntil, WaitEvent
from repro.sim.kernel import Kernel
from repro.sim.process import LatencyStats, Process, Program, Segment
from repro.sim.time import hyperperiod

#: a cycle can only be detected *and* pay off if at least this many
#: hyperperiod boundaries fit between the current clock and the horizon
MIN_BOUNDARIES = 3


class CycleIneligible(Exception):
    """A run (or an instant within it) cannot be safely fast-forwarded."""


class GridIndex:
    """Mutable release-grid position shared between a program body and its
    fast-forward adapter.

    Program generators must re-read :attr:`index` at *every* use instead of
    caching it in a local, so :meth:`advance` relocates the program on its
    release grid when whole schedule cycles are skipped.
    """

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index = 0

    def advance(self, jobs: int) -> None:
        """Jump ``jobs`` positions forward on the release grid."""
        self.index += jobs


@dataclass
class ProgramCycleInfo:
    """What the fast-forward layer needs to know about one program.

    Workload factories register one of these per generator via
    :func:`register_cycle_adapter`.
    """

    #: release-grid period in ns; ``None`` marks the program aperiodic
    #: (or otherwise un-extrapolatable) and disables fast-forward for any
    #: run containing it
    period: int | None
    #: current job index on the release grid
    get_index: Callable[[], int] | None = None
    #: jump the program ``jobs`` releases forward (counters included)
    advance: Callable[[int], None] | None = None
    #: total jobs the program will run, ``None`` = unbounded; finite
    #: programs enter the digest with their remaining-job count, so runs
    #: that drain a workload never falsely match
    jobs_total: int | None = None
    #: the program's RNG, if it draws any randomness; its bit-generator
    #: state enters the digest, so jittered workloads never match (their
    #: schedule genuinely never repeats)
    rng: np.random.Generator | None = None
    #: extra digestible position state (within-frame slot, queue depth...)
    extra_state: Callable[[], tuple[object, ...]] | None = None


_ADAPTERS: WeakKeyDictionary[Program, ProgramCycleInfo] = WeakKeyDictionary()


def register_cycle_adapter(program: Program, info: ProgramCycleInfo) -> Program:
    """Associate ``info`` with ``program``; returns ``program`` for chaining."""
    _ADAPTERS[program] = info
    return program


def cycle_adapter_of(program: Program) -> ProgramCycleInfo | None:
    """The registered adapter of ``program``, if any."""
    return _ADAPTERS.get(program)


# ----------------------------------------------------------------------
# state digest
# ----------------------------------------------------------------------
def _event_entry(kernel: Kernel, ev: Any, now: int) -> tuple[object, ...]:
    """Digest one calendar entry, or refuse if its callback is foreign."""
    cb = ev.callback
    if cb == kernel._wake_event:
        return (ev.time - now, "wake", ev.payload.pid)
    if cb == kernel._admit_event:
        return (ev.time - now, "admit", ev.payload.pid)
    replenish = getattr(kernel.scheduler, "_replenish_event", None)
    if replenish is not None and cb == replenish:
        return (ev.time - now, "replenish", ev.payload.sid)
    raise CycleIneligible(f"calendar holds an un-digestible callback {cb!r}")


def _segment_entry(segment: Segment | None, now: int) -> tuple[object, ...] | None:
    """Digest a process's current CPU segment relative to ``now``."""
    if segment is None:
        return None
    block = segment.block
    block_entry: tuple[object, ...] | None
    if block is None:
        block_entry = None
    elif isinstance(block, SleepUntil):
        block_entry = ("until", block.wake_at - now)
    elif isinstance(block, SleepFor):
        block_entry = ("for", block.duration)
    elif isinstance(block, WaitEvent):
        block_entry = ("event", block.key)
    else:
        raise CycleIneligible(f"unknown block spec {block!r}")
    syscall_nr = "" if segment.syscall is None else segment.syscall.nr.name
    entry_time = segment.entry_time - now if segment.entry_time >= 0 else -1
    return (segment.kind.value, segment.remaining, syscall_nr, block_entry, entry_time)


def _adapter_entry(info: ProgramCycleInfo) -> tuple[object, ...]:
    """Digest a program's grid position, remaining jobs and RNG state."""
    remaining: object = None
    if info.jobs_total is not None:
        index = info.get_index() if info.get_index is not None else 0
        remaining = info.jobs_total - index
    extra = info.extra_state() if info.extra_state is not None else ()
    rng_state = "" if info.rng is None else repr(info.rng.bit_generator.state)
    return (info.period, remaining, extra, rng_state)


def state_digest(kernel: Kernel, now: int) -> str:
    """SHA-256 over everything the simulator's future depends on.

    Absolute times are stored relative to ``now``; monotone output
    counters (CPU time, syscall tallies, consumed budget) are excluded —
    they are extrapolated separately.  Raises :class:`CycleIneligible`
    when any state component cannot be digested safely.
    """
    scheduler_state = kernel.scheduler.cycle_state(now)
    if scheduler_state is None:
        raise CycleIneligible(
            f"scheduler {type(kernel.scheduler).__name__} has no cycle_state()"
        )
    events = tuple(_event_entry(kernel, ev, now) for ev in kernel.events.snapshot())
    waiters = tuple(
        (key, tuple(p.pid for p in kernel._waiters[key]))
        for key in sorted(kernel._waiters)
        if kernel._waiters[key]
    )
    procs: list[tuple[object, ...]] = []
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        if not proc.alive:
            procs.append((pid, "exited"))
            continue
        info = cycle_adapter_of(proc.program)
        if info is None:
            raise CycleIneligible(f"process {proc.name!r} has no cycle adapter")
        if info.period is None:
            raise CycleIneligible(f"process {proc.name!r} is aperiodic")
        procs.append(
            (
                pid,
                proc.state.value,
                proc.started,
                proc.woken_at - now if proc.woken_at is not None else None,
                _segment_entry(proc.segment, now),
                _adapter_entry(info),
            )
        )
    current = kernel._current
    state = (
        events,
        waiters,
        current.pid if current is not None else -1,
        tuple(procs),
        scheduler_state,
    )
    return sha256(repr(state).encode()).hexdigest()


# ----------------------------------------------------------------------
# eligibility
# ----------------------------------------------------------------------
def eligibility_reason(kernel: Kernel) -> str | None:
    """Why ``kernel`` cannot be fast-forwarded, or ``None`` if it can."""
    if type(kernel) is not Kernel:
        return f"{type(kernel).__name__} is not a uniprocessor Kernel"
    if kernel.tracers:
        return "syscall tracers attached"
    if kernel._label_probes:
        return "label probes attached"
    if kernel._obs is not None:
        return "telemetry hub attached"
    if kernel.fault_plan is not None:
        return "fault plan attached"
    if kernel.scheduler.cycle_state(kernel.clock) is None:
        return f"scheduler {type(kernel.scheduler).__name__} has no cycle_state()"
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        if not proc.alive:
            continue
        info = cycle_adapter_of(proc.program)
        if info is None:
            return f"process {proc.name!r} has no cycle adapter"
        if info.period is None:
            return f"process {proc.name!r} is aperiodic"
    return None


def kernel_hyperperiod(kernel: Kernel) -> int:
    """LCM of every live program period and scheduler-internal period."""
    periods: list[int] = []
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        if not proc.alive:
            continue
        info = cycle_adapter_of(proc.program)
        if info is not None and info.period is not None:
            periods.append(info.period)
    periods.extend(kernel.scheduler.cycle_periods())
    return hyperperiod(periods)


# ----------------------------------------------------------------------
# extrapolation machinery
# ----------------------------------------------------------------------
class _RecordingLatency(LatencyStats):
    """LatencyStats that also logs raw samples.

    The Welford accumulator is float-valued and cannot be scaled by
    ``K`` cycles exactly; replaying the recorded samples through the same
    ``add`` sequence reproduces the full run's floats bit-for-bit.
    """

    __slots__ = ("log",)

    def __init__(self) -> None:
        super().__init__()
        self.log: list[int] = []

    def add(self, latency: int) -> None:
        self.log.append(latency)
        super().add(latency)


def _install_recorder(proc: Process) -> _RecordingLatency:
    old = proc.sched_latency
    recorder = _RecordingLatency()
    recorder.n = old.n
    recorder.total = old.total
    recorder.max = old.max
    recorder._mean = old._mean
    recorder._m2 = old._m2
    proc.sched_latency = recorder
    return recorder


@dataclass
class _BoundarySnapshot:
    """Monotone-counter values at one hyperperiod boundary."""

    switch_len: int
    stats: tuple[int, int, int, int, int]
    proc_counters: dict[int, tuple[int, int]]
    latency_len: dict[int, int]
    adapter_index: dict[int, int]
    sched_counters: dict[str, int]


def _take_snapshot(
    kernel: Kernel,
    switch_log: list[tuple[Process, int]],
    recorders: dict[int, _RecordingLatency],
) -> _BoundarySnapshot:
    proc_counters: dict[int, tuple[int, int]] = {}
    latency_len: dict[int, int] = {}
    adapter_index: dict[int, int] = {}
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        proc_counters[pid] = (proc.cpu_time, proc.syscall_count)
        recorder = recorders.get(pid)
        if recorder is not None:
            latency_len[pid] = len(recorder.log)
        info = cycle_adapter_of(proc.program)
        if info is not None and info.get_index is not None:
            adapter_index[pid] = info.get_index()
    stats = kernel.stats
    return _BoundarySnapshot(
        switch_len=len(switch_log),
        stats=(
            stats.context_switches,
            stats.idle_time,
            stats.busy_time,
            stats.syscalls,
            stats.dispatched_events,
        ),
        proc_counters=proc_counters,
        latency_len=latency_len,
        adapter_index=adapter_index,
        sched_counters=kernel.scheduler.cycle_counters(),
    )


def _skip_cycles(
    kernel: Kernel,
    snap: _BoundarySnapshot,
    switch_log: list[tuple[Process, int]],
    switch_hook: Callable[[Process, int], None] | None,
    recorders: dict[int, _RecordingLatency],
    cycle_len: int,
    cycles: int,
) -> None:
    """Advance the simulation ``cycles * cycle_len`` ns analytically.

    The kernel sits at the end of a detected cycle whose start was
    snapshotted in ``snap``; every observable output of the skipped span
    is replayed (switch trace, latency samples) or scaled (monotone
    counters), and every absolute-time field is shifted.
    """
    delta = cycles * cycle_len
    # replay the cycle's switch trace K more times with time offsets
    cycle_switches = switch_log[snap.switch_len :]
    if switch_hook is not None:
        for k in range(1, cycles + 1):
            offset = k * cycle_len
            for proc, timestamp in cycle_switches:
                switch_hook(proc, timestamp + offset)
    # kernel-level monotone counters: += K * per-cycle delta
    stats = kernel.stats
    stats.context_switches += cycles * (stats.context_switches - snap.stats[0])
    stats.idle_time += cycles * (stats.idle_time - snap.stats[1])
    stats.busy_time += cycles * (stats.busy_time - snap.stats[2])
    stats.syscalls += cycles * (stats.syscalls - snap.stats[3])
    stats.dispatched_events += cycles * (stats.dispatched_events - snap.stats[4])
    # per-process counters, latency samples and release-grid positions
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        counters = snap.proc_counters.get(pid)
        if counters is not None:
            proc.cpu_time += cycles * (proc.cpu_time - counters[0])
            proc.syscall_count += cycles * (proc.syscall_count - counters[1])
        recorder = recorders.get(pid)
        if recorder is not None:
            cycle_samples = list(recorder.log[snap.latency_len.get(pid, 0) :])
            for _ in range(cycles):
                for sample in cycle_samples:
                    recorder.add(sample)
        info = cycle_adapter_of(proc.program)
        if info is not None and info.get_index is not None and pid in snap.adapter_index:
            jobs = info.get_index() - snap.adapter_index[pid]
            if jobs and info.advance is not None:
                info.advance(cycles * jobs)
    # scheduler output counters (CBS consumed/exhaustions)
    counters_now = kernel.scheduler.cycle_counters()
    deltas = {
        key: counters_now[key] - snap.sched_counters.get(key, 0)
        for key in sorted(counters_now)
    }
    kernel.scheduler.advance_cycle_counters(deltas, cycles)
    # relocate every absolute time: clock, calendar, scheduler, processes
    kernel.clock += delta
    kernel.events.shift_times(delta)
    kernel.scheduler.shift_times(delta)
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        if proc.woken_at is not None:
            proc.woken_at += delta
        segment = proc.segment
        if segment is not None:
            if segment.entry_time >= 0:
                segment.entry_time += delta
            if isinstance(segment.block, SleepUntil):
                segment.block = SleepUntil(segment.block.wake_at + delta)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
@dataclass
class FastForwardReport:
    """Outcome of one :func:`run_fast_forward` call."""

    #: whether the fast path stayed armed (False = ran fully, see reason)
    enabled: bool
    #: why fast-forward was disabled, if it was
    reason: str | None = None
    #: hyperperiod used for boundary sampling, ns
    hyperperiod: int | None = None
    #: boundaries at which a digest was taken
    boundaries_sampled: int = 0
    #: whether a repeated digest was found
    detected: bool = False
    #: boundary (abs ns) where the detected cycle starts
    cycle_start: int | None = None
    #: length of the detected cycle, ns
    cycle_len: int | None = None
    #: whole cycles skipped analytically
    cycles_skipped: int = 0
    #: virtual time covered by extrapolation instead of stepping, ns
    skipped_ns: int = 0
    #: digests sampled, for diagnostics (boundary -> digest)
    digests: dict[int, str] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, Any]:
        """Plain-JSON summary (digest map elided to its size)."""
        return {
            "enabled": self.enabled,
            "reason": self.reason,
            "hyperperiod": self.hyperperiod,
            "boundaries_sampled": self.boundaries_sampled,
            "detected": self.detected,
            "cycle_start": self.cycle_start,
            "cycle_len": self.cycle_len,
            "cycles_skipped": self.cycles_skipped,
            "skipped_ns": self.skipped_ns,
        }


def run_fast_forward(kernel: Kernel, until: int) -> FastForwardReport:
    """Advance ``kernel`` to ``until``, skipping repeated schedule cycles.

    Produces state bit-identical to ``kernel.run(until)`` — including the
    switch-hook call sequence, latency accumulators and all monotone
    counters — or falls back to a plain run when the workload is not
    eligible (see :func:`eligibility_reason`).
    """
    reason = eligibility_reason(kernel)
    if reason is not None:
        kernel.run(until)
        return FastForwardReport(enabled=False, reason=reason)
    cycle_h = kernel_hyperperiod(kernel)
    if until - kernel.clock < (MIN_BOUNDARIES + 1) * cycle_h:
        kernel.run(until)
        return FastForwardReport(
            enabled=False,
            reason=f"horizon too short for {MIN_BOUNDARIES} hyperperiods of {cycle_h} ns",
            hyperperiod=cycle_h,
        )
    report = FastForwardReport(enabled=True, hyperperiod=cycle_h)
    switch_log: list[tuple[Process, int]] = []
    original_hook = kernel.switch_hook

    def _record_switch(proc: Process, now: int) -> None:
        switch_log.append((proc, now))
        if original_hook is not None:
            original_hook(proc, now)

    recorders: dict[int, _RecordingLatency] = {}
    for pid in sorted(kernel.processes):
        recorders[pid] = _install_recorder(kernel.processes[pid])
    seen: dict[str, int] = {}
    snapshots: dict[int, _BoundarySnapshot] = {}
    boundary = (kernel.clock // cycle_h + 1) * cycle_h
    kernel.switch_hook = _record_switch
    try:
        while boundary < until:
            kernel.run(boundary, stop_before_switch=True)
            if kernel.clock < boundary:
                # a context switch straddles this boundary; sampling here
                # would perturb the run, so extend to the next one
                boundary += cycle_h
                continue
            try:
                digest = state_digest(kernel, boundary)
            except CycleIneligible as exc:
                report.enabled = False
                report.reason = str(exc)
                break
            report.boundaries_sampled += 1
            report.digests[boundary] = digest
            previous = seen.get(digest)
            if previous is not None:
                cycle_len = boundary - previous
                cycles = (until - boundary) // cycle_len
                report.detected = True
                report.cycle_start = previous
                report.cycle_len = cycle_len
                if cycles > 0:
                    _skip_cycles(
                        kernel,
                        snapshots[previous],
                        switch_log,
                        original_hook,
                        recorders,
                        cycle_len,
                        cycles,
                    )
                    report.cycles_skipped = cycles
                    report.skipped_ns = cycles * cycle_len
                break
            seen[digest] = boundary
            snapshots[boundary] = _take_snapshot(kernel, switch_log, recorders)
            boundary += cycle_h
    finally:
        kernel.switch_hook = original_hook
    kernel.run(until)
    return report
