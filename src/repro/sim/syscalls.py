"""System-call taxonomy.

The paper's tracer records every system call of the monitored process;
Figure 4 shows the observed mix for mplayer (dominated by ``ioctl`` calls
into ALSA).  We model the calls that appear in those traces plus the ones
the analysis needs (``clock_nanosleep`` as the canonical job-delimiting
blocker).

Each call carries a *default kernel cost* — the CPU time spent inside the
kernel servicing it when nothing blocks.  Workload models may override the
cost per invocation; the defaults are plausible microsecond-scale figures
for a 2008-era x86 kernel and only matter for overhead accounting, never
for correctness of the period analysis.
"""

from __future__ import annotations

from enum import Enum, unique

from repro.sim.time import US


@unique
class SyscallNr(Enum):
    """The system calls the simulator knows about."""

    IOCTL = "ioctl"
    READ = "read"
    WRITE = "write"
    CLOCK_NANOSLEEP = "clock_nanosleep"
    NANOSLEEP = "nanosleep"
    CLOCK_GETTIME = "clock_gettime"
    GETTIMEOFDAY = "gettimeofday"
    SELECT = "select"
    POLL = "poll"
    FUTEX = "futex"
    MUNMAP = "munmap"
    MMAP = "mmap"
    LSEEK = "lseek"
    OPEN = "open"
    CLOSE = "close"
    STAT = "stat"
    FSTAT = "fstat"
    BRK = "brk"
    RT_SIGACTION = "rt_sigaction"
    WRITEV = "writev"
    QRES_GET_TIME = "qres_get_time"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Default in-kernel CPU cost of each call, in nanoseconds.
DEFAULT_COST_NS: dict[SyscallNr, int] = {
    SyscallNr.IOCTL: 3 * US,
    SyscallNr.READ: 2 * US,
    SyscallNr.WRITE: 2 * US,
    SyscallNr.CLOCK_NANOSLEEP: 2 * US,
    SyscallNr.NANOSLEEP: 2 * US,
    SyscallNr.CLOCK_GETTIME: 1 * US,
    SyscallNr.GETTIMEOFDAY: 1 * US,
    SyscallNr.SELECT: 3 * US,
    SyscallNr.POLL: 3 * US,
    SyscallNr.FUTEX: 2 * US,
    SyscallNr.MUNMAP: 4 * US,
    SyscallNr.MMAP: 4 * US,
    SyscallNr.LSEEK: 1 * US,
    SyscallNr.OPEN: 5 * US,
    SyscallNr.CLOSE: 2 * US,
    SyscallNr.STAT: 3 * US,
    SyscallNr.FSTAT: 2 * US,
    SyscallNr.BRK: 2 * US,
    SyscallNr.RT_SIGACTION: 1 * US,
    SyscallNr.WRITEV: 2 * US,
    SyscallNr.QRES_GET_TIME: 1 * US,
}


def default_cost(nr: SyscallNr) -> int:
    """Kernel CPU cost (ns) of ``nr`` when the caller does not override it."""
    return DEFAULT_COST_NS[nr]
