"""Deterministic discrete-event kernel simulator.

This package is the substrate that stands in for the patched Linux 2.6.29
kernel used by the paper.  It provides:

- a nanosecond-resolution virtual clock and event calendar (:mod:`.engine`),
- a process model whose *programs* are Python generators yielding
  :class:`~repro.sim.instructions.Compute` / :class:`~repro.sim.instructions.Syscall`
  instructions (:mod:`.process`, :mod:`.instructions`),
- a syscall taxonomy mirroring the calls observed in the paper's traces
  (:mod:`.syscalls`),
- a single-CPU kernel that ties processes, a pluggable scheduler, tracers
  and timers together (:mod:`.kernel`).

Everything is deterministic: given the same seeds and parameters a run
produces byte-identical traces, which is what makes the paper's statistical
experiments (100-repetition PMFs etc.) reproducible.
"""

from repro.sim.engine import EventQueue, ScheduledEvent
from repro.sim.instructions import BlockSpec, Compute, Instruction, SleepFor, SleepUntil, Syscall, WaitEvent
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.multicore import MultiCoreKernel, SmpScheduler
from repro.sim.process import Process, ProcState
from repro.sim.syscalls import SyscallNr
from repro.sim.time import MS, NS, SEC, US, fmt_time

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "Instruction",
    "Compute",
    "Syscall",
    "BlockSpec",
    "SleepUntil",
    "SleepFor",
    "WaitEvent",
    "Kernel",
    "KernelConfig",
    "MultiCoreKernel",
    "SmpScheduler",
    "Process",
    "ProcState",
    "SyscallNr",
    "NS",
    "US",
    "MS",
    "SEC",
    "fmt_time",
]
