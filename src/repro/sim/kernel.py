"""Single-CPU kernel: ties processes, scheduler, tracers and timers together.

The kernel advances a nanosecond virtual clock.  At every step it

1. dispatches due calendar events (wake-ups, timer callbacks, admissions),
2. asks the scheduler for the process to run,
3. runs it for the largest quantum that cannot miss anything interesting:
   the end of the process's current segment, the scheduler's next internal
   event (CBS budget exhaustion, time-slice expiry) or the next calendar
   event, whichever comes first,
4. charges the consumed CPU to the process and the scheduler.

System calls are traced through pluggable hooks (see
:mod:`repro.tracer.qtrace`); each hook may add kernel CPU overhead to the
call, which is how tracing overhead perturbs the workload exactly as in the
paper's Table 1 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, Protocol

from repro.sim.engine import EventQueue, ScheduledEvent
from repro.sim.instructions import (
    Compute,
    Fire,
    Instruction,
    Label,
    SleepFor,
    SleepUntil,
    Syscall,
    WaitEvent,
)
from repro.sim.process import Process, ProcState, Program, Segment, SegmentKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry
from repro.sim.syscalls import SyscallNr
from repro.sched.base import Scheduler


class TracerHook(Protocol):
    """Interface tracers implement to observe (and perturb) system calls."""

    def on_syscall_entry(self, proc: Process, nr: SyscallNr, now: int) -> int:
        """Record a syscall entry; return extra kernel ns the tracing costs."""
        ...

    def on_syscall_exit(self, proc: Process, nr: SyscallNr, now: int) -> int:
        """Record a syscall exit; return extra kernel ns the tracing costs."""
        ...

    def traces(self, proc: Process) -> bool:
        """Whether this tracer is attached to ``proc`` at all."""
        ...


LabelProbe = Callable[[Process, int, dict], None]


@dataclass
class KernelStats:
    """Aggregate accounting for a run."""

    context_switches: int = 0
    idle_time: int = 0
    busy_time: int = 0
    syscalls: int = 0
    dispatched_events: int = 0


@dataclass
class KernelConfig:
    """Tunables of the machine model."""

    #: CPU cost of a context switch, ns (2008-era x86: a few microseconds).
    context_switch_cost: int = 2_000
    #: If True, the switch cost is charged to the incoming process's
    #: scheduler accounting (and CBS budget); otherwise it only burns wall
    #: time.
    charge_switch_to_budget: bool = False


@dataclass
class _Timer:
    """Handle for a recurring kernel timer."""

    period: int
    callback: Callable[[int], None]
    event: ScheduledEvent | None = None
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


class Kernel:
    """The simulated machine (one CPU)."""

    #: telemetry hub (:mod:`repro.obs`); the class-level None is the
    #: disabled fast path — hook sites pay one attribute load + identity
    #: test.  :func:`repro.obs.instrument.instrument_kernel` overwrites it
    #: with an instance attribute.  Hooks are strictly read-only: they
    #: must never perturb simulation state, the calendar, or RNG streams.
    _obs: Telemetry | None = None

    #: marker set by the fault-injection layer (:mod:`repro.faults`) on any
    #: kernel that has a fault plan wired up — even a zero-intensity one.
    #: :mod:`repro.sim.cycles` refuses to fast-forward such runs.
    fault_plan: object | None = None

    def __init__(self, scheduler: Scheduler, config: KernelConfig | None = None) -> None:
        self.config = config or KernelConfig()
        self.clock = 0
        self.events = EventQueue()
        self.scheduler = scheduler
        scheduler.bind(self)
        self.processes: dict[int, Process] = {}
        self.tracers: list[TracerHook] = []
        self.stats = KernelStats()
        self._next_pid = 1000
        self._current: Process | None = None
        self._waiters: dict[str, list[Process]] = {}
        self._label_probes: dict[str, list[LabelProbe]] = {}
        #: optional observer called as ``switch_hook(proc, now)`` right
        #: after a context switch completes (switch cost already burned);
        #: the golden-trace digests are built on this
        self.switch_hook: Callable[[Process, int], None] | None = None
        #: optional observer called as ``latency_hook(proc, latency, now)``
        #: whenever a wake-up→dispatch latency sample is recorded
        #: (:mod:`repro.core.events` deadline-miss detection); None =
        #: disabled fast path.  The hook may post calendar events but
        #: must not touch kernel or scheduler state.
        self.latency_hook: Callable[[Process, int, int], None] | None = None
        #: exact-class instruction dispatch (hot path of ``_fetch_next``);
        #: instruction subclasses are resolved lazily via the isinstance
        #: ladder in ``_resolve_instr`` and then cached here
        self._instr_dispatch: dict[type, Callable[[Process, Instruction, int], None]] = {
            Compute: self._do_compute,
            Syscall: self._do_syscall,
            Fire: self._do_fire,
            Label: self._do_label,
        }
        #: pids ``run_until_exit`` is waiting on (None outside of it)
        self._exit_watch: set[int] | None = None
        #: set by ``_exit`` when the watch set drains; makes ``run`` stop
        self._stop_run = False

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, name: str, program: Program, *, at: int | None = None) -> Process:
        """Create a process running ``program``.

        With ``at`` (absolute ns) the process is admitted at that future
        instant; otherwise it becomes ready immediately.
        """
        proc = Process(self._next_pid, name, program)
        self._next_pid += 1
        self.processes[proc.pid] = proc
        if at is None or at <= self.clock:
            self._admit(proc, self.clock)
        else:
            self.events.push(at, self._admit_event, proc)
        return proc

    def _admit_event(self, now: int, proc: Process) -> None:
        """Calendar payload trampoline for a deferred :meth:`spawn`."""
        self._admit(proc, now)

    def _admit(self, proc: Process, now: int) -> None:
        proc.state = ProcState.READY
        proc.start_time = now
        proc.woken_at = now
        self.scheduler.on_ready(proc, now)

    def _unassign(self, proc: Process) -> None:
        """Drop ``proc`` from whatever CPU it occupies (hook for SMP)."""
        if self._current is proc:
            self._current = None

    def _exit(self, proc: Process, now: int) -> None:
        if self._obs is not None:
            self._obs.kernel_exit(proc, now)
        proc.state = ProcState.EXITED
        proc.exit_time = now
        proc.segment = None
        self._unassign(proc)
        self.scheduler.on_exit(proc, now)
        watch = self._exit_watch
        if watch is not None:
            watch.discard(proc.pid)
            if not watch:
                self._stop_run = True

    # ------------------------------------------------------------------
    # tracers, probes, events
    # ------------------------------------------------------------------
    def add_tracer(self, tracer: TracerHook) -> None:
        """Install a syscall tracer hook."""
        self.tracers.append(tracer)

    def remove_tracer(self, tracer: TracerHook) -> None:
        """Detach a previously installed tracer hook."""
        self.tracers.remove(tracer)

    def add_label_probe(self, name: str, probe: LabelProbe) -> None:
        """Invoke ``probe(proc, now, payload)`` whenever a program yields
        ``Label(name)``."""
        self._label_probes.setdefault(name, []).append(probe)

    def fire_event(self, key: str, now: int | None = None) -> int:
        """Wake every process blocked on ``WaitEvent(key)``; return count."""
        now = self.clock if now is None else now
        waiters = self._waiters.pop(key, [])
        for proc in waiters:
            self._wake(proc, now)
        return len(waiters)

    def at(self, when: int, callback: Callable[[int], None]) -> ScheduledEvent:
        """One-shot kernel callback at absolute time ``when``."""
        return self.events.push(when, self._call_event, callback)

    @staticmethod
    def _call_event(now: int, callback: Callable[[int], None]) -> None:
        """Calendar payload trampoline for :meth:`at`."""
        callback(now)

    def every(self, period: int, callback: Callable[[int], None], *, start: int | None = None) -> _Timer:
        """Recurring kernel callback every ``period`` ns (first at ``start``,
        default ``clock + period``).  Returns a cancellable handle."""
        if period <= 0:
            raise ValueError("timer period must be positive")
        timer = _Timer(period=period, callback=callback)
        first = (self.clock + period) if start is None else start
        timer.event = self.events.push(first, self._timer_event, timer)
        return timer

    def _timer_event(self, now: int, timer: _Timer) -> None:
        """Fire a recurring timer and re-arm it (payload carries the handle)."""
        if timer.cancelled:
            return
        timer.callback(now)
        if not timer.cancelled:
            timer.event = self.events.push(now + timer.period, self._timer_event, timer)

    # ------------------------------------------------------------------
    # blocking / wake-up
    # ------------------------------------------------------------------
    def _wake(self, proc: Process, now: int) -> None:
        if proc.state is not ProcState.BLOCKED:
            return
        proc.wakeup_handle = None
        proc.state = ProcState.READY
        proc.woken_at = now
        self.scheduler.on_ready(proc, now)

    def _block(self, proc: Process, spec: SleepUntil | SleepFor, now: int) -> bool:
        """Suspend ``proc`` per ``spec``.  Returns False if the block is a
        no-op (sleep deadline already passed)."""
        if isinstance(spec, SleepUntil):
            if spec.wake_at <= now:
                return False
            wake_at = spec.wake_at
        elif isinstance(spec, SleepFor):
            if spec.duration <= 0:
                return False
            wake_at = now + spec.duration
        elif isinstance(spec, WaitEvent):
            proc.state = ProcState.BLOCKED
            self._unassign(proc)
            self.scheduler.on_block(proc, now)
            self._waiters.setdefault(spec.key, []).append(proc)
            return True
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown block spec {spec!r}")
        proc.state = ProcState.BLOCKED
        self._unassign(proc)
        self.scheduler.on_block(proc, now)
        proc.wakeup_handle = self.events.push(wake_at, self._wake_event, proc)
        return True

    def _wake_event(self, now: int, proc: Process) -> None:
        """Calendar payload trampoline for a sleep wake-up."""
        self._wake(proc, now)

    # ------------------------------------------------------------------
    # program advancement
    # ------------------------------------------------------------------
    def _do_compute(self, proc: Process, instr: Compute, now: int) -> None:
        if instr.duration > 0:
            proc.segment = Segment(SegmentKind.USER, instr.duration)

    def _do_syscall(self, proc: Process, instr: Syscall, now: int) -> None:
        cost = instr.cost
        tracers = self.tracers
        if tracers:
            nr = instr.nr
            for tracer in tracers:
                # skip the (potentially costly) hook for tracers that are
                # not attached to this process at all; attached tracers
                # self-filter identically, so behaviour is unchanged
                if tracer.traces(proc):
                    cost += tracer.on_syscall_entry(proc, nr, now)
        proc.segment = Segment(
            SegmentKind.SYSCALL, cost if cost > 1 else 1, instr, instr.block, now
        )

    def _do_fire(self, proc: Process, instr: Fire, now: int) -> None:
        self.fire_event(instr.key)

    def _do_label(self, proc: Process, instr: Label, now: int) -> None:
        probes = self._label_probes.get(instr.name)
        if probes:
            for probe in probes:
                probe(proc, now, instr.payload)

    def _resolve_instr(self, proc: Process, instr: Instruction) -> None:
        """Slow path of the instruction dispatch: accept subclasses of the
        known instructions (cached per concrete class afterwards)."""
        for cls, handler in (
            (Compute, self._do_compute),
            (Syscall, self._do_syscall),
            (Fire, self._do_fire),
            (Label, self._do_label),
        ):
            if isinstance(instr, cls):
                self._instr_dispatch[instr.__class__] = handler
                return handler
        raise TypeError(f"program of {proc.name} yielded {instr!r}")

    def _fetch_next(self, proc: Process) -> None:
        """Pull instructions from the program until one produces a CPU
        segment (zero-time instructions are executed inline)."""
        # the clock cannot advance while fetching: zero-time instructions
        # (Fire, Label) only mutate scheduler/waiter state
        clock = self.clock
        dispatch = self._instr_dispatch
        program = proc.program
        send = program.send
        exited = ProcState.EXITED
        # proc.state check instead of the ``alive`` property: this loop
        # runs once per yielded instruction
        while proc.state is not exited and proc.segment is None:
            try:
                if proc.started:
                    instr: Instruction = send(clock)
                else:
                    instr = next(program)
                    proc.started = True
            except StopIteration:
                self._exit(proc, clock)
                return
            except Exception as exc:  # noqa: BLE001 - crash containment
                # a buggy program must not take the machine down: the
                # process dies (as on a real segfault) and everything
                # else keeps running; the exception is kept for autopsy
                proc.crash = exc
                self._exit(proc, clock)
                return
            handler = dispatch.get(instr.__class__)
            if handler is None:
                handler = self._resolve_instr(proc, instr)
            handler(proc, instr, clock)

    def _complete_segment(self, proc: Process) -> None:
        seg = proc.segment
        assert seg is not None and seg.remaining == 0
        proc.segment = None
        kind = seg.kind
        if kind is SegmentKind.USER:
            self._fetch_next(proc)
            return
        now = self.clock
        call = seg.syscall
        assert call is not None
        if kind is SegmentKind.SYSCALL:
            if seg.block is not None and self._block(proc, seg.block, now):
                # blocking call: exit path runs after the wake-up
                ret = call.return_cost
                proc.segment = Segment(
                    SegmentKind.SYSCALL_RETURN,
                    ret if ret > 1 else 1,
                    call,
                    None,
                    seg.entry_time,
                )
                return
            # non-blocking (or already-expired sleep): exit now
            self._finish_syscall(proc, call, now)
            return
        if kind is SegmentKind.SYSCALL_RETURN:
            self._finish_syscall(proc, call, now)
            return
        raise AssertionError(f"unexpected segment kind {kind}")  # pragma: no cover

    def _finish_syscall(self, proc: Process, call: Syscall, now: int) -> None:
        proc.syscall_count += 1
        self.stats.syscalls += 1
        extra = 0
        tracers = self.tracers
        if tracers:
            nr = call.nr
            for tracer in tracers:
                if tracer.traces(proc):
                    extra += tracer.on_syscall_exit(proc, nr, now)
        if extra > 0:
            # tracing cost on the exit path: burn it before the next
            # instruction is fetched
            proc.segment = Segment(SegmentKind.USER, extra)
            return
        self._fetch_next(proc)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _dispatch_due(self) -> None:
        while True:
            ev = self.events.pop_due(self.clock)
            if ev is None:
                return
            self.stats.dispatched_events += 1
            ev.callback(self.clock, ev.payload)

    def run(self, until: int, *, stop_before_switch: bool = False) -> None:
        """Advance virtual time to ``until`` (absolute ns).

        With ``stop_before_switch`` the loop returns *before starting* a
        context switch whose cost would carry the clock past ``until``,
        leaving the switch (and all of its state changes) to the next
        ``run`` call.  Chunked runs then stay bit-identical to a single
        monolithic run: the default behaviour clips a straddling switch's
        cost at ``until``, which a re-entered run would charge in full.
        Callers must tolerate the clock stopping short of ``until``.

        This is the hottest loop of the simulator; scheduler/calendar
        methods and config fields are cached in locals, and the due-event
        dispatch is inlined (``_dispatch_due`` remains as the out-of-line
        variant for the multicore kernel).
        """
        if until < self.clock:
            raise ValueError(f"cannot run backwards: clock={self.clock}, until={until}")
        events = self.events
        pop_due = events.pop_due
        peek_time = events.peek_time
        scheduler = self.scheduler
        pick = scheduler.pick
        charge = scheduler.charge
        time_until = scheduler.time_until_internal_event
        stats = self.stats
        obs = self._obs
        cs_cost = self.config.context_switch_cost
        charge_switch = self.config.charge_switch_to_budget
        running = ProcState.RUNNING
        ready = ProcState.READY
        exited = ProcState.EXITED
        while self.clock < until:
            if self._stop_run:
                return
            clock = self.clock
            ev = pop_due(clock)
            while ev is not None:
                stats.dispatched_events += 1
                ev.callback(clock, ev.payload)
                ev = pop_due(clock)
            proc = pick(clock)
            if proc is None:
                if obs is not None:
                    obs.kernel_idle(clock)
                nxt = peek_time()
                if nxt is None:
                    # nothing will ever happen again
                    stats.idle_time += until - clock
                    self.clock = until
                    return
                step_to = nxt if nxt < until else until
                stats.idle_time += step_to - clock
                self.clock = step_to
                continue
            current = self._current
            if proc is not current:
                if stop_before_switch and cs_cost > 0 and clock + cs_cost > until:
                    return
                if current is not None and current.state is running:
                    current.state = ready
                stats.context_switches += 1
                if cs_cost > 0:
                    clock += cs_cost
                    if clock > until:
                        clock = until
                    self.clock = clock
                    if charge_switch:
                        charge(proc, cs_cost, clock)
                self._current = proc
                if self.switch_hook is not None:
                    self.switch_hook(proc, clock)
                if obs is not None:
                    obs.kernel_switch(proc, clock)
                if clock >= until:
                    return
            proc.state = running
            if proc.woken_at is not None:
                latency = clock - proc.woken_at
                proc.sched_latency.add(latency)
                proc.woken_at = None
                latency_hook = self.latency_hook
                if latency_hook is not None:
                    latency_hook(proc, latency, clock)
            segment = proc.segment
            if segment is None:
                self._fetch_next(proc)
                segment = proc.segment
                if segment is None:
                    # process exited or yielded only zero-time instructions
                    # that changed state (e.g. woke someone); re-decide.
                    if self._current is proc and proc.state is exited:
                        self._current = None
                    continue
            quantum = segment.remaining
            bound = time_until(proc, clock)
            if bound is not None and bound < quantum:
                quantum = bound
            nxt = peek_time()
            if nxt is not None and nxt - clock < quantum:
                quantum = nxt - clock
            if until - clock < quantum:
                quantum = until - clock
            if quantum <= 0:
                # an event is due right now or the scheduler wants control
                # immediately; dispatch and re-pick
                if nxt is not None and nxt <= clock:
                    continue
                if bound is not None and bound <= 0:
                    # scheduler internal event exactly now (budget edge)
                    charge(proc, 0, clock)
                    continue
                return
            clock += quantum
            self.clock = clock
            proc.cpu_time += quantum
            stats.busy_time += quantum
            segment.remaining -= quantum
            charge(proc, quantum, clock)
            if proc.segment is not None and proc.segment.remaining == 0:
                self._complete_segment(proc)

    def run_until_exit(self, procs: Iterable[Process], hard_limit: int) -> int:
        """Run until every process in ``procs`` exited (or ``hard_limit``).

        Returns the clock value when the last of them exited.  Useful for
        batch workloads (the ffmpeg transcode of Table 1).

        The simulation steps straight from calendar event to calendar
        event: ``_exit`` drains a watch set of the awaited pids and raises
        a stop flag the main loop checks, instead of the old scheme of
        re-entering ``run`` in ``hard_limit // 1000`` fixed slices (which
        cost a thousand restarts on long transcodes and overshot past the
        final exit by up to one slice).
        """
        procs = list(procs)
        watch = {p.pid for p in procs if p.alive}
        if watch and self.clock < hard_limit:
            self._exit_watch = watch
            self._stop_run = False
            try:
                while watch and self.clock < hard_limit:
                    self._stop_run = False
                    self.run(hard_limit)
            finally:
                self._exit_watch = None
                self._stop_run = False
        last_exit = max((p.exit_time or self.clock) for p in procs)
        return last_exit
