"""Single-CPU kernel: ties processes, scheduler, tracers and timers together.

The kernel advances a nanosecond virtual clock.  At every step it

1. dispatches due calendar events (wake-ups, timer callbacks, admissions),
2. asks the scheduler for the process to run,
3. runs it for the largest quantum that cannot miss anything interesting:
   the end of the process's current segment, the scheduler's next internal
   event (CBS budget exhaustion, time-slice expiry) or the next calendar
   event, whichever comes first,
4. charges the consumed CPU to the process and the scheduler.

System calls are traced through pluggable hooks (see
:mod:`repro.tracer.qtrace`); each hook may add kernel CPU overhead to the
call, which is how tracing overhead perturbs the workload exactly as in the
paper's Table 1 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol

from repro.sim.engine import EventQueue, ScheduledEvent
from repro.sim.instructions import (
    Compute,
    Fire,
    Instruction,
    Label,
    SleepFor,
    SleepUntil,
    Syscall,
    WaitEvent,
)
from repro.sim.process import Process, ProcState, Program, Segment, SegmentKind
from repro.sim.syscalls import SyscallNr
from repro.sched.base import Scheduler


class TracerHook(Protocol):
    """Interface tracers implement to observe (and perturb) system calls."""

    def on_syscall_entry(self, proc: Process, nr: SyscallNr, now: int) -> int:
        """Record a syscall entry; return extra kernel ns the tracing costs."""
        ...

    def on_syscall_exit(self, proc: Process, nr: SyscallNr, now: int) -> int:
        """Record a syscall exit; return extra kernel ns the tracing costs."""
        ...

    def traces(self, proc: Process) -> bool:
        """Whether this tracer is attached to ``proc`` at all."""
        ...


LabelProbe = Callable[[Process, int, dict], None]


@dataclass
class KernelStats:
    """Aggregate accounting for a run."""

    context_switches: int = 0
    idle_time: int = 0
    busy_time: int = 0
    syscalls: int = 0
    dispatched_events: int = 0


@dataclass
class KernelConfig:
    """Tunables of the machine model."""

    #: CPU cost of a context switch, ns (2008-era x86: a few microseconds).
    context_switch_cost: int = 2_000
    #: If True, the switch cost is charged to the incoming process's
    #: scheduler accounting (and CBS budget); otherwise it only burns wall
    #: time.
    charge_switch_to_budget: bool = False


@dataclass
class _Timer:
    """Handle for a recurring kernel timer."""

    period: int
    callback: Callable[[int], None]
    event: ScheduledEvent | None = None
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


class Kernel:
    """The simulated machine (one CPU)."""

    def __init__(self, scheduler: Scheduler, config: KernelConfig | None = None) -> None:
        self.config = config or KernelConfig()
        self.clock = 0
        self.events = EventQueue()
        self.scheduler = scheduler
        scheduler.bind(self)
        self.processes: dict[int, Process] = {}
        self.tracers: list[TracerHook] = []
        self.stats = KernelStats()
        self._next_pid = 1000
        self._current: Process | None = None
        self._waiters: dict[str, list[Process]] = {}
        self._label_probes: dict[str, list[LabelProbe]] = {}

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(self, name: str, program: Program, *, at: int | None = None) -> Process:
        """Create a process running ``program``.

        With ``at`` (absolute ns) the process is admitted at that future
        instant; otherwise it becomes ready immediately.
        """
        proc = Process(self._next_pid, name, program)
        self._next_pid += 1
        self.processes[proc.pid] = proc
        if at is None or at <= self.clock:
            self._admit(proc, self.clock)
        else:
            self.events.push(at, lambda now, _payload, p=proc: self._admit(p, now))
        return proc

    def _admit(self, proc: Process, now: int) -> None:
        proc.state = ProcState.READY
        proc.start_time = now
        proc.woken_at = now
        self.scheduler.on_ready(proc, now)

    def _unassign(self, proc: Process) -> None:
        """Drop ``proc`` from whatever CPU it occupies (hook for SMP)."""
        if self._current is proc:
            self._current = None

    def _exit(self, proc: Process, now: int) -> None:
        proc.state = ProcState.EXITED
        proc.exit_time = now
        proc.segment = None
        self._unassign(proc)
        self.scheduler.on_exit(proc, now)

    # ------------------------------------------------------------------
    # tracers, probes, events
    # ------------------------------------------------------------------
    def add_tracer(self, tracer: TracerHook) -> None:
        """Install a syscall tracer hook."""
        self.tracers.append(tracer)

    def remove_tracer(self, tracer: TracerHook) -> None:
        """Detach a previously installed tracer hook."""
        self.tracers.remove(tracer)

    def add_label_probe(self, name: str, probe: LabelProbe) -> None:
        """Invoke ``probe(proc, now, payload)`` whenever a program yields
        ``Label(name)``."""
        self._label_probes.setdefault(name, []).append(probe)

    def fire_event(self, key: str, now: int | None = None) -> int:
        """Wake every process blocked on ``WaitEvent(key)``; return count."""
        now = self.clock if now is None else now
        waiters = self._waiters.pop(key, [])
        for proc in waiters:
            self._wake(proc, now)
        return len(waiters)

    def at(self, when: int, callback: Callable[[int], None]) -> ScheduledEvent:
        """One-shot kernel callback at absolute time ``when``."""
        return self.events.push(when, lambda now, _payload, _cb=callback: _cb(now))

    def every(self, period: int, callback: Callable[[int], None], *, start: int | None = None) -> _Timer:
        """Recurring kernel callback every ``period`` ns (first at ``start``,
        default ``clock + period``).  Returns a cancellable handle."""
        if period <= 0:
            raise ValueError("timer period must be positive")
        timer = _Timer(period=period, callback=callback)

        def fire(now: int, _payload: object = None) -> None:
            if timer.cancelled:
                return
            timer.callback(now)
            if not timer.cancelled:
                timer.event = self.events.push(now + timer.period, fire)

        first = (self.clock + period) if start is None else start
        timer.event = self.events.push(first, fire)
        return timer

    # ------------------------------------------------------------------
    # blocking / wake-up
    # ------------------------------------------------------------------
    def _wake(self, proc: Process, now: int) -> None:
        if proc.state is not ProcState.BLOCKED:
            return
        proc.wakeup_handle = None
        proc.state = ProcState.READY
        proc.woken_at = now
        self.scheduler.on_ready(proc, now)

    def _block(self, proc: Process, spec, now: int) -> bool:
        """Suspend ``proc`` per ``spec``.  Returns False if the block is a
        no-op (sleep deadline already passed)."""
        if isinstance(spec, SleepUntil):
            if spec.wake_at <= now:
                return False
            wake_at = spec.wake_at
        elif isinstance(spec, SleepFor):
            if spec.duration <= 0:
                return False
            wake_at = now + spec.duration
        elif isinstance(spec, WaitEvent):
            proc.state = ProcState.BLOCKED
            self._unassign(proc)
            self.scheduler.on_block(proc, now)
            self._waiters.setdefault(spec.key, []).append(proc)
            return True
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown block spec {spec!r}")
        proc.state = ProcState.BLOCKED
        self._unassign(proc)
        self.scheduler.on_block(proc, now)
        proc.wakeup_handle = self.events.push(wake_at, lambda t, _payload, p=proc: self._wake(p, t))
        return True

    # ------------------------------------------------------------------
    # program advancement
    # ------------------------------------------------------------------
    def _trace_entry(self, proc: Process, nr: SyscallNr, now: int) -> int:
        extra = 0
        for tracer in self.tracers:
            extra += tracer.on_syscall_entry(proc, nr, now)
        return extra

    def _trace_exit(self, proc: Process, nr: SyscallNr, now: int) -> int:
        extra = 0
        for tracer in self.tracers:
            extra += tracer.on_syscall_exit(proc, nr, now)
        return extra

    def _fetch_next(self, proc: Process) -> None:
        """Pull instructions from the program until one produces a CPU
        segment (zero-time instructions are executed inline)."""
        while proc.alive and proc.segment is None:
            try:
                if proc.started:
                    instr: Instruction = proc.program.send(self.clock)
                else:
                    instr = next(proc.program)
                    proc.started = True
            except StopIteration:
                self._exit(proc, self.clock)
                return
            except Exception as exc:  # noqa: BLE001 - crash containment
                # a buggy program must not take the machine down: the
                # process dies (as on a real segfault) and everything
                # else keeps running; the exception is kept for autopsy
                proc.crash = exc
                self._exit(proc, self.clock)
                return
            if isinstance(instr, Compute):
                if instr.duration > 0:
                    proc.segment = Segment(SegmentKind.USER, instr.duration)
            elif isinstance(instr, Syscall):
                extra = self._trace_entry(proc, instr.nr, self.clock)
                proc.segment = Segment(
                    SegmentKind.SYSCALL,
                    max(1, instr.cost + extra),
                    syscall=instr,
                    block=instr.block,
                    entry_time=self.clock,
                )
            elif isinstance(instr, Fire):
                self.fire_event(instr.key)
            elif isinstance(instr, Label):
                for probe in self._label_probes.get(instr.name, []):
                    probe(proc, self.clock, instr.payload)
            else:  # pragma: no cover - defensive
                raise TypeError(f"program of {proc.name} yielded {instr!r}")

    def _complete_segment(self, proc: Process) -> None:
        seg = proc.segment
        assert seg is not None and seg.remaining == 0
        proc.segment = None
        now = self.clock
        if seg.kind is SegmentKind.USER:
            self._fetch_next(proc)
            return
        if seg.kind is SegmentKind.SYSCALL:
            call = seg.syscall
            assert call is not None
            if seg.block is not None and self._block(proc, seg.block, now):
                # blocking call: exit path runs after the wake-up
                proc.segment = Segment(
                    SegmentKind.SYSCALL_RETURN,
                    max(1, call.return_cost),
                    syscall=call,
                    entry_time=seg.entry_time,
                )
                return
            # non-blocking (or already-expired sleep): exit now
            self._finish_syscall(proc, call, now)
            return
        if seg.kind is SegmentKind.SYSCALL_RETURN:
            call = seg.syscall
            assert call is not None
            self._finish_syscall(proc, call, now)
            return
        raise AssertionError(f"unexpected segment kind {seg.kind}")  # pragma: no cover

    def _finish_syscall(self, proc: Process, call: Syscall, now: int) -> None:
        proc.syscall_count += 1
        self.stats.syscalls += 1
        extra = self._trace_exit(proc, call.nr, now)
        if extra > 0:
            # tracing cost on the exit path: burn it before the next
            # instruction is fetched
            proc.segment = Segment(SegmentKind.USER, extra)
            return
        self._fetch_next(proc)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def _dispatch_due(self) -> None:
        while True:
            ev = self.events.pop_due(self.clock)
            if ev is None:
                return
            self.stats.dispatched_events += 1
            ev.callback(self.clock, ev.payload)

    def run(self, until: int) -> None:
        """Advance virtual time to ``until`` (absolute ns)."""
        if until < self.clock:
            raise ValueError(f"cannot run backwards: clock={self.clock}, until={until}")
        while self.clock < until:
            self._dispatch_due()
            proc = self.scheduler.pick(self.clock)
            if proc is None:
                nxt = self.events.peek_time()
                if nxt is None:
                    # nothing will ever happen again
                    self.stats.idle_time += until - self.clock
                    self.clock = until
                    return
                step_to = min(nxt, until)
                self.stats.idle_time += step_to - self.clock
                self.clock = step_to
                continue
            if proc is not self._current:
                if self._current is not None and self._current.state is ProcState.RUNNING:
                    self._current.state = ProcState.READY
                self.stats.context_switches += 1
                cost = self.config.context_switch_cost
                if cost > 0:
                    self.clock = min(until, self.clock + cost)
                    if self.config.charge_switch_to_budget:
                        self.scheduler.charge(proc, cost, self.clock)
                self._current = proc
                if self.clock >= until:
                    return
            proc.state = ProcState.RUNNING
            if proc.woken_at is not None:
                proc.sched_latency.add(self.clock - proc.woken_at)
                proc.woken_at = None
            if proc.segment is None:
                self._fetch_next(proc)
                if proc.segment is None:
                    # process exited or yielded only zero-time instructions
                    # that changed state (e.g. woke someone); re-decide.
                    if self._current is proc and not proc.alive:
                        self._current = None
                    continue
            quantum = proc.segment.remaining
            bound = self.scheduler.time_until_internal_event(proc, self.clock)
            if bound is not None:
                quantum = min(quantum, bound)
            nxt = self.events.peek_time()
            if nxt is not None:
                quantum = min(quantum, nxt - self.clock)
            quantum = min(quantum, until - self.clock)
            if quantum <= 0:
                # an event is due right now or the scheduler wants control
                # immediately; dispatch and re-pick
                if nxt is not None and nxt <= self.clock:
                    continue
                if bound is not None and bound <= 0:
                    # scheduler internal event exactly now (budget edge)
                    self.scheduler.charge(proc, 0, self.clock)
                    continue
                return
            self.clock += quantum
            proc.cpu_time += quantum
            self.stats.busy_time += quantum
            proc.segment.remaining -= quantum
            self.scheduler.charge(proc, quantum, self.clock)
            if proc.segment is not None and proc.segment.remaining == 0:
                self._complete_segment(proc)

    def run_until_exit(self, procs: Iterable[Process], hard_limit: int) -> int:
        """Run until every process in ``procs`` exited (or ``hard_limit``).

        Returns the clock value when the last of them exited.  Useful for
        batch workloads (the ffmpeg transcode of Table 1).
        """
        procs = list(procs)
        step = max(hard_limit // 1000, 1)
        while any(p.alive for p in procs) and self.clock < hard_limit:
            self.run(min(self.clock + step, hard_limit))
        last_exit = max((p.exit_time or self.clock) for p in procs)
        return last_exit
