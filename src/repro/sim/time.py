"""Virtual-time units and helpers.

All simulation times are integer nanoseconds.  Integer arithmetic keeps the
simulator exactly deterministic (no floating-point drift in the event
calendar) and matches the precision of the kernel timestamps the paper's
tracer records ("events ... are recorded with a very high precision in the
kernel").
"""

from __future__ import annotations

import math
from collections.abc import Iterable

#: One nanosecond (the base unit).
NS = 1
#: One microsecond in nanoseconds.
US = 1_000
#: One millisecond in nanoseconds.
MS = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000


def seconds(t_ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return t_ns / SEC


def millis(t_ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return t_ns / MS


def micros(t_ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return t_ns / US


def from_seconds(t_s: float) -> int:
    """Convert float seconds to integer nanoseconds (rounded)."""
    return round(t_s * SEC)


def from_millis(t_ms: float) -> int:
    """Convert float milliseconds to integer nanoseconds (rounded)."""
    return round(t_ms * MS)


def from_micros(t_us: float) -> int:
    """Convert float microseconds to integer nanoseconds (rounded)."""
    return round(t_us * US)


def hyperperiod(periods: Iterable[int]) -> int:
    """LCM of task periods: the interval after which a periodic schedule
    can repeat (Grolleau/Goossens/Cucu-Grosjean cyclicity).

    >>> hyperperiod([8 * MS, 16 * MS, 32 * MS]) == 32 * MS
    True
    >>> hyperperiod([])
    1
    """
    result = 1
    for period in periods:
        if period <= 0:
            raise ValueError(f"periods must be positive, got {period}")
        result = math.lcm(result, period)
    return result


def fmt_time(t_ns: int) -> str:
    """Render a nanosecond timestamp with a human-friendly unit.

    >>> fmt_time(1_500)
    '1.500us'
    >>> fmt_time(2_000_000_000)
    '2.000s'
    """
    if abs(t_ns) >= SEC:
        return f"{t_ns / SEC:.3f}s"
    if abs(t_ns) >= MS:
        return f"{t_ns / MS:.3f}ms"
    if abs(t_ns) >= US:
        return f"{t_ns / US:.3f}us"
    return f"{t_ns}ns"
