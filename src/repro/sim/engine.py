"""Event calendar for the discrete-event simulator.

A minimal, deterministic priority queue of timestamped events.  Ties are
broken by insertion order (a monotonically increasing sequence number), so a
run never depends on heap internals or hash ordering.

The heap stores plain ``(time, seq, entry)`` tuples: comparisons resolve on
the ``(time, seq)`` prefix at C speed (``seq`` is unique, so the entry
object itself is never compared).  Cancellation stays O(1) and lazy — a
cancelled entry becomes a tombstone that is dropped when it surfaces — but
the queue now keeps live/tombstone counters, so ``len()`` is O(1) and the
heap is compacted whenever tombstones outnumber live entries (bounding the
memory a cancel-heavy workload, e.g. a timer wheel under churn, can pin).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any


class ScheduledEvent:
    """An entry in the calendar.

    Returned by :meth:`EventQueue.push` as a cancellation handle.
    ``callback`` and ``payload`` do not participate in ordering; the owning
    queue orders the heap on ``(time, seq)``.
    """

    __slots__ = ("time", "seq", "callback", "payload", "cancelled", "_queue")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[int, Any], None],
        payload: Any = None,
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.payload = payload
        self.cancelled = cancelled
        #: owning queue while the entry sits in the heap (None once popped)
        self._queue: EventQueue | None = None

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScheduledEvent(time={self.time}, seq={self.seq}, "
            f"payload={self.payload!r}, cancelled={self.cancelled})"
        )


class EventQueue:
    """Deterministic min-heap of :class:`ScheduledEvent`.

    Cancellation is lazy (tombstones are skipped when popped, keeping
    :meth:`ScheduledEvent.cancel` O(1)), ``len()`` reads a live counter,
    and the heap compacts itself when more than half of it is tombstones.
    """

    #: below this heap size compaction is never worth the heapify
    _COMPACT_MIN = 64

    __slots__ = ("_heap", "_seq", "_live", "_dead")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, ScheduledEvent]] = []
        self._seq = 0
        self._live = 0
        self._dead = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self, time: int, callback: Callable[[int, Any], None], payload: Any = None
    ) -> ScheduledEvent:
        """Schedule ``callback(time, payload)`` at ``time``; return a handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, seq, callback, payload)
        ev._queue = self
        heapq.heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def _on_cancel(self) -> None:
        """A live in-heap entry was just cancelled: retag and maybe compact."""
        self._live -= 1
        self._dead += 1
        heap = self._heap
        if self._dead >= self._COMPACT_MIN and self._dead * 2 > len(heap):
            self._heap = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(self._heap)
            self._dead = 0

    def peek_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                self._dead -= 1
            else:
                return entry[0]
        return None

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the earliest pending event, or ``None``."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev.cancelled:
                self._dead -= 1
            else:
                ev._queue = None
                self._live -= 1
                return ev
        return None

    def snapshot(self) -> list[ScheduledEvent]:
        """Live pending events in dispatch order ``(time, seq)``.

        A read-only view for state digests (:mod:`repro.sim.cycles`); the
        heap itself is untouched.
        """
        return [entry[2] for entry in sorted(self._heap) if not entry[2].cancelled]

    def shift_times(self, delta: int) -> None:
        """Shift every pending event ``delta`` ns into the future.

        A uniform shift preserves the ``(time, seq)`` order of every pair
        of entries, so the heap invariant survives an in-place rewrite and
        no re-heapify is needed.  Used by the fast-forward extrapolation to
        relocate the whole calendar when whole schedule cycles are skipped.
        """
        if delta == 0:
            return
        if delta < 0:
            raise ValueError(f"shift must be non-negative, got {delta}")
        heap = self._heap
        for i, (time, seq, ev) in enumerate(heap):
            ev.time = time + delta
            heap[i] = (time + delta, seq, ev)

    def pop_due(self, now: int) -> ScheduledEvent | None:
        """Pop the earliest event if it is due at or before ``now``."""
        heap = self._heap
        while heap:
            entry = heap[0]
            ev = entry[2]
            if ev.cancelled:
                heapq.heappop(heap)
                self._dead -= 1
                continue
            if entry[0] > now:
                return None
            heapq.heappop(heap)
            ev._queue = None
            self._live -= 1
            return ev
        return None
