"""Event calendar for the discrete-event simulator.

A minimal, deterministic priority queue of timestamped events.  Ties are
broken by insertion order (a monotonically increasing sequence number), so a
run never depends on heap internals or hash ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class ScheduledEvent:
    """An entry in the calendar.

    Ordering is ``(time, seq)``; ``callback`` and ``payload`` do not
    participate in comparisons.
    """

    time: int
    seq: int
    callback: Callable[[int, Any], None] = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`ScheduledEvent`.

    Cancellation is lazy: cancelled events stay in the heap and are skipped
    when popped, which keeps :meth:`cancel` O(1).
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def push(self, time: int, callback: Callable[[int, Any], None], payload: Any = None) -> ScheduledEvent:
        """Schedule ``callback(time, payload)`` at ``time``; return a handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        ev = ScheduledEvent(time=time, seq=self._seq, callback=callback, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def peek_time(self) -> int | None:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the earliest pending event, or ``None``."""
        self._drop_cancelled()
        return heapq.heappop(self._heap) if self._heap else None

    def pop_due(self, now: int) -> ScheduledEvent | None:
        """Pop the earliest event if it is due at or before ``now``."""
        when = self.peek_time()
        if when is None or when > now:
            return None
        return heapq.heappop(self._heap)
