"""Instructions yielded by process programs.

A *program* is a Python generator.  Each ``yield`` hands the kernel one
instruction; the kernel executes it (consuming virtual CPU time, possibly
blocking the process) and resumes the generator with the completion
timestamp, so programs can be written in a natural imperative style::

    def body():
        t = yield Compute(2 * MS)                      # burn CPU
        t = yield Syscall(SyscallNr.WRITE)             # non-blocking call
        t = yield Syscall(SyscallNr.CLOCK_NANOSLEEP,
                          block=SleepUntil(next_release))

Blocking semantics mirror Linux: a blocking system call consumes its kernel
entry cost, suspends the process, and *returns* (the tracer's syscall-exit
event fires) only after the process has been woken and scheduled again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.syscalls import DEFAULT_COST_NS as _DEFAULT_COST
from repro.sim.syscalls import SyscallNr, default_cost  # noqa: F401 - re-export


class BlockSpec:
    """Base class for the ways a syscall can suspend its caller."""

    __slots__ = ()


@dataclass(frozen=True)
class SleepUntil(BlockSpec):
    """Block until the absolute virtual time ``wake_at`` (ns)."""

    wake_at: int


@dataclass(frozen=True)
class SleepFor(BlockSpec):
    """Block for ``duration`` ns measured from the moment of blocking."""

    duration: int


@dataclass(frozen=True)
class WaitEvent(BlockSpec):
    """Block until :meth:`repro.sim.kernel.Kernel.fire_event` is called
    with the same ``key`` (models pipes, device readiness, futexes...)."""

    key: str


class Instruction:
    """Base class of everything a program may yield."""

    __slots__ = ()


class Compute(Instruction):
    """Consume ``duration`` ns of user-mode CPU time.

    Plain ``__slots__`` class (not a dataclass): workload generators yield
    one of these per compute slab, so construction is on the simulator's
    hottest path.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError(f"compute duration must be >= 0, got {duration}")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Compute(duration={self.duration})"

    def __eq__(self, other: object) -> bool:
        return type(other) is Compute and other.duration == self.duration

    def __hash__(self) -> int:
        return hash((Compute, self.duration))


class Syscall(Instruction):
    """Invoke system call ``nr``.

    Parameters
    ----------
    nr:
        Which call (drives tracing and statistics).
    cost:
        In-kernel CPU cost in ns; defaults to the per-call table in
        :mod:`repro.sim.syscalls`.
    block:
        If set, the call suspends the process after consuming ``cost``.
    return_cost:
        Kernel CPU spent on the return path after a wake-up (only used for
        blocking calls); the syscall-exit trace event fires when it is done.
    """

    __slots__ = ("nr", "cost", "block", "return_cost")

    def __init__(
        self,
        nr: SyscallNr,
        cost: int = -1,
        block: BlockSpec | None = None,
        return_cost: int = 500,
    ) -> None:
        if return_cost < 0:
            raise ValueError("return_cost must be >= 0")
        self.nr = nr
        # dict hit instead of the default_cost() wrapper: one Syscall is
        # built per call a workload issues
        self.cost = _DEFAULT_COST[nr] if cost < 0 else cost
        self.block = block
        self.return_cost = return_cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Syscall(nr={self.nr}, cost={self.cost}, block={self.block!r}, "
            f"return_cost={self.return_cost})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is Syscall
            and other.nr == self.nr
            and other.cost == self.cost
            and other.block == self.block
            and other.return_cost == self.return_cost
        )

    def __hash__(self) -> int:
        return hash((Syscall, self.nr, self.cost, self.block, self.return_cost))


class Fire(Instruction):
    """Wake any processes blocked on ``WaitEvent(key)``; costs no time.

    Lets one program act as a producer for another (e.g. a decoder thread
    feeding an output thread).
    """

    __slots__ = ("key",)

    def __init__(self, key: str) -> None:
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fire(key={self.key!r})"

    def __eq__(self, other: object) -> bool:
        return type(other) is Fire and other.key == self.key

    def __hash__(self) -> int:
        return hash((Fire, self.key))


class Label(Instruction):
    """Zero-time annotation; the kernel invokes registered probes.

    Workloads use labels to expose application-level instants (a video
    player marks ``"frame_displayed"``) that the metrics layer turns into
    the paper's inter-frame-time series without perturbing the simulation.
    """

    __slots__ = ("name", "payload")

    def __init__(self, name: str, payload: dict | None = None) -> None:
        self.name = name
        self.payload = {} if payload is None else payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Label(name={self.name!r}, payload={self.payload!r})"

    def __eq__(self, other: object) -> bool:
        return type(other) is Label and other.name == self.name and other.payload == self.payload
