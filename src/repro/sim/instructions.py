"""Instructions yielded by process programs.

A *program* is a Python generator.  Each ``yield`` hands the kernel one
instruction; the kernel executes it (consuming virtual CPU time, possibly
blocking the process) and resumes the generator with the completion
timestamp, so programs can be written in a natural imperative style::

    def body():
        t = yield Compute(2 * MS)                      # burn CPU
        t = yield Syscall(SyscallNr.WRITE)             # non-blocking call
        t = yield Syscall(SyscallNr.CLOCK_NANOSLEEP,
                          block=SleepUntil(next_release))

Blocking semantics mirror Linux: a blocking system call consumes its kernel
entry cost, suspends the process, and *returns* (the tracer's syscall-exit
event fires) only after the process has been woken and scheduled again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.syscalls import SyscallNr, default_cost


class BlockSpec:
    """Base class for the ways a syscall can suspend its caller."""

    __slots__ = ()


@dataclass(frozen=True)
class SleepUntil(BlockSpec):
    """Block until the absolute virtual time ``wake_at`` (ns)."""

    wake_at: int


@dataclass(frozen=True)
class SleepFor(BlockSpec):
    """Block for ``duration`` ns measured from the moment of blocking."""

    duration: int


@dataclass(frozen=True)
class WaitEvent(BlockSpec):
    """Block until :meth:`repro.sim.kernel.Kernel.fire_event` is called
    with the same ``key`` (models pipes, device readiness, futexes...)."""

    key: str


class Instruction:
    """Base class of everything a program may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Instruction):
    """Consume ``duration`` ns of user-mode CPU time."""

    duration: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"compute duration must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class Syscall(Instruction):
    """Invoke system call ``nr``.

    Parameters
    ----------
    nr:
        Which call (drives tracing and statistics).
    cost:
        In-kernel CPU cost in ns; defaults to the per-call table in
        :mod:`repro.sim.syscalls`.
    block:
        If set, the call suspends the process after consuming ``cost``.
    return_cost:
        Kernel CPU spent on the return path after a wake-up (only used for
        blocking calls); the syscall-exit trace event fires when it is done.
    """

    nr: SyscallNr
    cost: int = -1
    block: BlockSpec | None = None
    return_cost: int = 500

    # dataclass(frozen=True) + computed default: resolve in __post_init__
    def __post_init__(self) -> None:
        if self.cost < 0:
            object.__setattr__(self, "cost", default_cost(self.nr))
        if self.return_cost < 0:
            raise ValueError("return_cost must be >= 0")


@dataclass(frozen=True)
class Fire(Instruction):
    """Wake any processes blocked on ``WaitEvent(key)``; costs no time.

    Lets one program act as a producer for another (e.g. a decoder thread
    feeding an output thread).
    """

    key: str


@dataclass(frozen=True)
class Label(Instruction):
    """Zero-time annotation; the kernel invokes registered probes.

    Workloads use labels to expose application-level instants (a video
    player marks ``"frame_displayed"``) that the metrics layer turns into
    the paper's inter-frame-time series without perturbing the simulation.
    """

    name: str
    payload: dict = field(default_factory=dict)
