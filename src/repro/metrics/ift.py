"""Inter-frame-time measurement.

The paper instruments a custom player that "records the sequence of
inter-frame times" — the application-level QoS metric of §5.4–5.5.
:class:`InterFrameProbe` is that instrument: it subscribes to the video
player's ``frame_displayed`` labels and records both the raw display
timestamps and the deltas between consecutive displays.
"""

from __future__ import annotations

from repro.metrics.stats import RunningStats
from repro.sim.kernel import Kernel
from repro.sim.process import Process


class InterFrameProbe:
    """Collects the inter-frame-time series of one (or every) player."""

    def __init__(self, *, pid: int | None = None) -> None:
        #: restrict to one process, or None for any emitter
        self.pid = pid
        #: display timestamps, ns
        self.display_times: list[int] = []
        #: frame indices as reported by the player
        self.frames: list[int] = []
        #: consecutive display deltas, ns
        self.inter_frame_times: list[int] = []
        self.stats = RunningStats()

    def install(self, kernel: Kernel, label: str = "frame_displayed") -> None:
        """Subscribe to ``label`` events on ``kernel``."""
        kernel.add_label_probe(label, self._on_frame)

    def _on_frame(self, proc: Process, now: int, payload: dict) -> None:
        if self.pid is not None and proc.pid != self.pid:
            return
        if self.display_times:
            ift = now - self.display_times[-1]
            self.inter_frame_times.append(ift)
            self.stats.add(ift)
        self.display_times.append(now)
        self.frames.append(int(payload.get("frame", len(self.frames))))

    @property
    def mean_ms(self) -> float:
        """Mean inter-frame time in milliseconds."""
        return self.stats.mean / 1e6

    @property
    def std_ms(self) -> float:
        """Standard deviation of the inter-frame time in milliseconds."""
        return self.stats.std / 1e6
