"""Measurement utilities: running statistics, PMFs/CDFs, inter-frame times."""

from repro.metrics.ift import InterFrameProbe
from repro.metrics.stats import RunningStats, cdf_points, pmf, quantile

__all__ = [
    "RunningStats",
    "pmf",
    "cdf_points",
    "quantile",
    "InterFrameProbe",
]
