"""Small statistics toolkit used across the experiments.

Everything the paper reports is a mean, a standard deviation, a PMF or a
CDF of some measured series; these helpers compute them without pulling in
heavier machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class RunningStats:
    """Welford single-pass mean/variance accumulator."""

    n: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    min: float = math.inf
    max: float = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample in."""
        x = float(x)
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    def extend(self, xs) -> None:
        """Fold an iterable of samples in."""
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 with fewer than 2 samples."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)


def pmf(values, bin_width: float) -> dict[float, float]:
    """Probability mass function over bins of ``bin_width``.

    Values are binned to ``round(v / bin_width) * bin_width``; the result
    maps bin centre -> probability, and sums to 1 for non-empty input.
    """
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    values = list(values)
    if not values:
        return {}
    counts: dict[float, int] = {}
    for v in values:
        centre = round(float(v) / bin_width) * bin_width
        counts[centre] = counts.get(centre, 0) + 1
    total = len(values)
    return {k: c / total for k, c in sorted(counts.items())}


def cdf_points(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities)."""
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def quantile(values, q: float) -> float:
    """The ``q``-quantile of ``values`` (linear interpolation)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("quantile of empty sequence")
    return float(np.quantile(arr, q))
