"""Event-triggered feedback activation (the alternative to sampling at S).

The paper's controller is *clocked*: every sampling period S it drains
the tracer, re-estimates the period and re-tunes ``(Q, T)`` — too late
when a burst lands just after an activation, too often when nothing
changed, and §4.4's Remark 2 concedes that the obvious fix (S = task
period) is "very unstable and fluctuating".  Xia, Tian & Sun
(arXiv:0806.1381) argue the loop should instead be *event-driven*:
recompute when the plant signals that the reservation is wrong.

This module implements that mode for both halves of the Figure 3
architecture:

- :class:`EventDrivenLoop` re-activates one task controller on
  **budget-exhaustion bursts** (K exhaustions of its CBS server within a
  sliding window), **deadline misses** (scheduling latency above a
  threshold on the task's pids) and **analyser confidence drops** (the
  rate detector loses the lock it had);
- :class:`SupervisorEventLoop` runs the supervisor's starvation watchdog
  on **compression** episodes (Eq. 1 granted less than requested) and
  **departures** (freed bandwidth nobody redistributes) instead of on a
  fixed period.

Two intervals bound the activation rate from both sides:

- the **refractory** interval is the minimum spacing between recomputes.
  An event landing inside it is *deferred* to the refractory boundary
  (never dropped), so a sustained burst costs at most one recompute per
  refractory instead of one per event;
- the **fallback floor** is the maximum spacing: a periodic fallback
  recompute always fires within ``fallback_floor`` of the previous one,
  so the loop can never starve even if every event source goes silent.

Both loops keep exactly one armed calendar event at any time — the next
recompute, whatever causes it — and fire it through the kernel calendar
rather than calling into the controller from scheduler hook context, so
re-entrancy is impossible and same-instant causes merge into a single
recompute whose cause tuple is ordered by the fixed priority in
:data:`CONTROLLER_TRIGGER_CAUSES`.  With every event source disabled and
``fallback_floor = S`` the loop degenerates to the paper's periodic
controller, trace-identically (:meth:`EventTriggerConfig.periodic_equivalent`;
property-tested in ``tests/core/test_events.py``).

Trigger decisions are emitted on the ``controller.trigger`` /
``supervisor.trigger`` telemetry tracks so a Perfetto export shows *why*
each recompute fired (see ``docs/event-driven.md``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.knobs import validate_knob
from repro.sim.time import MS

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.controller import TaskController
    from repro.core.supervisor import Supervisor
    from repro.sched.cbs import Server
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process

#: controller trigger causes, in the order a merged same-instant tuple lists them
CONTROLLER_TRIGGER_CAUSES = ("exhaustion-burst", "deadline-miss", "confidence-drop", "floor")

#: supervisor trigger causes, same convention
SUPERVISOR_TRIGGER_CAUSES = ("compression", "departure", "floor")


@dataclass(frozen=True)
class EventTriggerConfig:
    """When an event-driven loop recomputes.

    The four rate knobs are registered in
    :data:`repro.core.knobs.CONTROLLER_KNOBS` (``burst_threshold``,
    ``burst_window``, ``refractory``, ``fallback_floor``), so the fleet
    DSL validates them and ``repro-exp tune`` can search them.  The two
    ``None``-able thresholds disable their event source entirely
    (``burst_threshold=None`` reads as K = ∞).
    """

    #: K: budget exhaustions within ``burst_window`` that fire a
    #: recompute; None disables the exhaustion source (K = ∞)
    burst_threshold: int | None = 3
    #: sliding window the exhaustion burst is counted over, ns
    burst_window: int = 250 * MS
    #: minimum spacing between recomputes, ns; events inside it are
    #: deferred to the boundary (one merged recompute), never dropped
    refractory: int = 50 * MS
    #: maximum spacing between recomputes, ns (the periodic fallback)
    fallback_floor: int = 400 * MS
    #: scheduling latency above this counts as a deadline-miss event, ns;
    #: None disables the miss source
    miss_threshold: int | None = 10 * MS
    #: accelerated re-activation while the period analyser has lost a
    #: lock it previously held (checked at each recompute)
    confidence_trigger: bool = True

    def __post_init__(self) -> None:
        """Validate every knob against the registry + cross-field rules."""
        if self.burst_threshold is not None:
            validate_knob("burst_threshold", self.burst_threshold)
        validate_knob("burst_window", self.burst_window)
        validate_knob("refractory", self.refractory)
        validate_knob("fallback_floor", self.fallback_floor)
        if self.refractory > self.fallback_floor:
            raise ValueError(
                f"refractory ({self.refractory}) must not exceed "
                f"fallback_floor ({self.fallback_floor})"
            )
        if self.miss_threshold is not None and self.miss_threshold <= 0:
            raise ValueError(
                f"miss_threshold must be > 0 ns or None, got {self.miss_threshold}"
            )

    @staticmethod
    def periodic_equivalent(sampling_period: int) -> EventTriggerConfig:
        """The degenerate config that reproduces periodic sampling at S.

        Every event source is disabled, so only the fallback floor fires —
        every ``sampling_period``, exactly like ``kernel.every(S)``.  The
        resulting schedule is trace-identical to periodic mode.
        """
        return EventTriggerConfig(
            burst_threshold=None,
            miss_threshold=None,
            confidence_trigger=False,
            refractory=sampling_period,
            fallback_floor=sampling_period,
        )


@dataclass(frozen=True)
class TriggerRecord:
    """One recompute decision: when it fired and every cause that merged."""

    now: int
    causes: tuple[str, ...]


class MissDispatcher:
    """Fans the kernel's single latency hook out to per-loop subscribers.

    The kernel exposes one ``latency_hook`` slot; every adopted task's
    event loop wants its own pid-filtered view of it.  The dispatcher is
    installed once per kernel (chaining any hook already present) and
    forwards each sample to the subscribers whose pid set and threshold
    match.
    """

    def __init__(self, previous: Callable[[Process, int, int], None] | None = None) -> None:
        self._previous = previous
        self._subs: list[tuple[frozenset[int], int, Callable[[Process, int, int], None]]] = []

    def subscribe(
        self,
        pids: frozenset[int],
        threshold: int,
        callback: Callable[[Process, int, int], None],
    ) -> None:
        """Route samples of ``pids`` with latency > ``threshold`` to ``callback``."""
        self._subs.append((frozenset(pids), threshold, callback))

    def __call__(self, proc: Process, latency: int, now: int) -> None:
        prev = self._previous
        if prev is not None:
            prev(proc, latency, now)
        pid = proc.pid
        for pids, threshold, callback in self._subs:
            if latency > threshold and pid in pids:
                callback(proc, latency, now)


def miss_dispatcher(kernel: Kernel) -> MissDispatcher:
    """The kernel's :class:`MissDispatcher`, installed on first use."""
    hook = kernel.latency_hook
    if isinstance(hook, MissDispatcher):
        return hook
    dispatcher = MissDispatcher(hook)
    kernel.latency_hook = dispatcher
    return dispatcher


class _TriggeredLoop:
    """Shared machinery: one armed calendar event, refractory, floor.

    Subclasses define the cause order and what a recompute does.  The
    invariant after :meth:`start` is that exactly one calendar event is
    armed at any time — the next recompute — at
    ``min(deferred event demand, last recompute + fallback_floor)``.
    """

    #: cause priority for merged same-instant tuples (subclass constant)
    CAUSE_ORDER: tuple[str, ...] = ()

    #: telemetry hub (:mod:`repro.obs`); None = disabled fast path
    _obs = None

    def __init__(self, kernel: Kernel, config: EventTriggerConfig | None = None) -> None:
        self.kernel = kernel
        self.config = config or EventTriggerConfig()
        #: total recomputes fired by this loop
        self.recomputes = 0
        #: every trigger decision, in firing order
        self.triggers: list[TriggerRecord] = []
        #: cause -> number of recomputes it (co-)caused
        self.cause_counts: dict[str, int] = {}
        self.cancelled = False
        self._started = False
        self._last_fire: int | None = None
        self._armed: object | None = None
        self._armed_at = 0
        self._causes: set[str] = set()

    def start(self, now: int | None = None) -> _TriggeredLoop:
        """Attach the event sources and arm the first fallback recompute."""
        if self._started:
            raise RuntimeError("loop already started")
        self._started = True
        now = self.kernel.clock if now is None else now
        self._attach(now)
        self._arm(now + self.config.fallback_floor, "floor")
        return self

    def cancel(self) -> None:
        """Stop the loop (timer-handle compatibility: no further fires)."""
        self.cancelled = True
        armed = self._armed
        if armed is not None:
            armed.cancel()  # type: ignore[attr-defined]
            self._armed = None
        self._detach()

    def _attach(self, now: int) -> None:  # pragma: no cover - overridden
        del now

    def _detach(self) -> None:  # pragma: no cover - overridden
        pass

    def _arm(self, when: int, cause: str) -> None:
        self._armed_at = when
        self._causes = {cause}
        self._armed = self.kernel.at(when, self._fire)

    def _request(self, cause: str, now: int) -> None:
        """An event source demands a recompute; refractory applies.

        Demands inside the refractory interval defer to its boundary;
        same-instant demands merge into the already-armed recompute.  A
        demand later than the armed recompute is absorbed by it (the
        earlier fire resets every source and re-arms the floor).
        """
        if self.cancelled:
            return
        earliest = now
        if self._last_fire is not None:
            boundary = self._last_fire + self.config.refractory
            if boundary > earliest:
                earliest = boundary
        if self._armed is not None:
            if earliest == self._armed_at:
                self._causes.add(cause)
                return
            if earliest > self._armed_at:
                return
            self._armed.cancel()  # type: ignore[attr-defined]
        self._arm(earliest, cause)

    def _fire(self, now: int) -> None:
        """Calendar callback: run one recompute and re-arm the floor."""
        if self.cancelled:
            return
        causes = tuple(c for c in self.CAUSE_ORDER if c in self._causes)
        self._armed = None
        self._causes = set()
        self.recomputes += 1
        self._last_fire = now
        for cause in causes:
            self.cause_counts[cause] = self.cause_counts.get(cause, 0) + 1
        self.triggers.append(TriggerRecord(now=now, causes=causes))
        self._recompute(now, causes)
        if self._armed is None:
            # no accelerated follow-up was requested during the recompute:
            # the next fire is the fallback floor
            self._arm(now + self.config.fallback_floor, "floor")
        self._emit(now, causes)

    def _recompute(self, now: int, causes: tuple[str, ...]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    def _emit(self, now: int, causes: tuple[str, ...]) -> None:
        raise NotImplementedError  # pragma: no cover - abstract


class EventDrivenLoop(_TriggeredLoop):
    """Event-triggered activation for one :class:`TaskController`.

    Replaces the runtime's ``kernel.every(S, controller.activate)`` timer
    when ``TaskControllerConfig.trigger == "event"``.  Event sources:

    - ``exhaustion-burst`` — the task's CBS server exhausted its budget
      ``burst_threshold`` times within ``burst_window`` (hooked via
      ``Server.exhaustion_hook``);
    - ``deadline-miss`` — a task pid's wake-up→dispatch latency exceeded
      ``miss_threshold`` (hooked via the kernel's latency hook);
    - ``confidence-drop`` — the period analyser held an estimate but the
      recompute's analysis lost it (checked at each fire; schedules an
      accelerated retry one refractory later while the drop persists);
    - ``floor`` — the periodic fallback.
    """

    CAUSE_ORDER = CONTROLLER_TRIGGER_CAUSES

    def __init__(
        self,
        kernel: Kernel,
        controller: TaskController,
        config: EventTriggerConfig | None = None,
        *,
        server: Server | None = None,
        pids: frozenset[int] = frozenset(),
    ) -> None:
        super().__init__(kernel, config)
        self.controller = controller
        self.server = server
        self.pids = frozenset(pids)
        self._exhaustions: deque[int] = deque()

    # -- event sources -------------------------------------------------
    def _attach(self, now: int) -> None:
        del now
        cfg = self.config
        if self.server is not None and cfg.burst_threshold is not None:
            self.server.exhaustion_hook = self._on_exhaustion
        if self.pids and cfg.miss_threshold is not None:
            miss_dispatcher(self.kernel).subscribe(
                self.pids, cfg.miss_threshold, self._on_miss
            )

    def _detach(self) -> None:
        server = self.server
        if server is not None and server.exhaustion_hook is self._on_exhaustion:
            server.exhaustion_hook = None

    def _on_exhaustion(self, server: Server, now: int) -> None:
        """CBS hook: count the exhaustion; a full burst demands a recompute."""
        del server
        threshold = self.config.burst_threshold
        if threshold is None or self.cancelled:
            return
        window = self._exhaustions
        window.append(now)
        horizon = now - self.config.burst_window
        while window and window[0] < horizon:
            window.popleft()
        if len(window) >= threshold:
            window.clear()
            self._request("exhaustion-burst", now)

    def _on_miss(self, proc: Process, latency: int, now: int) -> None:
        """Latency hook (pre-filtered by the dispatcher): demand a recompute."""
        del proc, latency
        self._request("deadline-miss", now)

    # -- recompute -----------------------------------------------------
    def _recompute(self, now: int, causes: tuple[str, ...]) -> None:
        del causes
        self.controller.activate(now)
        self._check_confidence(now)

    def _check_confidence(self, now: int) -> None:
        """Lost analyser lock → accelerated retry one refractory later."""
        if not self.config.confidence_trigger:
            return
        controller = self.controller
        analyser = controller.analyser
        if analyser is None or not controller.config.use_period_estimate:
            return
        if analyser.last_estimate is None:
            # never locked: the floor cadence is all a cold start gets
            return
        history = analyser.history
        lost = bool(history) and history[-1][0] == now and history[-1][1] is None
        starved = analyser.n_events < analyser.config.min_events
        if lost or starved:
            self._request("confidence-drop", now)

    def _emit(self, now: int, causes: tuple[str, ...]) -> None:
        obs = self._obs
        if obs is not None:
            obs.controller_trigger(self.controller.name, now, causes, self.recomputes)


class SupervisorEventLoop(_TriggeredLoop):
    """Event-triggered starvation watchdog for the :class:`Supervisor`.

    Instead of ``supervisor.start_watchdog(kernel, period)``, the
    watchdog runs when something actually moved the books: a recompute
    that compressed grants below requests (``compression``) or a
    departure that freed bandwidth nobody redistributed (``departure``),
    refractory-limited, with the usual periodic floor.  Install via
    :meth:`repro.core.supervisor.Supervisor.start_event_watchdog`.
    """

    CAUSE_ORDER = SUPERVISOR_TRIGGER_CAUSES

    def __init__(
        self,
        kernel: Kernel,
        supervisor: Supervisor,
        config: EventTriggerConfig | None = None,
    ) -> None:
        super().__init__(kernel, config)
        self.supervisor = supervisor
        #: cumulative grants repaired by loop-fired watchdog runs
        self.repairs = 0

    def _attach(self, now: int) -> None:
        del now
        self.supervisor.trigger_hook = self._on_signal

    def _detach(self) -> None:
        if self.supervisor.trigger_hook == self._on_signal:
            self.supervisor.trigger_hook = None

    def _on_signal(self, signal: str) -> None:
        """Supervisor hook; the supervisor is clock-free, so stamp here."""
        self._request(signal, self.kernel.clock)

    def _recompute(self, now: int, causes: tuple[str, ...]) -> None:
        del causes
        self.repairs += self.supervisor.watchdog(now)

    def _emit(self, now: int, causes: tuple[str, ...]) -> None:
        obs = self._obs
        if obs is not None:
            obs.supervisor_trigger(now, causes, self.repairs)
