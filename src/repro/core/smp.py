"""Partitioned multicore self-tuning (§6's multicore direction).

The paper's §6 names multicore as future work: "an interesting
possibility is to use a SMP real-time CPU scheduling policy [7] ... an
open research issue is to design an optimised cooperation between the
load balancing mechanisms inside the kernel, the real-time partitioning
of the tasks between the cores and the adaptive mechanisms proposed in
this paper."

:class:`SmpSelfTuningRuntime` implements the *partitioned* point in that
design space: every CPU runs its own kernel, CBS scheduler, tracer and
supervisor (per-CPU ``Σ Q/T ≤ U_lub``), and adopted tasks are placed on a
CPU at adoption time by worst-fit on the currently granted bandwidth —
the placement policy hierarchical multiprocessor reservations [7] use.
Tasks do not migrate after placement; on-line re-balancing is exactly the
open research issue the paper defers, and is deferred here too.
"""

from __future__ import annotations

from repro.core.runtime import AdoptedTask, SelfTuningRuntime
from repro.sim.kernel import KernelConfig
from repro.sim.process import Process, Program


class SmpSelfTuningRuntime:
    """N independent per-CPU self-tuning runtimes with worst-fit placement."""

    def __init__(
        self,
        n_cpus: int = 2,
        *,
        u_lub: float = 0.95,
        kernel_config: KernelConfig | None = None,
        reservation_policy: str = "hard",
    ) -> None:
        if n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {n_cpus}")
        self.cpus: list[SelfTuningRuntime] = [
            SelfTuningRuntime(
                u_lub=u_lub,
                kernel_config=kernel_config,
                reservation_policy=reservation_policy,
            )
            for _ in range(n_cpus)
        ]
        self._bg_next = 0

    @property
    def n_cpus(self) -> int:
        """Number of CPUs in the system."""
        return len(self.cpus)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def granted_bandwidth(self, cpu: int) -> float:
        """Σ of granted bandwidths on ``cpu``."""
        return self.cpus[cpu].supervisor.total_granted_bandwidth()

    def least_loaded_cpu(self) -> int:
        """Worst-fit target: the CPU with the smallest granted bandwidth."""
        return min(range(self.n_cpus), key=self.granted_bandwidth)

    def place(
        self,
        name: str,
        program: Program,
        *,
        cpu: int | None = None,
        **adopt_kwargs,
    ) -> tuple[int, Process, AdoptedTask]:
        """Spawn ``program`` on a CPU and adopt it there.

        ``cpu`` pins the placement; otherwise worst-fit on the granted
        bandwidth decides.  ``adopt_kwargs`` are forwarded to
        :meth:`repro.core.runtime.SelfTuningRuntime.adopt`.
        Returns ``(cpu index, process, adopted task)``.
        """
        target = cpu if cpu is not None else self.least_loaded_cpu()
        if not 0 <= target < self.n_cpus:
            raise ValueError(f"cpu {target} out of range 0..{self.n_cpus - 1}")
        runtime = self.cpus[target]
        proc = runtime.spawn(name, program)
        task = runtime.adopt(proc, **adopt_kwargs)
        return target, proc, task

    def spawn_background(self, name: str, program: Program, *, cpu: int | None = None) -> tuple[int, Process]:
        """Spawn a best-effort process (round-robin over CPUs by default)."""
        if cpu is None:
            cpu = self._bg_next % self.n_cpus
            self._bg_next += 1
        proc = self.cpus[cpu].spawn(name, program)
        return cpu, proc

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: int) -> None:
        """Advance every CPU to virtual time ``until``.

        Partitioned scheduling has no cross-CPU interaction, so the CPUs
        are simulated independently and exactly.
        """
        for runtime in self.cpus:
            runtime.run(until)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def load_report(self) -> list[dict]:
        """Per-CPU summary: granted bandwidth, busy fraction, task count."""
        report = []
        for i, runtime in enumerate(self.cpus):
            stats = runtime.kernel.stats
            elapsed = max(runtime.kernel.clock, 1)
            report.append(
                {
                    "cpu": i,
                    "granted_bandwidth": self.granted_bandwidth(i),
                    "busy_fraction": stats.busy_time / elapsed,
                    "adopted_tasks": len(set(t.controller.name for t in runtime.tasks.values())),
                }
            )
        return report
