"""The LFS++ bandwidth controller (§4.4).

Sampled every ``S`` ns, the controller reads the CPU-time sensor of the
task's server (the ``qres_get_time`` equivalent), converts the consumption
of the last sampling interval into an estimated *per-period* computation
time, feeds it to a predictor, and requests::

    Q_req = (1 + x) · P( W_k − W_{k−1} ) · P / S

where ``x`` is the spread factor (10–20%), ``P`` the application period
estimated by the period analyser and ``S`` the sampling period.  The
reservation period is set equal to the estimated task period (the robust
choice Figure 1 motivates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knobs import validate_knob
from repro.core.predictors import Predictor, QuantileEstimator
from repro.sim.time import MS


@dataclass
class LfsPlusPlusConfig:
    """Controller parameters; defaults per the paper's description."""

    #: spread factor x (robustness / responsiveness margin)
    spread: float = 0.15
    #: quantile-estimator window N
    predictor_window: int = 16
    #: quantile p = (N - j)/N; 0.9375 = second maximum with N = 16
    quantile: float = 0.9375
    #: floor for the requested budget, ns (avoids zero-size reservations)
    min_budget: int = 200_000
    #: cap for the requested bandwidth (the supervisor may curb it further)
    max_bandwidth: float = 0.95
    #: reservation period used before the first period estimate, ns
    default_period: int = 40 * MS
    #: initial bandwidth request before any measurement
    initial_bandwidth: float = 0.05
    #: §4.4 remark 1 extension ("a closer cooperation with the scheduler
    #: for detecting budget exhaustion might help"): when the server
    #: exhausted its budget more than this many times per application
    #: period during the last sampling interval, the request is raised by
    #: :attr:`exhaustion_boost` on top of the prediction.  ``None``
    #: disables the mechanism (the paper's baseline behaviour).
    exhaustion_rate_threshold: float | None = None
    #: multiplicative boost applied when the threshold trips
    exhaustion_boost: float = 0.25

    def __post_init__(self) -> None:
        validate_knob("spread", self.spread)
        validate_knob("window", self.predictor_window, label="predictor_window")
        validate_knob("quantile", self.quantile)
        validate_knob("max_bandwidth", self.max_bandwidth)
        validate_knob("boost", self.exhaustion_boost, label="exhaustion_boost")
        if self.default_period <= 0:
            raise ValueError("default_period must be positive")
        if self.exhaustion_rate_threshold is not None and self.exhaustion_rate_threshold < 0:
            raise ValueError("exhaustion_rate_threshold must be >= 0 or None")


@dataclass(frozen=True)
class BandwidthRequest:
    """A (budget, period) pair requested from the supervisor."""

    budget: int
    period: int

    @property
    def bandwidth(self) -> float:
        """Requested CPU fraction."""
        return self.budget / self.period


class LfsPlusPlus:
    """Per-task LFS++ feedback law.

    Drive it with :meth:`update` once per sampling interval; it returns
    the next :class:`BandwidthRequest`.  The caller (the task controller)
    owns the sensor and the actuation.
    """

    #: scheduler variable this law consumes (see TaskController)
    SENSOR = "consumed"

    def __init__(
        self, config: LfsPlusPlusConfig | None = None, *, predictor: Predictor | None = None
    ) -> None:
        self.config = config or LfsPlusPlusConfig()
        self.predictor: Predictor = predictor or QuantileEstimator(
            window=self.config.predictor_window, quantile=self.config.quantile
        )
        self._last_consumed: int | None = None
        self._last_time: int | None = None
        self._last_exhaustions: int | None = None
        #: request history [(now, request)], for the Figure 13 time series
        self.history: list[tuple[int, BandwidthRequest]] = []
        #: raw per-period computation-time estimates [(now, ns)] — the
        #: "predicted computation time" signal §4.4's remark 2 discusses
        self.sample_history: list[tuple[int, float]] = []
        #: number of sampling intervals in which the boost tripped
        self.boosts = 0

    def _clamp(self, budget: int, period: int) -> BandwidthRequest:
        budget = max(budget, self.config.min_budget)
        cap = int(self.config.max_bandwidth * period)
        request = BandwidthRequest(budget=min(budget, cap), period=period)
        return request

    def initial_request(self, period_ns: int | None = None) -> BandwidthRequest:
        """Request used when the task is adopted, before any sample."""
        period = period_ns or self.config.default_period
        budget = int(self.config.initial_bandwidth * period)
        return self._clamp(budget, period)

    def update(
        self,
        consumed_total: int,
        period_ns: int | None,
        now: int,
        *,
        exhaustions_total: int | None = None,
    ) -> BandwidthRequest:
        """One activation of the feedback loop.

        Parameters
        ----------
        consumed_total:
            Monotone CPU-time counter of the task's server (ns).
        period_ns:
            Current period estimate from the analyser (``None`` keeps the
            previous/default reservation period).
        now:
            Current time (ns); the *actual* elapsed interval is used in
            place of the nominal ``S`` so controller jitter cannot skew the
            utilisation estimate.
        exhaustions_total:
            Optional monotone budget-exhaustion counter; only consulted
            when the §4.4-remark-1 boost is enabled in the configuration.
        """
        period = period_ns or self.config.default_period
        if self._last_consumed is None or self._last_time is None or now <= self._last_time:
            self._last_consumed = consumed_total
            self._last_time = now
            self._last_exhaustions = exhaustions_total
            request = self.initial_request(period)
            self.history.append((now, request))
            return request

        interval = now - self._last_time
        delta = max(0, consumed_total - self._last_consumed)
        self._last_consumed = consumed_total
        self._last_time = now

        # expected computation time per application period
        per_period = delta * period / interval
        self.sample_history.append((now, per_period))
        self.predictor.observe(per_period)
        predicted = self.predictor.predict()
        factor = 1.0 + self.config.spread
        if (
            self.config.exhaustion_rate_threshold is not None
            and exhaustions_total is not None
            and self._last_exhaustions is not None
        ):
            periods_elapsed = max(interval / period, 1e-9)
            rate = (exhaustions_total - self._last_exhaustions) / periods_elapsed
            if rate > self.config.exhaustion_rate_threshold:
                factor *= 1.0 + self.config.exhaustion_boost
                self.boosts += 1
        self._last_exhaustions = exhaustions_total
        budget = int(factor * predicted)
        request = self._clamp(budget, period)
        self.history.append((now, request))
        return request
