"""The period analyser: first block of the task controller (Fig. 3).

Consumes batches of trace events (from the qtrace download agent or from a
recorded trace), maintains a sliding observation window of ``H`` ns, and on
demand runs spectrum + peak detection to produce a
:class:`PeriodEstimate`.

The analyser is deliberately oblivious to *what* the events are — syscall
entries, exits, or scheduler wake-ups all work, as long as the application
emits them in periodic bursts (§4.2's founding assumption).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.peaks import PeakConfig, PeakDetector, PeakResult
from repro.core.spectrum import SpectrumConfig, sparse_amplitude_spectrum
from repro.sim.time import SEC
from repro.tracer.events import TraceEvent


@dataclass(frozen=True)
class AnalyserConfig:
    """Everything the analyser needs: frequency grid, heuristic, horizon."""

    spectrum: SpectrumConfig = field(default_factory=SpectrumConfig)
    peaks: PeakConfig = field(default_factory=PeakConfig)
    #: observation time horizon H, ns
    horizon_ns: int = 2 * SEC
    #: minimum number of events in the window before attempting detection
    min_events: int = 8
    #: reject events stamped earlier than the newest accepted timestamp
    #: (clean traces are monotone per download, so this only fires on a
    #: corrupted timestamp source; see docs/fault-injection.md)
    reject_backwards: bool = True
    #: additionally reject events stamped *equal* to the newest accepted
    #: timestamp.  Off by default: merged multicore event trains contain
    #: legitimate equal timestamps.
    reject_duplicates: bool = False
    #: accept only period estimates inside ``(lo_ns, hi_ns)``; out-of-band
    #: detections are discarded (counted, not stored).  None = no band.
    period_band: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.horizon_ns <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon_ns}")
        if self.min_events < 1:
            raise ValueError(f"min_events must be >= 1, got {self.min_events}")
        if self.period_band is not None:
            lo, hi = self.period_band
            if lo <= 0 or hi <= lo:
                raise ValueError(f"period_band must satisfy 0 < lo < hi, got {self.period_band}")


@dataclass(frozen=True)
class PeriodEstimate:
    """A successful period detection."""

    #: fundamental frequency, Hz
    frequency: float
    #: the corresponding period, ns
    period_ns: int
    #: number of events the estimate was computed from
    n_events: int
    #: detection detail (candidates, harmonic sums, cost)
    detail: PeakResult = field(repr=False, default=None)  # type: ignore[assignment]


class PeriodAnalyser:
    """Sliding-window period estimation from kernel event timestamps."""

    def __init__(self, config: AnalyserConfig | None = None) -> None:
        self.config = config or AnalyserConfig()
        self._detector = PeakDetector(self.config.peaks)
        self._freqs = self.config.spectrum.frequencies()
        self._times: deque[int] = deque()
        #: most recent estimate (None until the first success)
        self.last_estimate: PeriodEstimate | None = None
        #: history of (analysis time, estimate-or-None)
        self.history: list[tuple[int, PeriodEstimate | None]] = []
        #: guard rejections by kind (``backwards`` / ``duplicate`` / ``band``)
        self.anomalies: dict[str, int] = {}
        #: ring-overrun losses reported by the download path
        self.overruns = 0
        self._last_accepted: int | None = None

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def _accept(self, t: int) -> bool:
        """Anomaly guard: admit ``t`` into the window or count a rejection.

        A corrupted download path can deliver timestamps that run
        backwards or collapse onto one instant; admitting them would
        poison the spectrum (a non-causal Dirac train has energy
        everywhere).  Rejected events are counted in :attr:`anomalies`
        and never reach the window.
        """
        last = self._last_accepted
        if last is not None:
            if self.config.reject_backwards and t < last:
                self.anomalies["backwards"] = self.anomalies.get("backwards", 0) + 1
                return False
            if self.config.reject_duplicates and t == last:
                self.anomalies["duplicate"] = self.anomalies.get("duplicate", 0) + 1
                return False
        self._last_accepted = t
        self._times.append(t)
        return True

    def add_times(self, times_ns) -> None:
        """Feed raw event timestamps (ns)."""
        for t in times_ns:
            self._accept(int(t))

    def add_batch(self, batch: list[TraceEvent], now: int) -> None:
        """Sink interface for :meth:`repro.tracer.qtrace.QTracer.add_sink`."""
        for ev in batch:
            self._accept(ev.time)
        self._evict(now)

    def note_overrun(self, n: int) -> None:
        """Record ``n`` events lost to ring overwrite before download."""
        self.overruns += n

    def _evict(self, now: int) -> None:
        cutoff = now - self.config.horizon_ns
        while self._times and self._times[0] < cutoff:
            self._times.popleft()

    @property
    def n_events(self) -> int:
        """Events currently inside the observation window."""
        return len(self._times)

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def window_times(self, now: int | None = None) -> np.ndarray:
        """Timestamps inside the window ending at ``now`` (default: all)."""
        if now is not None:
            self._evict(now)
        return np.fromiter(self._times, dtype=np.int64, count=len(self._times))

    def spectrum(self, now: int | None = None) -> np.ndarray:
        """Amplitude spectrum of the current window."""
        return sparse_amplitude_spectrum(self.window_times(now), self._freqs)

    def analyse(self, now: int | None = None) -> PeriodEstimate | None:
        """Run detection on the current window.

        Returns ``None`` when the window is too empty or the heuristic
        declares the event train non-periodic.  Successful estimates are
        also stored in :attr:`last_estimate`.
        """
        times = self.window_times(now)
        stamp = now if now is not None else (int(times[-1]) if times.size else 0)
        if times.size < self.config.min_events:
            self.history.append((stamp, None))
            return None
        amp = sparse_amplitude_spectrum(times, self._freqs)
        result = self._detector.detect(self._freqs, amp)
        if result.frequency is None or result.frequency <= 0:
            self.history.append((stamp, None))
            return None
        period_ns = int(round(SEC / result.frequency))
        band = self.config.period_band
        if band is not None and not band[0] <= period_ns <= band[1]:
            # an implausible detection (coarsened clock, aliased spectrum):
            # discard rather than actuate on it
            self.anomalies["band"] = self.anomalies.get("band", 0) + 1
            self.history.append((stamp, None))
            return None
        estimate = PeriodEstimate(
            frequency=result.frequency,
            period_ns=period_ns,
            n_events=int(times.size),
            detail=result,
        )
        self.last_estimate = estimate
        self.history.append((stamp, estimate))
        return estimate
