"""The original Legacy Feedback Scheduler baseline (LFS, [2]).

LFS samples, once per reservation period, a *binary* signal: did the task
saturate its budget in the last period?  Bandwidth is then nudged up on
saturation and decayed otherwise — a coarse-grained law that cannot see
how much CPU the task actually consumed, which is precisely the limitation
LFS++ removes ("we use a finer grain for the feedback information").

The multiplicative step sizes reproduce the qualitative behaviour of
Figure 13: starting from a small initial bandwidth, LFS needs on the order
of a hundred sampling periods to climb to the task's utilisation, and it
keeps oscillating around it because the binary signal carries no
magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lfspp import BandwidthRequest
from repro.sim.time import MS


@dataclass
class LfsConfig:
    """LFS parameters."""

    #: multiplicative increase applied on budget saturation
    eta_up: float = 0.01
    #: multiplicative decrease applied when the budget was not exhausted
    eta_down: float = 0.002
    #: bandwidth the controller starts from
    initial_bandwidth: float = 0.05
    #: bandwidth bounds
    min_bandwidth: float = 0.01
    max_bandwidth: float = 0.95
    #: fixed reservation period (LFS has no period detector), ns
    period: int = 40 * MS

    def __post_init__(self) -> None:
        if self.eta_up <= 0 or self.eta_down < 0:
            raise ValueError("eta_up must be > 0 and eta_down >= 0")
        if not 0.0 < self.min_bandwidth <= self.max_bandwidth <= 1.0:
            raise ValueError("need 0 < min_bandwidth <= max_bandwidth <= 1")


class Lfs:
    """Binary-feedback bandwidth controller."""

    #: scheduler variable this law consumes (see TaskController)
    SENSOR = "exhaustions"

    def __init__(self, config: LfsConfig | None = None) -> None:
        self.config = config or LfsConfig()
        self.bandwidth = self.config.initial_bandwidth
        self._last_exhaustions: int | None = None
        #: request history [(now, request)]
        self.history: list[tuple[int, BandwidthRequest]] = []

    def _request(self, now: int) -> BandwidthRequest:
        period = self.config.period
        request = BandwidthRequest(budget=max(1, int(self.bandwidth * period)), period=period)
        self.history.append((now, request))
        return request

    def initial_request(self, period_ns: int | None = None) -> BandwidthRequest:
        """Request used at adoption time (period hint is ignored: LFS has
        no period detector, it always uses its configured default)."""
        return self._request(0)

    def update_binary(self, saturated: bool, now: int) -> BandwidthRequest:
        """One activation given the binary saturation signal directly."""
        cfg = self.config
        if saturated:
            self.bandwidth *= 1.0 + cfg.eta_up
        else:
            self.bandwidth *= 1.0 - cfg.eta_down
        self.bandwidth = min(max(self.bandwidth, cfg.min_bandwidth), cfg.max_bandwidth)
        return self._request(now)

    def update(
        self,
        sensor_value: int,
        period_ns: int | None,
        now: int,
        *,
        exhaustions_total: int | None = None,
    ) -> BandwidthRequest:
        """Controller-style activation from the server's exhaustion counter.

        Signature-compatible with :meth:`repro.core.lfspp.LfsPlusPlus.update`
        modulo the sensor: LFS reads the *exhaustion counter* (its binary
        "did not receive enough computation" flag) as its sensor value,
        not the consumed time, and it ignores both the period estimate and
        the redundant ``exhaustions_total`` keyword.
        """
        count = sensor_value
        if self._last_exhaustions is None:
            self._last_exhaustions = count
            return self._request(now)
        saturated = count > self._last_exhaustions
        self._last_exhaustions = count
        return self.update_binary(saturated, now)
