"""The paper's contribution: black-box period inference + adaptive reservations.

- :mod:`.spectrum` — sparse Fourier transform of a kernel-event time
  series (§4.2–4.3, Eq. 2–4) with the iterative cost model of Eq. 3;
- :mod:`.peaks` — the peak-detection heuristic of §4.3.1 with the
  complexity model of Eq. 5;
- :mod:`.analyser` — :class:`PeriodAnalyser`, the first task-controller
  block of Figure 3;
- :mod:`.predictors` — prediction functions for LFS++, including the
  paper's quantile estimator;
- :mod:`.lfspp` / :mod:`.lfs` — the new feedback controller (§4.4) and
  the original Legacy Feedback Scheduler baseline [2];
- :mod:`.supervisor` — global bandwidth compression enforcing Eq. 1;
- :mod:`.controller` / :mod:`.runtime` — the task controller and the
  fully wired closed loop of Figure 3;
- :mod:`.events` — event-triggered activation for controller and
  supervisor (the extension beyond the paper's clocked loop).
"""

from repro.core.analyser import AnalyserConfig, PeriodAnalyser, PeriodEstimate
from repro.core.autocorr import IntervalDetectorConfig, IntervalEstimate, IntervalHistogramDetector
from repro.core.controller import TaskController, TaskControllerConfig
from repro.core.daemon import DaemonConfig, SelfTuningDaemon
from repro.core.events import EventDrivenLoop, EventTriggerConfig, SupervisorEventLoop, TriggerRecord
from repro.core.lfs import Lfs, LfsConfig
from repro.core.lfspp import LfsPlusPlus, LfsPlusPlusConfig
from repro.core.peaks import PeakConfig, PeakDetector, PeakResult
from repro.core.predictors import Ewma, MovingAverage, Predictor, QuantileEstimator
from repro.core.runtime import SelfTuningRuntime
from repro.core.smp import SmpSelfTuningRuntime
from repro.core.spectrum import Spectrum, SpectrumConfig, sparse_amplitude_spectrum
from repro.core.supervisor import Supervisor

__all__ = [
    "Spectrum",
    "SpectrumConfig",
    "sparse_amplitude_spectrum",
    "PeakConfig",
    "PeakDetector",
    "PeakResult",
    "PeriodAnalyser",
    "AnalyserConfig",
    "PeriodEstimate",
    "IntervalHistogramDetector",
    "IntervalDetectorConfig",
    "IntervalEstimate",
    "Predictor",
    "QuantileEstimator",
    "MovingAverage",
    "Ewma",
    "LfsPlusPlus",
    "LfsPlusPlusConfig",
    "Lfs",
    "LfsConfig",
    "Supervisor",
    "TaskController",
    "TaskControllerConfig",
    "EventTriggerConfig",
    "EventDrivenLoop",
    "SupervisorEventLoop",
    "TriggerRecord",
    "SelfTuningRuntime",
    "SmpSelfTuningRuntime",
    "SelfTuningDaemon",
    "DaemonConfig",
]
