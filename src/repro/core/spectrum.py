"""Sparse amplitude spectrum of an event time series (§4.2–4.3).

Each traced kernel event at time ``t_i`` is modelled as a Dirac delta, so
the signal's Fourier transform evaluated at angular frequency ``ω`` is
simply ``Σ_i e^{-jω t_i}`` — no sampling grid, no FFT.  The paper computes
the *amplitude* spectrum (Eq. 4)::

    |S(ω)| = | Σ_{i=1..N} e^{-jω t_i} |

on a frequency range ``[f_min, f_max]`` with resolution ``δf``.  The
computation is embarrassingly incremental: a new event adds one complex
exponential per frequency sample, which is why the paper prefers it over an
FFT whose sampling period would need to be nanoseconds ("the resulting
signal would be null most of the time").

Two interfaces are provided:

- :func:`sparse_amplitude_spectrum` — one-shot, vectorised over numpy;
- :class:`Spectrum` — incremental accumulator with exact event retirement
  (the transform is linear, so sliding the observation window means
  *subtracting* the contributions of expired events), plus the operation
  counter of Eq. 3 for the overhead studies of Figures 6–7.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sim.time import SEC


@dataclass(frozen=True)
class SpectrumConfig:
    """Frequency-domain sampling parameters.

    Defaults match the paper's experimental mid-range: spectrum computed
    between 1 Hz and 100 Hz with a 0.1 Hz step.
    """

    f_min: float = 1.0
    f_max: float = 100.0
    df: float = 0.1

    def __post_init__(self) -> None:
        if self.f_min < 0:
            raise ValueError(f"f_min must be >= 0, got {self.f_min}")
        if self.f_max <= self.f_min:
            raise ValueError(f"need f_max > f_min, got [{self.f_min}, {self.f_max}]")
        if self.df <= 0:
            raise ValueError(f"df must be positive, got {self.df}")

    def frequencies(self) -> np.ndarray:
        """The sampled frequency grid (Hz), inclusive of both ends."""
        n = int(round((self.f_max - self.f_min) / self.df)) + 1
        return self.f_min + self.df * np.arange(n)

    @property
    def n_samples(self) -> int:
        """Number of frequency samples F = (f_max - f_min)/δf + 1."""
        return int(round((self.f_max - self.f_min) / self.df)) + 1


def sparse_amplitude_spectrum(times_ns: np.ndarray, freqs_hz: np.ndarray) -> np.ndarray:
    """Amplitude spectrum ``|Σ e^{-j 2π f t_i}|`` of events at ``times_ns``.

    ``times_ns`` are integer nanoseconds; ``freqs_hz`` is the grid in Hz.
    Returns an array of the same length as ``freqs_hz``.  An empty event
    set yields all zeros.
    """
    times_ns = np.asarray(times_ns, dtype=np.float64)
    freqs_hz = np.asarray(freqs_hz, dtype=np.float64)
    if times_ns.size == 0:
        return np.zeros_like(freqs_hz)
    t_sec = times_ns / SEC
    # Chunk over frequencies to bound the (F x N) intermediate; real
    # cos/sin on the phase matrix beats complex exp by ~2x.
    out = np.empty_like(freqs_hz)
    chunk = max(1, int(4_000_000 / max(t_sec.size, 1)))
    for start in range(0, freqs_hz.size, chunk):
        f = freqs_hz[start : start + chunk]
        phase = (2.0 * np.pi) * np.outer(f, t_sec)
        re = np.cos(phase).sum(axis=1)
        im = np.sin(phase).sum(axis=1)
        out[start : start + chunk] = np.hypot(re, im)
    return out


class Spectrum:
    """Incremental sparse spectrum over a sliding observation window.

    Events enter with :meth:`add_event`; :meth:`slide_to` retires events
    older than the configured horizon by subtracting their contribution
    (exact, by linearity of the transform).  :attr:`operations` counts the
    complex exponentiations performed so far — the quantity Eq. 3 bounds.
    """

    def __init__(self, config: SpectrumConfig | None = None, *, horizon_ns: int | None = None) -> None:
        self.config = config or SpectrumConfig()
        self.freqs = self.config.frequencies()
        self._omega = 2.0 * np.pi * self.freqs
        #: ``-jω`` precomputed: the batched fold evaluates the same
        #: ``exp((-1j·ω)·t)`` product the per-event path does
        self._jomega = -1.0j * self._omega
        self._acc = np.zeros(self.freqs.size, dtype=np.complex128)
        self._times: deque[int] = deque()
        self.horizon_ns = horizon_ns
        #: complex exponentiations performed (Eq. 3 accounting)
        self.operations = 0

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> list[int]:
        """Event timestamps currently inside the window (ns, sorted order
        of insertion)."""
        return list(self._times)

    def _contribution(self, t_ns: int) -> np.ndarray:
        self.operations += self.freqs.size
        return np.exp(-1.0j * self._omega * (t_ns / SEC))

    def add_event(self, t_ns: int) -> None:
        """Fold one event at ``t_ns`` into the accumulator."""
        self._times.append(t_ns)
        self._acc += self._contribution(t_ns)

    def _fold(self, times_ns: list[int], *, subtract: bool = False) -> None:
        """Fold (``subtract=False``) or retire a batch of events.

        Bit-identical to folding them one at a time through
        :meth:`add_event`:

        - each ``t/SEC`` is a Python int/int true division, exactly as the
          per-event path computes it;
        - the per-element product ``(-1j·ω)·t`` commutes bitwise with the
          per-event ``(-1j·ω·t)`` evaluation (IEEE multiplication);
        - rows are accumulated *in event order* with in-place vector adds
          — ``np.sum``'s pairwise summation would round differently.

        The win is one ``np.exp`` over an ``(n, F)`` matrix instead of
        ``n`` calls over length-``F`` vectors.
        """
        n = len(times_ns)
        if n == 0:
            return
        freqs_size = self.freqs.size
        self.operations += freqs_size * n
        jomega = self._jomega
        acc = self._acc
        # chunk the batch so the (chunk x F) complex intermediate stays
        # cache-resident — large chunks spill L2 and run *slower* than the
        # per-event path despite the batched exp
        chunk = max(1, 16_384 // max(freqs_size, 1))
        for start in range(0, n, chunk):
            t_sec = np.array(
                [t / SEC for t in times_ns[start : start + chunk]], dtype=np.float64
            )
            contribs = np.exp(t_sec[:, None] * jomega[None, :])
            if subtract:
                for row in contribs:
                    acc -= row
            else:
                for row in contribs:
                    acc += row

    def add_events(self, times_ns) -> None:
        """Fold a batch of events (any iterable of int ns) in one sweep."""
        batch = [int(t) for t in times_ns]
        if not batch:
            return
        self._times.extend(batch)
        self._fold(batch)

    def slide_to(self, now_ns: int) -> int:
        """Retire events older than ``now - horizon``; return the count.

        No-op when the spectrum was created without a horizon.
        """
        if self.horizon_ns is None:
            return 0
        cutoff = now_ns - self.horizon_ns
        times = self._times
        retired = 0
        for t in times:
            if t < cutoff:
                retired += 1
            else:
                break
        if retired == 0:
            return 0
        popleft = times.popleft
        batch = [popleft() for _ in range(retired)]
        self._fold(batch, subtract=True)
        return retired

    def reset(self) -> None:
        """Drop all events and zero the accumulator."""
        self._times.clear()
        self._acc[:] = 0
        # operations counter intentionally preserved (cumulative cost)

    def amplitude(self) -> np.ndarray:
        """Current amplitude spectrum |S(f)| over the grid."""
        if not self._times:
            return np.zeros(self.freqs.size)
        # Recompute from the accumulator; subtraction error is negligible
        # for the window sizes used here (<= a few thousand events).
        return np.abs(self._acc)

    def normalized_amplitude(self) -> np.ndarray:
        """Amplitude spectrum scaled so its maximum is 1 (Figure 10)."""
        amp = self.amplitude()
        peak = amp.max() if amp.size else 0.0
        return amp / peak if peak > 0 else amp


def expected_operations(config: SpectrumConfig, n_events: int) -> int:
    """The Eq. 3 operation count ``O = (f_max - f_min)/δf · N``.

    (The paper writes N as ``H/P · K``: events per period times periods in
    the horizon; callers that know those factors can pass their product.)
    """
    return config.n_samples * n_events


def replicate_series(times_ns: np.ndarray, cycle_len_ns: int, cycles: int) -> np.ndarray:
    """Stitch ``cycles`` extra repetitions of one recorded cycle of event
    times onto the original series, integer-exactly.

    This is the spectrum-input counterpart of the fast-forward
    extrapolation in :mod:`repro.sim.cycles`: when a schedule cycle of
    length ``cycle_len_ns`` repeats ``cycles`` more times, the syscall (or
    label) timestamp series of the skipped span is the recorded cycle
    shifted by ``k * cycle_len_ns``.  All arithmetic stays in ``int64`` —
    a float round-trip could move an event by a nanosecond and change a
    digest.

    >>> import numpy as np
    >>> replicate_series(np.array([10, 30], dtype=np.int64), 100, 2)
    array([ 10,  30, 110, 130, 210, 230])
    """
    if cycle_len_ns <= 0:
        raise ValueError(f"cycle_len_ns must be positive, got {cycle_len_ns}")
    if cycles < 0:
        raise ValueError(f"cycles must be non-negative, got {cycles}")
    base = np.asarray(times_ns, dtype=np.int64)
    if cycles == 0 or base.size == 0:
        return base.copy()
    parts = [base + np.int64(k * cycle_len_ns) for k in range(cycles + 1)]
    return np.concatenate(parts)
