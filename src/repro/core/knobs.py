"""Single source of truth for the controller knob ranges.

Every tunable parameter of the self-tuning stack — the LFS++ spread
factor ``x``, the quantile-predictor window ``N`` and quantile ``p``,
the controller sampling period ``S``, the CBS exhaustion policy and
boost — is described once here as a :class:`Knob`: its kind, its hard
validity range (what ``__init__`` validation accepts) and its default
*search* range (what :class:`repro.tune.space.ParamSpace` explores).

The constructors in :mod:`repro.core.predictors`,
:mod:`repro.core.lfspp` and :mod:`repro.core.controller` all validate
through :meth:`Knob.validate`, and ``repro.tune`` derives its default
parameter space from :data:`CONTROLLER_KNOBS` — so a range widened (or
tightened) here propagates to both the runtime checks and the optimiser
without a second edit site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.time import MS


@dataclass(frozen=True)
class Knob:
    """Range/validation metadata for one tunable parameter.

    ``lo``/``hi`` bound the *hard* validity range enforced at
    construction time (``None`` leaves that side unbounded;
    ``lo_open``/``hi_open`` exclude the endpoint).  ``tune_lo``/
    ``tune_hi`` bound the default *search* range the auto-tuner sweeps —
    always a subset of the validity range, usually much narrower.
    Categorical knobs enumerate ``choices`` instead.
    """

    name: str
    #: "float", "int" or "cat"
    kind: str
    lo: float | None = None
    hi: float | None = None
    #: exclude the lower / upper endpoint from the validity range
    lo_open: bool = False
    hi_open: bool = False
    #: accepted values for categorical knobs
    choices: tuple[str, ...] = ()
    default: Any = None
    #: default search range for the auto-tuner (floats/ints only)
    tune_lo: float | None = None
    tune_hi: float | None = None
    doc: str = ""

    def bounds_text(self) -> str:
        """Human-readable validity range, e.g. ``(0, 1]`` or ``>= 1``."""
        if self.kind == "cat":
            return f"one of {list(self.choices)}"
        if self.lo is not None and self.hi is not None:
            left = "(" if self.lo_open else "["
            right = ")" if self.hi_open else "]"
            return f"in {left}{self.lo}, {self.hi}{right}"
        if self.lo is not None:
            return f"> {self.lo}" if self.lo_open else f">= {self.lo}"
        if self.hi is not None:
            return f"< {self.hi}" if self.hi_open else f"<= {self.hi}"
        return "unbounded"  # pragma: no cover - no such knob today

    def validate(self, value: Any, *, name: str | None = None) -> None:
        """Raise ``ValueError`` unless ``value`` lies in the validity range.

        ``name`` overrides the reported parameter name (constructors
        sometimes expose a knob under a different field name, e.g.
        ``predictor_window`` for the ``window`` knob).
        """
        label = name or self.name
        if self.kind == "cat":
            if value not in self.choices:
                raise ValueError(f"{label} must be {self.bounds_text()}, got {value!r}")
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{label} must be a number, got {value!r}")
        if self.kind == "int" and not isinstance(value, int):
            raise ValueError(f"{label} must be an integer, got {value!r}")
        bad = (
            (self.lo is not None and (value < self.lo or (self.lo_open and value == self.lo)))
            or (self.hi is not None and (value > self.hi or (self.hi_open and value == self.hi)))
        )
        if bad:
            raise ValueError(f"{label} must be {self.bounds_text()}, got {value}")


#: the controller parameter space, keyed by canonical knob name
CONTROLLER_KNOBS: dict[str, Knob] = {
    "spread": Knob(
        name="spread",
        kind="float",
        lo=0.0,
        default=0.15,
        tune_lo=0.0,
        tune_hi=0.5,
        doc="LFS++ spread factor x: robustness margin over the prediction",
    ),
    "window": Knob(
        name="window",
        kind="int",
        lo=1,
        default=16,
        tune_lo=4,
        tune_hi=64,
        doc="quantile-predictor sliding-window length N",
    ),
    "quantile": Knob(
        name="quantile",
        kind="float",
        lo=0.0,
        hi=1.0,
        lo_open=True,
        default=0.9375,
        tune_lo=0.5,
        tune_hi=1.0,
        doc="predictor quantile p = (N - j)/N; 1.0 takes the window maximum",
    ),
    "sampling_period": Knob(
        name="sampling_period",
        kind="int",
        lo=0,
        lo_open=True,
        default=100 * MS,
        tune_lo=40 * MS,
        tune_hi=400 * MS,
        doc="controller sampling period S, ns",
    ),
    "max_bandwidth": Knob(
        name="max_bandwidth",
        kind="float",
        lo=0.0,
        hi=1.0,
        lo_open=True,
        default=0.95,
        tune_lo=0.5,
        tune_hi=1.0,
        doc="cap on the requested bandwidth (the supervisor may curb further)",
    ),
    "boost": Knob(
        name="boost",
        kind="float",
        lo=0.0,
        default=0.25,
        tune_lo=0.0,
        tune_hi=0.5,
        doc="multiplicative budget boost applied on exhaustion bursts",
    ),
    "policy": Knob(
        name="policy",
        kind="cat",
        choices=("hard", "soft", "background"),
        default="hard",
        doc="CBS exhaustion policy",
    ),
    # -- event-triggered activation (repro.core.events) ----------------
    "burst_threshold": Knob(
        name="burst_threshold",
        kind="int",
        lo=1,
        default=3,
        tune_lo=1,
        tune_hi=10,
        doc="event trigger: K budget exhaustions within burst_window fire a recompute",
    ),
    "burst_window": Knob(
        name="burst_window",
        kind="int",
        lo=0,
        lo_open=True,
        default=250 * MS,
        tune_lo=50 * MS,
        tune_hi=1000 * MS,
        doc="event trigger: sliding window (ns) the exhaustion burst is counted over",
    ),
    "refractory": Knob(
        name="refractory",
        kind="int",
        lo=0,
        lo_open=True,
        default=50 * MS,
        tune_lo=10 * MS,
        tune_hi=200 * MS,
        doc="event trigger: minimum spacing (ns) between recomputes; events inside it defer to the boundary",
    ),
    "fallback_floor": Knob(
        name="fallback_floor",
        kind="int",
        lo=0,
        lo_open=True,
        default=400 * MS,
        tune_lo=100 * MS,
        tune_hi=1000 * MS,
        doc="event trigger: periodic fallback (ns) — a recompute always fires within this of the last one",
    ),
}


def validate_knob(name: str, value: Any, *, label: str | None = None) -> None:
    """Validate ``value`` against the registered knob ``name``."""
    CONTROLLER_KNOBS[name].validate(value, name=label)
