"""Peak-detection heuristic (§4.3.1).

Given the sampled amplitude spectrum, the heuristic recovers the
fundamental frequency of the event train:

1. find the local maxima of ``|S(f)|`` over the range (candidate peaks);
2. discard candidates with amplitude below ``α`` times the average
   spectrum amplitude;
3. if nothing survives, declare the signal **non-periodic**;
4. for each surviving candidate ``f_i``, accumulate the spectrum amplitude
   around at most ``k_max`` integer multiples ``h·f_i`` with a tolerance of
   ``ε`` (so slightly misplaced harmonics still vote for their
   fundamental);
5. pick the candidate with the largest harmonic sum ``Σ_i``.

Step 4 is what makes the heuristic robust: a true fundamental collects the
energy of *all* its harmonics, while a spurious secondary peak collects
little.  The ``k_max`` cap "prevents secondary peaks from outweighing the
main one due to their high number".

:attr:`PeakResult.elements_examined` reproduces the Eq. 5 cost metric
(number of spectrum samples the heuristic touches), used by Figure 8.

Known limitation (inherent to the paper's heuristic): if the scanned band
includes sub-multiples of the true fundamental, a spurious candidate near
``f0/k`` collects the *true* harmonic lines as its own multiples and can
out-vote the fundamental.  The practical cure — visible in the paper's own
experiments, whose mp3 scans start at 30 Hz for a 32.5 Hz fundamental — is
to choose ``f_min`` above half the lowest plausible rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PeakConfig:
    """Heuristic parameters; defaults follow the paper's experiments."""

    #: amplitude threshold as a fraction of the reference amplitude
    alpha: float = 0.2
    #: harmonic-matching tolerance, Hz
    epsilon: float = 0.5
    #: maximum number of integer multiples accumulated per candidate
    k_max: int = 10
    #: what α is relative to: ``"mean"`` (the paper's wording — "α times
    #: its average value") or ``"max"`` (a harder cut that prunes the
    #: noise-floor ripples and reproduces the several-fold overhead
    #: reduction of Figure 8)
    alpha_ref: str = "mean"

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")
        if self.k_max < 1:
            raise ValueError(f"k_max must be >= 1, got {self.k_max}")
        if self.alpha_ref not in ("mean", "max"):
            raise ValueError(f"alpha_ref must be 'mean' or 'max', got {self.alpha_ref}")


@dataclass
class PeakResult:
    """Outcome of one detection pass."""

    #: detected fundamental frequency (Hz), or None if non-periodic
    frequency: float | None
    #: all candidate peak frequencies that survived the α threshold
    candidates: list[float] = field(default_factory=list)
    #: harmonic sums Σ_i, parallel to :attr:`candidates`
    harmonic_sums: list[float] = field(default_factory=list)
    #: Eq. 5 cost: spectrum samples examined by the pass
    elements_examined: int = 0
    #: amplitude of the winning peak and the spectrum's mean amplitude
    peak_amplitude: float = 0.0
    mean_amplitude: float = 0.0

    @property
    def periodic(self) -> bool:
        """Whether a periodic structure was found."""
        return self.frequency is not None

    @property
    def peak_to_mean(self) -> float:
        """Prominence of the winning peak over the spectrum mean.

        A genuinely periodic train scores several times the mean; the
        ripples of a dense aperiodic train barely exceed it.  Useful as a
        confidence gate on top of the paper's heuristic (see
        :class:`repro.core.daemon.SelfTuningDaemon`).
        """
        return self.peak_amplitude / self.mean_amplitude if self.mean_amplitude > 0 else 0.0


def local_maxima(amplitude: np.ndarray) -> np.ndarray:
    """Indices of strict-rise / non-strict-fall local maxima.

    A plateau counts once, at its left edge.  Boundary samples qualify if
    they dominate their single neighbour.
    """
    amp = np.asarray(amplitude, dtype=np.float64)
    n = amp.size
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if n == 1:
        return np.array([0], dtype=np.intp)
    rises = np.empty(n, dtype=bool)
    rises[0] = True
    rises[1:] = amp[1:] > amp[:-1]
    falls = np.empty(n, dtype=bool)
    falls[-1] = True
    falls[:-1] = amp[:-1] >= amp[1:]
    return np.nonzero(rises & falls)[0]


class PeakDetector:
    """Runs the §4.3.1 heuristic on a sampled amplitude spectrum."""

    def __init__(self, config: PeakConfig | None = None) -> None:
        self.config = config or PeakConfig()

    def detect(self, freqs: np.ndarray, amplitude: np.ndarray) -> PeakResult:
        """Detect the fundamental frequency.

        ``freqs`` (Hz) and ``amplitude`` are parallel arrays (a uniform
        grid, as produced by :class:`repro.core.spectrum.Spectrum`).
        """
        freqs = np.asarray(freqs, dtype=np.float64)
        amp = np.asarray(amplitude, dtype=np.float64)
        if freqs.size != amp.size:
            raise ValueError(f"freqs ({freqs.size}) and amplitude ({amp.size}) disagree")
        if freqs.size == 0 or not np.any(amp > 0):
            return PeakResult(frequency=None)

        # steps 1-3: candidate peaks above the α threshold.  Band-edge
        # bins are not eligible: the DC lobe of any finite observation
        # decays *into* the band, so the first bin would otherwise always
        # qualify and nominate f_min for dense aperiodic event trains.
        examined = freqs.size  # the scan over all samples
        maxima = local_maxima(amp)
        reference = float(amp.max() if self.config.alpha_ref == "max" else amp.mean())
        threshold = self.config.alpha * reference
        last = freqs.size - 1
        candidates = [
            int(i)
            for i in maxima
            if 0 < i < last and amp[i] >= threshold and amp[i] > 0
        ]
        if not candidates:
            return PeakResult(frequency=None, elements_examined=examined)

        # steps 4-5: harmonic accumulation with tolerance ε, capped at k_max
        df = float(freqs[1] - freqs[0]) if freqs.size > 1 else 1.0
        f_max = float(freqs[-1])
        f_min = float(freqs[0])
        eps = self.config.epsilon
        sums: list[float] = []
        for idx in candidates:
            f_i = float(freqs[idx])
            total = 0.0
            harmonics = min(int(f_max / f_i), self.config.k_max)
            for h in range(1, harmonics + 1):
                lo = h * f_i - eps
                hi = h * f_i + eps
                i0 = max(0, int(np.ceil((lo - f_min) / df)))
                i1 = min(freqs.size - 1, int(np.floor((hi - f_min) / df)))
                if i1 >= i0:
                    total += float(amp[i0 : i1 + 1].sum())
                    examined += i1 - i0 + 1
            sums.append(total)

        best = int(np.argmax(sums))
        return PeakResult(
            frequency=float(freqs[candidates[best]]),
            candidates=[float(freqs[i]) for i in candidates],
            harmonic_sums=sums,
            elements_examined=examined,
            peak_amplitude=float(amp[candidates[best]]),
            mean_amplitude=float(amp.mean()),
        )


def expected_elements(
    f_min: float, f_max: float, df: float, candidate_freqs: list[float], epsilon: float, k_max: int = 10
) -> int:
    """The Eq. 5 bound on spectrum samples the heuristic examines.

    ``E = (f_max - f_min)/δf + Σ_i min((f_max - f_i)/f_i, k_max) · ε/δf``
    """
    base = int(round((f_max - f_min) / df))
    total = base
    for f_i in candidate_freqs:
        if f_i <= 0:
            continue
        n_harm = min((f_max - f_i) / f_i, float(k_max))
        total += int(max(0.0, n_harm) * (epsilon / df))
    return total
