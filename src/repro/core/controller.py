"""Per-task controller: period analyser + feedback law (Figure 3).

One :class:`TaskController` is associated with each CBS server.  At every
activation it

1. drains freshly traced events into its period analyser and re-estimates
   the application period (unless rate detection is disabled, as in the
   paper's §5.4 evaluation of the feedback in isolation),
2. samples the scheduler state (consumed CPU time for LFS++, the budget
   exhaustion counter for LFS),
3. runs the feedback law to produce a bandwidth request,
4. submits the request to the supervisor and actuates the granted
   parameters on the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Protocol

from repro.core.analyser import PeriodAnalyser
from repro.core.events import EventTriggerConfig
from repro.core.knobs import validate_knob
from repro.core.lfspp import BandwidthRequest
from repro.core.supervisor import Supervisor
from repro.sim.time import MS

#: accepted values of :attr:`TaskControllerConfig.trigger`
TRIGGER_MODES = ("periodic", "event")


class FeedbackLaw(Protocol):
    """What the controller needs from LFS / LFS++."""

    #: which scheduler variable the law consumes:
    #: ``"consumed"`` (ns of CPU) or ``"exhaustions"`` (saturation count)
    SENSOR: str

    def initial_request(self, period_ns: int | None = None) -> BandwidthRequest:
        """Request used at adoption time."""
        ...

    def update(
        self,
        sensor_value: int,
        period_ns: int | None,
        now: int,
        *,
        exhaustions_total: int | None = None,
    ) -> BandwidthRequest:
        """One activation of the feedback loop.

        ``exhaustions_total`` carries the server's budget-exhaustion
        counter for laws that exploit it (the LFS++ exhaustion boost);
        laws that do not may ignore it.
        """
        ...


@dataclass
class ServerSample:
    """Snapshot of the scheduler state variables for one server."""

    consumed: int
    exhaustions: int


@dataclass
class TaskControllerConfig:
    """Controller activation parameters.

    ``period_confirmations``/``period_tolerance`` implement a hysteresis on
    rate detection: the actuated reservation period only follows the
    analyser once the same frequency has been seen in that many
    consecutive analyses (within the relative tolerance).  Without it, the
    garbage estimates produced while the task is still starved (smeared
    syscall bursts — the same degradation Figure 12 quantifies) would be
    actuated immediately and corrupt the trace even further.
    """

    #: controller sampling period S, ns
    sampling_period: int = 100 * MS
    #: enable the period analyser (rate detection)
    use_period_estimate: bool = True
    #: consecutive consistent estimates required before actuating a change
    period_confirmations: int = 3
    #: relative tolerance for "consistent"
    period_tolerance: float = 0.08
    #: acceptable reservation-period range, ns
    period_bounds: tuple[int, int] = (5 * MS, 500 * MS)
    #: detector-dropout guard: after this many consecutive starved
    #: activations (analyser window below its ``min_events``) the
    #: controller stops trusting the feedback law and falls back to the
    #: last-good granted bandwidth, decayed geometrically.  None = off
    #: (the seed behaviour: a starved feedback law free-runs).
    dropout_after: int | None = None
    #: per-fallback-activation decay factor applied to the last-good bw
    dropout_decay: float = 0.9
    #: bandwidth floor the decay never crosses
    dropout_floor: float = 0.02
    #: activation mode: ``"periodic"`` (the paper's clocked loop, every
    #: ``sampling_period``) or ``"event"`` (recompute on exhaustion
    #: bursts / deadline misses / confidence drops, bounded by the
    #: refractory and fallback floor of :attr:`events` — see
    #: :mod:`repro.core.events`)
    trigger: str = "periodic"
    #: event-trigger parameters; None = :class:`EventTriggerConfig`
    #: defaults (only consulted when ``trigger == "event"``)
    events: EventTriggerConfig | None = None

    def __post_init__(self) -> None:
        validate_knob("sampling_period", self.sampling_period)
        if self.trigger not in TRIGGER_MODES:
            raise ValueError(
                f"trigger must be one of {list(TRIGGER_MODES)}, got {self.trigger!r}"
            )
        if self.period_confirmations < 1:
            raise ValueError("period_confirmations must be >= 1")
        lo, hi = self.period_bounds
        if not 0 < lo < hi:
            raise ValueError(f"invalid period_bounds {self.period_bounds}")
        if self.dropout_after is not None and self.dropout_after < 1:
            raise ValueError("dropout_after must be >= 1 (or None)")
        if not 0.0 < self.dropout_decay <= 1.0:
            raise ValueError("dropout_decay must be in (0, 1]")
        if self.dropout_floor < 0.0:
            raise ValueError("dropout_floor must be >= 0")


class TaskController:
    """Closed-loop controller for one adopted legacy task."""

    #: telemetry hub (:mod:`repro.obs`); None = disabled fast path.  One
    #: span per activation (covering the sampling window it analysed) plus
    #: the actuated-trajectory counters; strictly read-only.
    _obs = None

    def __init__(
        self,
        name: str,
        *,
        feedback: FeedbackLaw,
        analyser: PeriodAnalyser | None,
        supervisor: Supervisor,
        supervisor_key: int,
        sensor: Callable[[], ServerSample],
        actuate: Callable[[BandwidthRequest], None],
        drain: Callable[[int], None] | None = None,
        config: TaskControllerConfig | None = None,
    ) -> None:
        self.name = name
        self.feedback = feedback
        self.analyser = analyser
        self.supervisor = supervisor
        self.supervisor_key = supervisor_key
        self.sensor = sensor
        self.actuate = actuate
        self.drain = drain
        self.config = config or TaskControllerConfig()
        #: [(now, granted request)] — the actuated reservation over time
        self.granted_history: list[tuple[int, BandwidthRequest]] = []
        #: [(now, period estimate in ns or None)]
        self.period_history: list[tuple[int, int | None]] = []
        self.activations = 0
        #: period currently actuated (None until first confirmation)
        self._confirmed_period: int | None = None
        self._pending_period: int | None = None
        self._pending_count = 0
        #: virtual time of the previous activation (telemetry span start)
        self._last_activation: int | None = None
        #: most recent grant actuated from a healthy (non-fallback)
        #: activation — what the dropout guard falls back to
        self._last_good: BandwidthRequest | None = None
        #: consecutive starved activations (analyser below min_events)
        self._starved_streak = 0
        #: total fallback activations taken by the dropout guard
        self.fallbacks = 0

    def current_period_estimate(self) -> int | None:
        """Latest *confirmed* period estimate (ns), if any."""
        return self._confirmed_period

    def _consider_estimate(self, period_ns: int | None) -> None:
        """Hysteresis: confirm a new period after N consistent sightings."""
        cfg = self.config
        lo, hi = cfg.period_bounds
        if period_ns is None or not lo <= period_ns <= hi:
            self._pending_period = None
            self._pending_count = 0
            return
        if self._confirmed_period is not None:
            ref = self._confirmed_period
            if abs(period_ns - ref) <= cfg.period_tolerance * ref:
                # small drift around the confirmed value: track it
                self._confirmed_period = period_ns
                self._pending_period = None
                self._pending_count = 0
                return
        if (
            self._pending_period is not None
            and abs(period_ns - self._pending_period) <= cfg.period_tolerance * self._pending_period
        ):
            self._pending_count += 1
        else:
            self._pending_period = period_ns
            self._pending_count = 1
        if self._pending_count >= cfg.period_confirmations:
            self._confirmed_period = self._pending_period
            self._pending_period = None
            self._pending_count = 0

    def activate(self, now: int) -> BandwidthRequest:
        """One controller activation; returns the granted parameters."""
        self.activations += 1
        if self.drain is not None:
            self.drain(now)

        if self.config.use_period_estimate and self.analyser is not None:
            estimate = self.analyser.analyse(now)
            self._consider_estimate(estimate.period_ns if estimate is not None else None)
        period_ns = self._confirmed_period
        self.period_history.append((now, period_ns))

        cfg = self.config
        if cfg.dropout_after is not None and self.analyser is not None:
            if self.analyser.n_events < self.analyser.config.min_events:
                self._starved_streak += 1
            else:
                self._starved_streak = 0
            if self._starved_streak >= cfg.dropout_after and self._last_good is not None:
                return self._fallback_activation(now, period_ns)

        sample = self.sensor()
        value = sample.exhaustions if self.feedback.SENSOR == "exhaustions" else sample.consumed
        request = self.feedback.update(
            value, period_ns, now, exhaustions_total=sample.exhaustions
        )
        granted = self.supervisor.submit(self.supervisor_key, request)
        self.actuate(granted)
        self.granted_history.append((now, granted))
        if self._starved_streak == 0:
            # only a grant computed from a healthy sensor stream is worth
            # falling back to: law runs during the starved build-up to
            # ``dropout_after`` may already be walking off the cliff
            self._last_good = granted
        obs = self._obs
        if obs is not None:
            start = self._last_activation
            if start is None:
                start = max(now - self.config.sampling_period, 0)
            obs.controller_epoch(
                self.name,
                start,
                now,
                consumed=sample.consumed,
                exhaustions=sample.exhaustions,
                period_ns=period_ns,
                requested_bw=request.bandwidth,
                granted_bw=granted.bandwidth,
            )
        self._last_activation = now
        return granted

    def _fallback_activation(self, now: int, period_ns: int | None) -> BandwidthRequest:
        """Detector dropout: hold the last-good bandwidth, decaying it.

        The feedback law is *not* run (a starved sensor stream would walk
        its state off a cliff — the catastrophic mode the ``robustness``
        experiment demonstrates); instead the last healthy grant is
        resubmitted with its bandwidth decayed by ``dropout_decay`` per
        fallback activation, floored at ``dropout_floor``.  If the task
        is still running it keeps a usable (slowly shrinking) reservation
        until the detector recovers; if it is gone the bandwidth is
        released gradually instead of being held forever.
        """
        cfg = self.config
        last_good = self._last_good
        assert last_good is not None
        self.fallbacks += 1
        steps = self._starved_streak - cfg.dropout_after + 1
        bw = max(cfg.dropout_floor, last_good.bandwidth * cfg.dropout_decay**steps)
        period = last_good.period
        request = BandwidthRequest(budget=max(1, int(bw * period)), period=period)
        granted = self.supervisor.submit(self.supervisor_key, request)
        self.actuate(granted)
        self.granted_history.append((now, granted))
        obs = self._obs
        if obs is not None:
            sample = self.sensor()
            start = self._last_activation
            if start is None:
                start = max(now - cfg.sampling_period, 0)
            obs.controller_epoch(
                self.name,
                start,
                now,
                consumed=sample.consumed,
                exhaustions=sample.exhaustions,
                period_ns=period_ns,
                requested_bw=request.bandwidth,
                granted_bw=granted.bandwidth,
            )
        self._last_activation = now
        return granted
