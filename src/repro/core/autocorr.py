"""Time-domain period detection: the autocorrelation alternative.

The paper built its analyser on frequency-domain pitch extraction but
cites the broader literature ([11, 20]) that also contains *time-domain*
methods.  This module implements that alternative for comparison: the
autocorrelation of a Dirac event train is the histogram of pairwise event
intervals, so

1. histogram all pairwise intervals ``t_j − t_i`` up to ``max_lag`` with
   resolution ``bin``;
2. find the histogram's local maxima (candidate periods);
3. for each candidate ``τ``, accumulate the histogram around its integer
   multiples (``k·τ ± tolerance``) — a true period is supported by peaks
   at *all* its multiples, a spurious one is not;
4. pick the candidate with the best per-multiple support.

Cost is ``O(N·K)`` where ``K`` is the mean number of events within
``max_lag`` of each event — comparable to the sparse spectrum at the same
resolution.

Failure modes differ from the spectrum detector's, which is exactly why
the comparison (``abl-detector``) is interesting:

- sub-period structure (the mp3 player's 3-per-period ALSA writes) puts
  interval mass at ``P/3``, which step 4 must out-vote using the
  multiples' support;
- the spectrum's sub-*harmonic* ambiguity (a candidate at ``f0/k``
  collecting the true lines) has no time-domain counterpart: multiples of
  ``2P`` are also multiples of ``P``, and the per-multiple normalisation
  of step 4 breaks the tie toward the smallest supported period.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntervalDetectorConfig:
    """Time-domain detector parameters."""

    #: smallest period considered, ns
    min_period: int = 10_000_000
    #: largest period considered (also the pairwise-interval horizon), ns
    max_period: int = 100_000_000
    #: histogram bin width, ns
    bin: int = 500_000
    #: multiple-matching tolerance, ns
    tolerance: int = 1_500_000
    #: multiples accumulated per candidate (the spectrum heuristic's k_max)
    k_max: int = 8
    #: candidates must exceed this fraction of the tallest histogram peak
    alpha: float = 0.2
    #: octave-error guard (McLeod & Wyvill's trick): pick the *smallest*
    #: candidate whose support is within this fraction of the best —
    #: multiples of the true period are equally well supported, so raw
    #: argmax would often return 2P or 3P
    octave_tolerance: float = 0.1

    def __post_init__(self) -> None:
        if not 0 < self.min_period < self.max_period:
            raise ValueError("need 0 < min_period < max_period")
        if self.bin <= 0 or self.tolerance < 0:
            raise ValueError("bin must be positive and tolerance >= 0")
        if self.k_max < 1:
            raise ValueError("k_max must be >= 1")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if not 0.0 <= self.octave_tolerance < 1.0:
            raise ValueError("octave_tolerance must be in [0, 1)")


@dataclass
class IntervalEstimate:
    """Outcome of one time-domain detection pass."""

    period_ns: int | None
    candidates: list[int]
    support: list[float]
    #: pairwise intervals examined (the cost metric)
    pairs_examined: int = 0

    @property
    def frequency(self) -> float | None:
        """Detected rate in Hz, if any."""
        return 1e9 / self.period_ns if self.period_ns else None


class IntervalHistogramDetector:
    """Autocorrelation-style period detection over event timestamps."""

    def __init__(self, config: IntervalDetectorConfig | None = None) -> None:
        self.config = config or IntervalDetectorConfig()

    def interval_histogram(self, times_ns) -> tuple[np.ndarray, np.ndarray, int]:
        """Histogram of pairwise intervals up to ``max_period``.

        Returns ``(lags, counts, pairs_examined)``; ``lags`` are bin
        centres in ns.
        """
        cfg = self.config
        times = np.sort(np.asarray(times_ns, dtype=np.int64))
        n = times.size
        n_bins = int(cfg.max_period // cfg.bin) + 1
        counts = np.zeros(n_bins, dtype=np.int64)
        lags = (np.arange(n_bins) * cfg.bin) + cfg.bin // 2
        if n < 2:
            return lags, counts, 0
        # windowed pairwise differences, vectorised by *neighbour rank*
        # instead of by anchor event: ``span[i]`` is how many successors of
        # event ``i`` fall within max_period (window inclusive, matching
        # the reference two-pointer loop), then one ``bincount`` per rank
        # d histograms every (i, i+d) pair at once.  Integer arithmetic
        # throughout, so counts and pair total are exactly those of the
        # per-event loop.
        hi = np.searchsorted(times, times + cfg.max_period, side="right")
        span = hi - np.arange(n) - 1
        pairs = int(span.sum())
        if pairs == 0:
            return lags, counts, 0
        kmax = int(span.max())
        for d in range(1, kmax + 1):
            sel = np.nonzero(span >= d)[0]
            if sel.size == 0:  # pragma: no cover - kmax bounds the loop
                break
            deltas = times[sel + d] - times[sel]
            counts += np.bincount(deltas // cfg.bin, minlength=n_bins)
        return lags, counts, pairs

    def detect(self, times_ns) -> IntervalEstimate:
        """Run the four-step detection on ``times_ns``."""
        cfg = self.config
        lags, counts, pairs = self.interval_histogram(times_ns)
        in_range = (lags >= cfg.min_period) & (lags <= cfg.max_period)
        if not np.any(in_range) or counts[in_range].max() == 0:
            return IntervalEstimate(None, [], [], pairs)

        # step 2: local maxima above the alpha threshold
        c = counts.astype(np.float64)
        rises = np.empty(c.size, dtype=bool)
        rises[0] = True
        rises[1:] = c[1:] > c[:-1]
        falls = np.empty(c.size, dtype=bool)
        falls[-1] = True
        falls[:-1] = c[:-1] >= c[1:]
        peak_mask = rises & falls & in_range
        threshold = cfg.alpha * c[in_range].max()
        raw = np.nonzero(peak_mask & (c >= threshold))[0]
        if raw.size == 0:
            return IntervalEstimate(None, [], [], pairs)
        # refine each candidate with the centroid of its peak: the raw
        # bin centre is off by up to bin/2, an error that multiplies by k
        # in the support windows and would punish true periods
        candidates = []
        for i in raw:
            lo, hi_b = max(0, i - 2), min(c.size - 1, i + 2)
            window = c[lo : hi_b + 1]
            mass = window.sum()
            centroid = (
                float((lags[lo : hi_b + 1] * window).sum() / mass)
                if mass > 0
                else float(lags[i])
            )
            candidates.append(int(round(centroid)))

        # steps 3-4: per-multiple support
        supports: list[float] = []
        refined: list[int] = []
        half = cfg.tolerance
        for tau in candidates:
            k_limit = min(cfg.k_max, int(cfg.max_period // tau))
            if k_limit < 2:
                # a period is only credible when at least two of its
                # multiples are observable; this bounds the detectable
                # range to max_period/2 (the time-domain f_min analogue)
                supports.append(0.0)
                refined.append(tau)
                continue
            # iterative comb tracking: every matched multiple refines the
            # period estimate before the next multiple is predicted, so
            # the half-bin quantisation of the initial candidate cannot
            # accumulate into k * bin/2 of drift
            tau_est = float(tau)
            total = 0.0
            hits = 0
            for k in range(1, k_limit + 1):
                centre = k * tau_est
                lo = max(int((centre - half) // cfg.bin), 0)
                hi_b = min(int((centre + half) // cfg.bin), counts.size - 1)
                window = counts[lo : hi_b + 1]
                if window.size and window.max() > 0:
                    hits += 1
                    total += float(window.max())
                    # the k-th multiple locates the period k times more
                    # precisely than the first: track it
                    peak_pos = float(lags[lo + int(np.argmax(window))])
                    tau_est = peak_pos / k
            if hits < k_limit:
                # a true period is supported at *every* multiple
                supports.append(total / (k_limit * 2.0))
            else:
                supports.append(total / k_limit)
            refined.append(int(round(tau_est)))

        best_support = max(supports)
        if best_support <= 0:
            return IntervalEstimate(None, refined, supports, pairs)
        cutoff = (1.0 - cfg.octave_tolerance) * best_support
        period = min(t for t, s in zip(refined, supports, strict=True) if s >= cutoff)
        return IntervalEstimate(
            period_ns=period,
            candidates=refined,
            support=supports,
            pairs_examined=pairs,
        )
