"""The autonomous self-tuning daemon — lfs++ as a system service.

Everything else in :mod:`repro.core` adopts processes the caller names.
The paper's vision (and the authors' earlier workshop title, "The Wizard
of OS") is stronger: a daemon that watches the *whole system*, probes
unknown processes, and transparently adopts the ones that turn out to be
periodic — no operator in the loop at all.

:class:`SelfTuningDaemon` implements that loop on top of a
:class:`~repro.core.runtime.SelfTuningRuntime`:

1. every ``scan_period`` it looks for alive best-effort processes it has
   not seen before and starts tracing them;
2. after ``probe_duration`` of tracing it runs the period analyser on the
   collected events;
3. processes with a confirmed periodic structure are adopted (reservation
   created, controller attached); the rest are untraced and set aside,
   to be re-probed after ``retry_after`` (their behaviour might change).

Batch jobs (ffmpeg), the desktop mix and the daemon's own machinery are
thereby left alone, while any media-player-like process ends up under an
adaptive reservation a few seconds after it appears.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analyser import AnalyserConfig, PeriodAnalyser
from repro.core.controller import TaskControllerConfig
from repro.core.runtime import AdoptedTask, SelfTuningRuntime
from repro.sim.process import Process
from repro.sim.time import SEC
from repro.tracer.events import EventKind, TraceEvent


@dataclass
class DaemonConfig:
    """Scan/probe/adopt policy of the daemon."""

    #: how often the system is scanned for new processes, ns
    scan_period: int = 1 * SEC
    #: how long a candidate is traced before the periodicity verdict, ns
    probe_duration: int = 3 * SEC
    #: consecutive consistent detections required to adopt (on top of the
    #: controller's own runtime hysteresis)
    confirmations: int = 2
    #: relative tolerance for "consistent"
    tolerance: float = 0.08
    #: how long a non-periodic process rests before being re-probed, ns
    retry_after: int = 30 * SEC
    #: minimum prominence (winning peak / spectrum mean) to count a
    #: detection: dense aperiodic trains (batch jobs) produce spectral
    #: ripples that the paper's α threshold does not reject, but their
    #: prominence stays near 1-2 while real periodic trains score >> 3
    min_confidence: float = 3.0
    #: minimum blocking activity: the candidate must have slept at least
    #: this fraction of ``probe_duration / detected period`` times.
    #: A CPU-bound process *gated* by a periodic competitor carries that
    #: competitor's rhythm in its event spectrum, but it never blocks —
    #: a real periodic application sleeps every period.
    min_wake_ratio: float = 0.3

    def __post_init__(self) -> None:
        if self.scan_period <= 0 or self.probe_duration <= 0:
            raise ValueError("scan_period and probe_duration must be positive")
        if self.confirmations < 1:
            raise ValueError("confirmations must be >= 1")
        if self.min_confidence < 1.0:
            raise ValueError("min_confidence must be >= 1")


@dataclass
class _Probe:
    """Tracing state for one candidate process."""

    proc: Process
    started: int
    analyser: PeriodAnalyser
    #: the process's wake-up counter when the probe began
    wakes_at_start: int = 0
    detections: list[int] = field(default_factory=list)


class SelfTuningDaemon:
    """Scans, probes and adopts periodic processes autonomously."""

    #: telemetry hub (:mod:`repro.obs`); None = disabled fast path.  One
    #: span per probe (opened at trace start, closed with the verdict) plus
    #: an instant per adoption; strictly read-only.
    _obs = None

    def __init__(
        self,
        runtime: SelfTuningRuntime,
        *,
        config: DaemonConfig | None = None,
        analyser_config: AnalyserConfig | None = None,
        controller_config: TaskControllerConfig | None = None,
        exclude: set[int] | None = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or DaemonConfig()
        self.analyser_config = analyser_config
        self.controller_config = controller_config
        #: pids never to touch (infrastructure processes)
        self.exclude: set[int] = set(exclude or ())
        #: pid -> active probe
        self._probes: dict[int, _Probe] = {}
        #: pid -> earliest re-probe time for processes judged aperiodic
        self._rests: dict[int, int] = {}
        #: adoptions performed, in order
        self.adopted: list[AdoptedTask] = []
        #: pids probed and found aperiodic (diagnostics)
        self.rejected: list[int] = []
        self._timer = None
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin scanning (idempotent)."""
        if self._started:
            return
        self._started = True
        self._timer = self.runtime.kernel.every(self.config.scan_period, self._scan)

    def stop(self) -> None:
        """Stop scanning; active probes are abandoned."""
        if self._timer is not None:
            self._timer.cancel()
        for pid in list(self._probes):
            self._drop_probe(pid)
        self._started = False

    # ------------------------------------------------------------------
    # the scan loop
    # ------------------------------------------------------------------
    def _eligible(self, proc: Process, now: int) -> bool:
        if not proc.alive:
            return False
        if proc.pid in self.exclude or proc.pid in self._probes:
            return False
        if proc.pid in self.runtime.tasks:
            return False
        if self.runtime.scheduler.server_of(proc) is not None:
            return False  # already reserved (statically or otherwise)
        return self._rests.get(proc.pid, 0) <= now

    def _scan(self, now: int) -> None:
        # pull fresh events to every analyser sink (including probes')
        self.runtime.tracer.drain(now)
        for proc in list(self.runtime.kernel.processes.values()):
            if self._eligible(proc, now):
                self._start_probe(proc, now)
        adopted_this_round = False
        for pid in list(self._probes):
            probe = self._probes[pid]
            if not probe.proc.alive:
                self._drop_probe(pid)
                continue
            estimate = probe.analyser.analyse(now)
            if (
                estimate is not None
                and estimate.detail is not None
                and estimate.detail.peak_to_mean >= self.config.min_confidence
            ):
                probe.detections.append(estimate.period_ns)
            if (
                now - probe.started >= self.config.probe_duration
                and self._conclude(probe, now)
            ):
                adopted_this_round = True
        if adopted_this_round:
            # an adoption changes the scheduling topology: a best-effort
            # process observed *before* a competitor moved into its own
            # reservation may have inherited that competitor's rhythm
            # (CPU gating), so every in-flight observation is stale
            for pid in list(self._probes):
                probe = self._probes[pid]
                self._drop_probe(pid)
                self._start_probe(probe.proc, now)

    def _start_probe(self, proc: Process, now: int) -> None:
        analyser = PeriodAnalyser(self.analyser_config)
        pid = proc.pid

        def sink(batch: list[TraceEvent], when: int, _a=analyser) -> None:
            _a.add_batch(
                [e for e in batch if e.pid == pid and e.kind is EventKind.SYSCALL_ENTRY], when
            )

        self.runtime.tracer.add_sink(sink)
        self.runtime.tracer.trace_pid(pid)
        self._probes[pid] = _Probe(
            proc=proc, started=now, analyser=analyser, wakes_at_start=proc.sched_latency.n
        )
        self._probes[pid]._sink = sink  # type: ignore[attr-defined]
        obs = self._obs
        if obs is not None:
            self._probes[pid]._obs_span = obs.daemon_probe_started(proc, now)  # type: ignore[attr-defined]

    def _drop_probe(self, pid: int, verdict: str = "dropped") -> None:
        probe = self._probes.pop(pid, None)
        if probe is None:
            return
        self.runtime.tracer.untrace_pid(pid)
        sink = getattr(probe, "_sink", None)
        if sink is not None and sink in self.runtime.tracer._sinks:
            self.runtime.tracer._sinks.remove(sink)
        obs = self._obs
        span = getattr(probe, "_obs_span", None)
        if obs is not None and span is not None:
            obs.daemon_probe_ended(span, obs.now(), verdict)

    def _confirmed_period(self, detections: list[int]) -> int | None:
        need = self.config.confirmations
        if len(detections) < need:
            return None
        tail = detections[-need:]
        ref = tail[-1]
        if all(abs(d - ref) <= self.config.tolerance * ref for d in tail):
            return ref
        return None

    def _conclude(self, probe: _Probe, now: int) -> bool:
        """Adopt or reject a finished probe; returns True on adoption."""
        pid = probe.proc.pid
        period = self._confirmed_period(probe.detections)
        if period is not None:
            # gating check: did the process actually sleep at the rate a
            # periodic application would, or is its rhythm inherited from
            # a competitor through CPU gating?
            wakes = probe.proc.sched_latency.n - probe.wakes_at_start
            expected = (now - probe.started) / period
            if wakes < self.config.min_wake_ratio * expected:
                period = None
        self._drop_probe(pid, verdict="periodic" if period is not None else "aperiodic")
        if period is None:
            self.rejected.append(pid)
            self._rests[pid] = now + self.config.retry_after
            return False
        task = self.runtime.adopt(
            probe.proc,
            controller_config=self.controller_config,
            analyser_config=self.analyser_config,
            period_hint=period,
        )
        self.adopted.append(task)
        obs = self._obs
        if obs is not None:
            obs.daemon_adopted(probe.proc, period, now)
        return True
