"""Prediction functions P(·) for the LFS++ controller (§4.4).

The controller translates the measured per-period computation time into
the budget for the next sampling interval through a predictor.  The paper
proposes a **quantile estimator** over the last ``N`` observations, with
the quantile ``p`` expressed as ``(N - j)/N`` so extraction is a simple
order statistic: ``p = 1.0`` takes the window maximum, ``p = 0.9375`` with
``N = 16`` the second maximum, and so on.  Max, moving-average and EWMA
predictors are provided for the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, runtime_checkable

from repro.core.knobs import validate_knob


@runtime_checkable
class Predictor(Protocol):
    """Observe a sample, predict the next value."""

    def observe(self, value: float) -> None:
        """Feed one measured computation time."""
        ...

    def predict(self) -> float:
        """Expected computation time for the next interval (0 if empty)."""
        ...


class QuantileEstimator:
    """Order-statistic predictor over a sliding window (the paper's P)."""

    def __init__(self, window: int = 16, quantile: float = 0.9375) -> None:
        validate_knob("window", window)
        validate_knob("quantile", quantile)
        self.window = window
        self.quantile = quantile
        self._samples: deque[float] = deque(maxlen=window)

    @property
    def rank(self) -> int:
        """How many samples from the top the estimate sits (0 = max).

        With ``p = (N - j)/N`` the estimate is the ``(j+1)``-th largest of
        the current window (scaled when the window is not yet full).
        """
        n = len(self._samples)
        if n == 0:
            return 0
        # scale the rank to the *current* fill so a warming-up window
        # stays conservative (takes the max) instead of the minimum;
        # clamp both ends: a degenerate quantile (1e-9) makes
        # (1 - p) * n round to n itself, and float noise near p = 1.0
        # could push the product fractionally below zero
        j = int((1.0 - self.quantile) * n)
        return min(max(j, 0), n - 1)

    def observe(self, value: float) -> None:
        self._samples.append(float(value))

    def predict(self) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples, reverse=True)
        return ordered[self.rank]

    def reset(self) -> None:
        """Forget all samples."""
        self._samples.clear()


class MovingAverage:
    """Arithmetic mean over a sliding window."""

    def __init__(self, window: int = 16) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        self._samples.append(float(value))

    def predict(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)


class Ewma:
    """Exponentially weighted moving average, optionally tracking peaks.

    ``bias_up`` > 0 reacts faster to increases than decreases — a cheap
    way to approximate the quantile estimator's conservatism.
    """

    def __init__(self, alpha: float = 0.25, bias_up: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if bias_up < 0:
            raise ValueError(f"bias_up must be >= 0, got {bias_up}")
        self.alpha = alpha
        self.bias_up = bias_up
        self._value: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        if self._value is None:
            self._value = value
            return
        alpha = self.alpha
        if value > self._value and self.bias_up > 0:
            alpha = min(1.0, alpha * (1.0 + self.bias_up))
        self._value += alpha * (value - self._value)

    def predict(self) -> float:
        return self._value if self._value is not None else 0.0
