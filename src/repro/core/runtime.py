"""The fully wired self-tuning runtime (the architecture of Figure 3).

:class:`SelfTuningRuntime` owns the substrate — kernel, CBS scheduler,
qtrace tracer — plus the supervisor, and exposes :meth:`adopt` to bring an
unmodified legacy process under adaptive reservation control:

- a dedicated CBS server is created from the feedback law's initial
  request (granted through the supervisor),
- the process's system calls are traced and fed to a per-task period
  analyser,
- a periodic task controller closes the loop, re-tuning ``(Q, T)``.

This is the programmatic equivalent of running the paper's ``lfs++`` tool
against a pid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.core.analyser import AnalyserConfig, PeriodAnalyser
from repro.core.controller import FeedbackLaw, ServerSample, TaskController, TaskControllerConfig
from repro.core.lfspp import BandwidthRequest, LfsPlusPlus
from repro.core.supervisor import Supervisor
from repro.sched.cbs import CbsScheduler, Server, ServerParams
from repro.sim.kernel import Kernel, KernelConfig
from repro.sim.process import Process
from repro.sim.syscalls import SyscallNr
from repro.tracer.events import EventKind, TraceEvent
from repro.tracer.qtrace import QTraceConfig, QTracer


@dataclass
class AdoptedTask:
    """Everything the runtime tracks for one adopted process."""

    proc: Process
    server: Server
    controller: TaskController
    analyser: PeriodAnalyser | None
    timer: object = field(repr=False, default=None)


class SelfTuningRuntime:
    """Kernel + tracer + supervisor + per-task controllers, in one box."""

    #: telemetry hub (:mod:`repro.obs`); set by
    #: :func:`repro.obs.instrument.instrument_runtime` so controllers
    #: created by later ``adopt()`` calls inherit the hub
    _obs = None

    def __init__(
        self,
        *,
        u_lub: float = 0.95,
        kernel_config: KernelConfig | None = None,
        tracer_config: QTraceConfig | None = None,
        reservation_policy: str = "hard",
        scheduler: CbsScheduler | None = None,
        kernel: Kernel | None = None,
        n_cpus: int = 1,
    ) -> None:
        """Build the closed-loop runtime.

        By default this is the paper's uniprocessor stack (CBS on EDF on
        one CPU).  Pass ``n_cpus > 1`` for a globally scheduled multicore
        (gEDF over CBS servers on a :class:`MultiCoreKernel`) — with
        ``u_lub`` interpreted per CPU, i.e. the supervisor admits up to
        ``n_cpus * u_lub`` of total bandwidth.  Or inject a custom
        ``scheduler``/``kernel`` pair entirely (the scheduler must speak
        the :class:`repro.sched.cbs.CbsScheduler` server API; when a
        custom ``kernel`` is given it must already wrap that scheduler).
        """
        if kernel is not None and scheduler is None:
            raise ValueError("a custom kernel requires the matching scheduler")
        if scheduler is None:
            if n_cpus > 1:
                from repro.sched.gedf import GlobalCbsScheduler

                scheduler = GlobalCbsScheduler()
            else:
                scheduler = CbsScheduler()
        if kernel is None:
            if n_cpus > 1:
                from repro.sim.multicore import MultiCoreKernel

                kernel = MultiCoreKernel(scheduler, n_cpus, kernel_config)  # type: ignore[arg-type]
            else:
                kernel = Kernel(scheduler, kernel_config)
        self.scheduler = scheduler
        self.kernel = kernel
        self.tracer = QTracer(tracer_config)
        self.kernel.add_tracer(self.tracer)
        self.supervisor = Supervisor(u_lub, capacity=max(n_cpus, 1))
        self.n_cpus = n_cpus
        self.reservation_policy = reservation_policy
        self.tasks: dict[int, AdoptedTask] = {}

    # ------------------------------------------------------------------
    # workload plumbing
    # ------------------------------------------------------------------
    def spawn(self, name: str, program, *, at: int | None = None) -> Process:
        """Spawn a process in the underlying kernel (best-effort class)."""
        return self.kernel.spawn(name, program, at=at)

    def adopt(
        self,
        proc: Process,
        *,
        feedback: FeedbackLaw | None = None,
        controller_config: TaskControllerConfig | None = None,
        analyser_config: AnalyserConfig | None = None,
        traced_syscalls: Iterable[SyscallNr] | None = None,
        u_min: float = 0.0,
        weight: float = 1.0,
        period_hint: int | None = None,
    ) -> AdoptedTask:
        """Put ``proc`` under adaptive reservation control.

        Parameters mirror the knobs of the ``lfs++`` tool: which feedback
        law, the controller sampling period, the analyser's frequency grid
        and horizon, an optional syscall filter, and the supervisor share
        (``u_min``/``weight``).  ``period_hint`` seeds the reservation
        period before the first spectrum result.
        """
        if proc.pid in self.tasks:
            raise ValueError(f"pid {proc.pid} already adopted")
        feedback = feedback if feedback is not None else LfsPlusPlus()
        controller_config = controller_config or TaskControllerConfig()

        key = self.supervisor.register(u_min=u_min, weight=weight)
        initial = self.supervisor.submit(key, feedback.initial_request(period_hint))
        server = self.scheduler.create_server(
            ServerParams(
                budget=initial.budget, period=initial.period, policy=self.reservation_policy
            ),
            name=f"srv-{proc.name}",
        )
        self.scheduler.attach(proc, server)

        analyser: PeriodAnalyser | None = None
        if controller_config.use_period_estimate:
            analyser = PeriodAnalyser(analyser_config)
            pid = proc.pid

            def sink(batch: list[TraceEvent], now: int, _a=analyser) -> None:
                # the ring is shared, so any overwrite may have eaten this
                # task's events — surface the loss to the anomaly counters
                if self.tracer.last_overrun:
                    _a.note_overrun(self.tracer.last_overrun)
                _a.add_batch(
                    [e for e in batch if e.pid == pid and e.kind is EventKind.SYSCALL_ENTRY],
                    now,
                )

            self.tracer.add_sink(sink)
            self.tracer.trace_pid(proc.pid)
            if traced_syscalls is not None:
                self.tracer.set_syscall_filter(traced_syscalls)

        def sensor(_s=server) -> ServerSample:
            return ServerSample(consumed=_s.consumed, exhaustions=_s.exhaustions)

        def actuate(granted: BandwidthRequest, _s=server) -> None:
            self.scheduler.set_params(
                _s,
                ServerParams(
                    budget=granted.budget,
                    period=granted.period,
                    policy=self.reservation_policy,
                ),
            )

        controller = TaskController(
            name=proc.name,
            feedback=feedback,
            analyser=analyser,
            supervisor=self.supervisor,
            supervisor_key=key,
            sensor=sensor,
            actuate=actuate,
            drain=(lambda now: self.tracer.drain(now)),
            config=controller_config,
        )
        if self._obs is not None:
            controller._obs = self._obs
        timer = self._activation_source(controller, controller_config, server, (proc.pid,))
        task = AdoptedTask(proc=proc, server=server, controller=controller, analyser=analyser, timer=timer)
        self.tasks[proc.pid] = task
        return task

    def _activation_source(
        self,
        controller: TaskController,
        config: TaskControllerConfig,
        server: Server,
        pids: Iterable[int],
    ) -> object:
        """Arm what drives ``controller.activate``: a periodic kernel
        timer (the paper's clocked loop) or, with ``trigger="event"``, an
        :class:`~repro.core.events.EventDrivenLoop` listening to the
        server's exhaustion bursts and the pids' deadline misses."""
        if config.trigger == "event":
            from repro.core.events import EventDrivenLoop

            loop = EventDrivenLoop(
                self.kernel,
                controller,
                config.events,
                server=server,
                pids=frozenset(pids),
            )
            if self._obs is not None:
                loop._obs = self._obs
            loop.start()
            return loop
        return self.kernel.every(config.sampling_period, controller.activate)

    def adopt_group(
        self,
        procs: list[Process],
        *,
        name: str = "",
        feedback: FeedbackLaw | None = None,
        controller_config: TaskControllerConfig | None = None,
        analyser_config: AnalyserConfig | None = None,
        u_min: float = 0.0,
        weight: float = 1.0,
        period_hint: int | None = None,
    ) -> AdoptedTask:
        """Adopt a *multi-threaded* application: one reservation, many pids.

        All processes share one CBS server (FIFO inside, as in §3.2's
        multi-task reservation discussion); the analyser consumes the
        merged event train of every thread, so the estimated period is the
        group's dominant rate; the feedback law sees the server's
        aggregate consumption.  Expect the §3.2/Figure 2 economics: a
        shared reservation needs more bandwidth than dedicated per-thread
        servers would.

        Returns one :class:`AdoptedTask` whose ``proc`` is the first
        member (the controller governs the whole group).
        """
        if not procs:
            raise ValueError("adopt_group needs at least one process")
        for proc in procs:
            if proc.pid in self.tasks:
                raise ValueError(f"pid {proc.pid} already adopted")
        feedback = feedback if feedback is not None else LfsPlusPlus()
        controller_config = controller_config or TaskControllerConfig()

        key = self.supervisor.register(u_min=u_min, weight=weight)
        initial = self.supervisor.submit(key, feedback.initial_request(period_hint))
        server = self.scheduler.create_server(
            ServerParams(
                budget=initial.budget, period=initial.period, policy=self.reservation_policy
            ),
            name=name or f"srv-group-{procs[0].name}",
        )
        for proc in procs:
            self.scheduler.attach(proc, server)

        analyser: PeriodAnalyser | None = None
        if controller_config.use_period_estimate:
            analyser = PeriodAnalyser(analyser_config)
            pids = {proc.pid for proc in procs}

            def sink(batch: list[TraceEvent], now: int, _a=analyser) -> None:
                if self.tracer.last_overrun:
                    _a.note_overrun(self.tracer.last_overrun)
                _a.add_batch(
                    [e for e in batch if e.pid in pids and e.kind is EventKind.SYSCALL_ENTRY],
                    now,
                )

            self.tracer.add_sink(sink)
            for proc in procs:
                self.tracer.trace_pid(proc.pid)

        def sensor(_s=server) -> ServerSample:
            return ServerSample(consumed=_s.consumed, exhaustions=_s.exhaustions)

        def actuate(granted: BandwidthRequest, _s=server) -> None:
            self.scheduler.set_params(
                _s,
                ServerParams(
                    budget=granted.budget,
                    period=granted.period,
                    policy=self.reservation_policy,
                ),
            )

        controller = TaskController(
            name=name or f"group-{procs[0].name}",
            feedback=feedback,
            analyser=analyser,
            supervisor=self.supervisor,
            supervisor_key=key,
            sensor=sensor,
            actuate=actuate,
            drain=(lambda now: self.tracer.drain(now)),
            config=controller_config,
        )
        if self._obs is not None:
            controller._obs = self._obs
        timer = self._activation_source(
            controller, controller_config, server, (p.pid for p in procs)
        )
        task = AdoptedTask(
            proc=procs[0], server=server, controller=controller, analyser=analyser, timer=timer
        )
        for proc in procs:
            self.tasks[proc.pid] = task
        return task

    def add_static_reservation(self, proc: Process, budget: int, period: int) -> Server:
        """Attach ``proc`` to a fixed (non-adaptive) reservation.

        Used for the synthetic background real-time load of Table 2 /
        Table 3, whose parameters the experimenter fixes by hand.  The
        reservation is admitted through the supervisor like any other, so
        global compression (Eq. 1) applies when the system saturates.
        """
        server = self.scheduler.create_server(
            ServerParams(budget=budget, period=period, policy=self.reservation_policy),
            name=f"static-{proc.name}",
        )
        self.scheduler.attach(proc, server)

        def actuate(granted: BandwidthRequest, _s=server) -> None:
            self.scheduler.set_params(
                _s,
                ServerParams(
                    budget=granted.budget, period=granted.period, policy=self.reservation_policy
                ),
            )

        # static reservations are guaranteed in full: compression must not
        # shrink them (their parameters were fixed by the experimenter),
        # so their bandwidth is registered as the guaranteed minimum
        key = self.supervisor.register(u_min=budget / period, actuate=actuate)
        granted = self.supervisor.submit(key, BandwidthRequest(budget=budget, period=period))
        actuate(granted)
        return server

    def run(self, until: int) -> None:
        """Advance the simulation to absolute time ``until`` (ns)."""
        self.kernel.run(until)
