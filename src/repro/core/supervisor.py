"""The supervisor: global schedulability enforcement (Eq. 1).

Task controllers *request* reservation parameters; the supervisor *grants*
them, compressing the requests when their cumulative bandwidth would
exceed the schedulability bound ``Σ Q_i/T_i ≤ U_lub``.  Compression is
proportional above per-task guaranteed minimums, after the AQuoSA
supervisor described in [23]:

- every registered task may declare a guaranteed minimum bandwidth
  ``u_min`` (granted unconditionally as long as the minimums themselves
  fit) and a weight;
- if ``Σ B_req ≤ U_lub`` all requests are granted in full;
- otherwise each task receives ``u_min_i`` plus a weighted, proportional
  share of the leftover: the *excess* ``B_req_i − u_min_i`` is scaled by a
  common factor so the total lands exactly on ``U_lub``.
"""

from __future__ import annotations

from dataclasses import dataclass

from collections.abc import Callable

from repro.core.lfspp import BandwidthRequest


@dataclass
class _Registration:
    key: int
    u_min: float
    weight: float
    granted: BandwidthRequest | None = None
    requested: BandwidthRequest | None = None
    #: invoked whenever this task's grant changes because of *another*
    #: task's request (the submitting task gets its grant returned)
    actuate: Callable[[BandwidthRequest], None] | None = None


class Supervisor:
    """Bandwidth admission and compression.

    ``capacity`` scales the bound for multiprocessor systems: the grants
    satisfy ``Σ Q_i/T_i ≤ u_lub · capacity`` (the SCHED_DEADLINE-style
    global admission rule when ``capacity`` is the CPU count).
    """

    #: telemetry hub (:mod:`repro.obs`); None = disabled fast path.  The
    #: hub stamps supervisor gauges with its own kernel clock (the
    #: supervisor itself stays clock-free); strictly read-only.
    _obs = None

    #: optional observer called as ``trigger_hook(signal)`` with signal
    #: ``"compression"`` (a recompute granted less than requested) or
    #: ``"departure"`` (an unregister freed bandwidth); installed by
    #: :class:`repro.core.events.SupervisorEventLoop`.  None = disabled
    #: fast path.  The hook may post calendar events but must not call
    #: back into the supervisor synchronously.
    trigger_hook = None

    def __init__(self, u_lub: float = 0.95, *, capacity: int = 1) -> None:
        if not 0.0 < u_lub <= 1.0:
            raise ValueError(f"u_lub must be in (0, 1], got {u_lub}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.u_lub = u_lub * capacity
        self._tasks: dict[int, _Registration] = {}
        self._next_key = 1
        #: cumulative count of grants the starvation watchdog repaired
        self.watchdog_repairs = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        *,
        u_min: float = 0.0,
        weight: float = 1.0,
        actuate: Callable[[BandwidthRequest], None] | None = None,
    ) -> int:
        """Register a task controller; returns its key.

        ``actuate`` (optional) is invoked when this task's grant shrinks
        or grows as a side effect of another task's request — that is how
        compression reaches reservations whose own controller is idle.

        Raises :class:`ValueError` if the guaranteed minimums would no
        longer fit in ``U_lub`` (admission control).
        """
        if u_min < 0 or weight <= 0:
            raise ValueError("u_min must be >= 0 and weight > 0")
        if sum(r.u_min for r in self._tasks.values()) + u_min > self.u_lub:
            raise ValueError(
                f"guaranteed minimums would exceed U_lub={self.u_lub}: "
                f"cannot admit u_min={u_min}"
            )
        key = self._next_key
        self._next_key += 1
        self._tasks[key] = _Registration(key=key, u_min=u_min, weight=weight, actuate=actuate)
        return key

    def unregister(self, key: int) -> None:
        """Remove a task controller (frees its bandwidth)."""
        if self._tasks.pop(key, None) is not None:
            hook = self.trigger_hook
            if hook is not None:
                hook("departure")

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def submit(self, key: int, request: BandwidthRequest) -> BandwidthRequest:
        """Submit ``request`` for task ``key``; returns the granted pair.

        Other tasks' grants may shrink as a side effect (their controllers
        pick the new value up at their next activation through
        :meth:`granted`).
        """
        if key not in self._tasks:
            raise KeyError(f"unknown supervisor key {key}")
        self._tasks[key].requested = request
        self._recompute()
        granted = self._tasks[key].granted
        assert granted is not None
        return granted

    def granted(self, key: int) -> BandwidthRequest | None:
        """Most recent grant for task ``key`` (None before first submit)."""
        return self._tasks[key].granted

    # ------------------------------------------------------------------
    # starvation watchdog
    # ------------------------------------------------------------------
    def watchdog(self, now: int | None = None) -> int:
        """Repair starved grants; returns the number of tasks repaired.

        Two failure modes accumulate between submits (grants only move
        when some controller submits):

        1. a task's grant was compressed below its guaranteed ``u_min``
           by a saturation episode and its own controller has gone quiet
           (detector dropout), so nothing ever lifts it back;
        2. departed tasks freed bandwidth (:meth:`unregister` does not
           recompute) and the survivors are still carrying compressed
           grants although everything now fits.

        The watchdog restores ``u_min`` floors and re-runs Eq. 1 when the
        books show stale compression.  A task already granted its floor
        (or requesting above it) is untouched, so running the watchdog on
        a healthy system changes nothing.
        """
        del now  # kernel-timer signature compatibility; Eq. 1 is clock-free
        active = [r for r in self._tasks.values() if r.requested is not None]
        if not active:
            return 0
        eps = 1e-12
        starved = [
            r
            for r in active
            if r.u_min > 0.0 and r.granted is not None and r.granted.bandwidth + eps < r.u_min
        ]
        for r in starved:
            # re-assert the floor by bumping the books: the guaranteed
            # minimum is what admission control promised this task, and a
            # collapsed request (a feedback law squeezed into a
            # self-reinforcing spiral) must not sign it away
            assert r.requested is not None
            floor_budget = max(1, int(r.u_min * r.requested.period))
            r.requested = BandwidthRequest(
                budget=max(floor_budget, r.requested.budget), period=r.requested.period
            )
        total_requested = sum(r.requested.bandwidth for r in active)  # type: ignore[union-attr]
        total_granted = sum(r.granted.bandwidth for r in active if r.granted is not None)
        stale = total_requested <= self.u_lub + eps and total_granted + eps < total_requested
        if starved or stale:
            self._recompute()
        self.watchdog_repairs += len(starved)
        return len(starved)

    def start_watchdog(self, kernel, period: int) -> object:
        """Run :meth:`watchdog` every ``period`` ns on ``kernel``'s clock.

        Returns the kernel timer handle.  Opt-in: the seed configuration
        never posts this calendar event.
        """
        return kernel.every(period, self.watchdog)

    def start_event_watchdog(self, kernel, config=None):
        """Run the watchdog event-driven instead of on a fixed period.

        Returns the armed :class:`repro.core.events.SupervisorEventLoop`:
        the watchdog fires after compression episodes and departures
        (refractory-limited), with ``config.fallback_floor`` as the
        periodic safety net.  ``config`` defaults to
        :class:`~repro.core.events.EventTriggerConfig` defaults.
        """
        from repro.core.events import SupervisorEventLoop

        loop = SupervisorEventLoop(kernel, self, config)
        if self._obs is not None:
            loop._obs = self._obs
        loop.start()
        return loop

    def total_granted_bandwidth(self) -> float:
        """Σ of granted bandwidths."""
        return sum(r.granted.bandwidth for r in self._tasks.values() if r.granted is not None)

    def _recompute(self) -> None:
        active = [r for r in self._tasks.values() if r.requested is not None]
        if not active:
            return
        previous = {r.key: r.granted for r in active}
        total = sum(r.requested.bandwidth for r in active)  # type: ignore[union-attr]
        if total <= self.u_lub:
            for r in active:
                r.granted = r.requested
        else:
            # compression: grant minimums, share the leftover proportionally
            floor = sum(min(r.u_min, r.requested.bandwidth) for r in active)  # type: ignore[union-attr]
            available = max(self.u_lub - floor, 0.0)
            excess = [
                max(r.requested.bandwidth - r.u_min, 0.0) * r.weight for r in active  # type: ignore[union-attr]
            ]
            total_excess = sum(excess)
            for r, exc in zip(active, excess, strict=True):
                req = r.requested
                assert req is not None
                share = (exc / total_excess) * available if total_excess > 0 else 0.0
                bandwidth = min(r.u_min, req.bandwidth) + share
                budget = max(1, int(bandwidth * req.period))
                r.granted = BandwidthRequest(budget=min(budget, req.budget), period=req.period)
        for r in active:
            if r.actuate is not None and r.granted != previous[r.key]:
                r.actuate(r.granted)
        obs = self._obs
        hook = self.trigger_hook
        if obs is not None or hook is not None:
            granted_total = sum(r.granted.bandwidth for r in active if r.granted is not None)
            if obs is not None:
                obs.supervisor_recompute(total, granted_total)
            if hook is not None and granted_total < total - 1e-12:
                hook("compression")
