"""Trace persistence: save and load recorded event trains.

The real lfs++ workflow separates recording from analysis (the kernel
logs, the tool downloads and processes).  This module gives the library
the same capability: traces recorded in a simulation can be saved, shared
and re-analysed offline (see the CLI's ``analyze`` command).

Format: one event per line, tab-separated ::

    <time_ns>\t<pid>\t<syscall-or-dash>\t<kind>

with a single ``# qtrace v1`` header line.  The format is intentionally
trivial — greppable, diffable, loadable from any language.
"""

from __future__ import annotations

import io
from pathlib import Path
from collections.abc import Iterable

from repro.sim.syscalls import SyscallNr
from repro.tracer.events import EventKind, TraceEvent

HEADER = "# qtrace v1"

_KIND_BY_VALUE = {k.value: k for k in EventKind}
_NR_BY_VALUE = {n.value: n for n in SyscallNr}


def dump_trace(events: Iterable[TraceEvent], stream: io.TextIOBase) -> int:
    """Write ``events`` to ``stream``; returns the number written."""
    stream.write(HEADER + "\n")
    count = 0
    for ev in events:
        nr = ev.nr.value if ev.nr is not None else "-"
        stream.write(f"{ev.time}\t{ev.pid}\t{nr}\t{ev.kind.value}\n")
        count += 1
    return count


def save_trace(path: str | Path, events: Iterable[TraceEvent]) -> int:
    """Save ``events`` to ``path``; returns the number written."""
    with open(path, "w", encoding="utf-8") as fh:
        return dump_trace(events, fh)


def parse_trace(stream: io.TextIOBase) -> list[TraceEvent]:
    """Parse a trace from ``stream`` (see module docstring for format)."""
    first = stream.readline().rstrip("\n")
    if first != HEADER:
        raise ValueError(f"not a qtrace v1 file (header {first!r})")
    events: list[TraceEvent] = []
    for lineno, line in enumerate(stream, start=2):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 4:
            raise ValueError(f"line {lineno}: expected 4 fields, got {len(parts)}")
        time_s, pid_s, nr_s, kind_s = parts
        try:
            kind = _KIND_BY_VALUE[kind_s]
        except KeyError:
            raise ValueError(f"line {lineno}: unknown event kind {kind_s!r}") from None
        nr = None
        if nr_s != "-":
            try:
                nr = _NR_BY_VALUE[nr_s]
            except KeyError:
                raise ValueError(f"line {lineno}: unknown syscall {nr_s!r}") from None
        events.append(TraceEvent(int(time_s), int(pid_s), nr, kind))
    return events


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Load a trace saved with :func:`save_trace`."""
    with open(path, encoding="utf-8") as fh:
        return parse_trace(fh)


def filter_trace(
    events: Iterable[TraceEvent],
    *,
    pid: int | None = None,
    kinds: Iterable[EventKind] | None = None,
    start_ns: int | None = None,
    end_ns: int | None = None,
) -> list[TraceEvent]:
    """Select events by pid, kind and time window (all optional)."""
    kind_set = set(kinds) if kinds is not None else None
    out = []
    for ev in events:
        if pid is not None and ev.pid != pid:
            continue
        if kind_set is not None and ev.kind not in kind_set:
            continue
        if start_ns is not None and ev.time < start_ns:
            continue
        if end_ns is not None and ev.time >= end_ns:
            continue
        out.append(ev)
    return out
