"""Overhead models of the ``ptrace()``-based baselines (Table 1).

``strace`` and the authors' earlier ``qostrace`` both stop the monitored
process at every system call: the kernel suspends it, wakes the tracer to
inspect the registers (or just read the clock), and resumes the monitored
process.  That costs *two context switches per traced call* plus whatever
work the tracer does while scheduled — a structural floor the paper's
qtrace avoids entirely ("the system has to execute two context switches
whose duration is a lower bound for the overhead of any solution based on
ptrace()").

We model that cost as extra latency charged on the traced process at every
syscall entry and exit.  ``strace`` additionally decodes and formats the
arguments (expensive); ``qostrace`` only grabs a timestamp (cheap), which
is why the paper measured 5.51% vs 2.69% overhead for them.

The per-stop work figures are calibrated constants (we cannot run the real
tools); the *ordering* and the rough magnitudes in Table 1 follow from the
2-switches-per-call structure, not from tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.process import Process
from repro.sim.syscalls import SyscallNr
from repro.sim.time import US
from repro.tracer.events import EventKind, TraceEvent


@dataclass
class PtraceTracer:
    """A ptrace-style tracer: per-stop context switches plus tracer work."""

    name: str
    #: cost of one context switch, ns
    context_switch_cost: int = 2_000
    #: tracer-side CPU per syscall *stop* (entry or exit), ns
    per_stop_work: int = 4 * US
    #: whether exit stops are taken too (ptrace always stops on both)
    stop_on_exit: bool = True
    pids: set[int] = field(default_factory=set)
    #: recorded events (ptrace tools see the stream directly, no ring buffer)
    events: list[TraceEvent] = field(default_factory=list)
    record: bool = True

    def trace_pid(self, pid: int) -> None:
        """Start tracing process ``pid``."""
        self.pids.add(pid)

    def traces(self, proc: Process) -> bool:
        return proc.pid in self.pids

    def _stop_cost(self) -> int:
        # switch to the tracer, tracer does its work, switch back
        return 2 * self.context_switch_cost + self.per_stop_work

    def on_syscall_entry(self, proc: Process, nr: SyscallNr, now: int) -> int:
        if proc.pid not in self.pids:
            return 0
        if self.record:
            self.events.append(TraceEvent(now, proc.pid, nr, EventKind.SYSCALL_ENTRY))
        return self._stop_cost()

    def on_syscall_exit(self, proc: Process, nr: SyscallNr, now: int) -> int:
        if proc.pid not in self.pids or not self.stop_on_exit:
            return 0
        if self.record:
            self.events.append(TraceEvent(now, proc.pid, nr, EventKind.SYSCALL_EXIT))
        return self._stop_cost()


def strace(*, context_switch_cost: int = 2_000) -> PtraceTracer:
    """The stock ``strace`` tool: full argument decoding at every stop."""
    return PtraceTracer(
        name="strace",
        context_switch_cost=context_switch_cost,
        per_stop_work=6_400,
        stop_on_exit=True,
    )


def qostrace(*, context_switch_cost: int = 2_000) -> PtraceTracer:
    """The authors' earlier lightweight ptrace tracer ([8]): timestamp only."""
    return PtraceTracer(
        name="qostrace",
        context_switch_cost=context_switch_cost,
        per_stop_work=1_000,
        stop_on_exit=True,
    )
