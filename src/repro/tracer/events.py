"""Trace records and the kernel-side circular buffer.

The paper's kernel patch logs timestamps into "a statically allocated
circular buffer"; when the buffer wraps before the user-space tool drains
it, the oldest events are lost.  :class:`RingBuffer` reproduces both the
bounded memory and the overwrite semantics, and counts drops so
experiments can check the buffer was sized correctly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.syscalls import SyscallNr


class EventKind(enum.Enum):
    """What a trace record marks."""

    SYSCALL_ENTRY = "entry"
    SYSCALL_EXIT = "exit"
    WAKEUP = "wakeup"  # blocked -> ready transition (sched_events tracer)
    BLOCK = "block"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped kernel event."""

    time: int
    pid: int
    nr: SyscallNr | None
    kind: EventKind

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        call = self.nr.value if self.nr is not None else "-"
        return f"TraceEvent({self.time}, pid={self.pid}, {call}, {self.kind.value})"


class RingBuffer:
    """Fixed-capacity circular buffer of :class:`TraceEvent`.

    ``push`` overwrites the oldest entry when full (and bumps
    :attr:`dropped`); ``drain`` returns everything currently stored, in
    chronological order, and empties the buffer — the character-device
    "download a batch of time instants" operation.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._slots: list[TraceEvent | None] = [None] * capacity
        self._head = 0  # next write position
        self._count = 0
        #: events overwritten before being drained
        self.dropped = 0
        #: total events ever pushed
        self.total = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """True when the next push will overwrite the oldest record."""
        return self._count == self.capacity

    def push(self, event: TraceEvent) -> None:
        """Append ``event``, overwriting the oldest record if full."""
        if self._count == self.capacity:
            self.dropped += 1
        else:
            self._count += 1
        self._slots[self._head] = event
        self._head = (self._head + 1) % self.capacity
        self.total += 1

    def drain(self) -> list[TraceEvent]:
        """Return all stored events oldest-first and empty the buffer."""
        if self._count == 0:
            return []
        start = (self._head - self._count) % self.capacity
        out: list[TraceEvent] = []
        for i in range(self._count):
            ev = self._slots[(start + i) % self.capacity]
            assert ev is not None
            out.append(ev)
        self._slots = [None] * self.capacity
        self._head = 0
        self._count = 0
        return out

    def peek(self) -> list[TraceEvent]:
        """Like :meth:`drain` but non-destructive."""
        if self._count == 0:
            return []
        start = (self._head - self._count) % self.capacity
        return [self._slots[(start + i) % self.capacity] for i in range(self._count)]  # type: ignore[misc]
