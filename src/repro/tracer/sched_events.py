"""Scheduler-transition tracing (the paper's §6 future-work direction).

"Another direction can be to trace the transition between blocked and
ready (or executing) state in the kernel as an alternative to the system
calls. [...] it promises to be more closely related to the task temporal
behaviour."

:class:`WakeupTracer` records exactly those transitions.  It is not a
syscall hook; it observes the kernel through a wrapper installed around
the scheduler's ``on_ready``/``on_block`` callbacks (see :meth:`install`).
A periodic task produces one wake-up per job, so the resulting event train
is an even cleaner input for the period analyser than the syscall stream —
the :mod:`repro.core.analyser` accepts either.
"""

from __future__ import annotations

from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.tracer.events import EventKind, RingBuffer, TraceEvent


class WakeupTracer:
    """Records blocked→ready (and ready→blocked) transitions per pid."""

    def __init__(self, capacity: int = 65536, *, record_blocks: bool = False) -> None:
        self.buffer = RingBuffer(capacity)
        self.record_blocks = record_blocks
        self._pids: set[int] = set()
        self._installed = False

    def trace_pid(self, pid: int) -> None:
        """Start tracing the scheduler transitions of ``pid``."""
        self._pids.add(pid)

    def untrace_pid(self, pid: int) -> None:
        """Stop tracing ``pid``."""
        self._pids.discard(pid)

    def install(self, kernel: Kernel) -> None:
        """Wrap the kernel's scheduler callbacks to observe transitions.

        Idempotent per tracer instance; the wrapper delegates to the
        original scheduler methods unchanged.
        """
        if self._installed:
            return
        self._installed = True
        sched = kernel.scheduler
        orig_ready = sched.on_ready
        orig_block = sched.on_block
        tracer = self

        def on_ready(proc: Process, now: int) -> None:
            if proc.pid in tracer._pids:
                tracer.buffer.push(TraceEvent(now, proc.pid, None, EventKind.WAKEUP))
            orig_ready(proc, now)

        def on_block(proc: Process, now: int) -> None:
            if tracer.record_blocks and proc.pid in tracer._pids:
                tracer.buffer.push(TraceEvent(now, proc.pid, None, EventKind.BLOCK))
            orig_block(proc, now)

        sched.on_ready = on_ready  # type: ignore[method-assign]
        sched.on_block = on_block  # type: ignore[method-assign]

    def drain(self) -> list[TraceEvent]:
        """Return and clear all recorded transitions, oldest first."""
        return self.buffer.drain()
