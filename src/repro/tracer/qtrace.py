"""The paper's low-overhead kernel tracer (``qtrace``).

Two cooperating pieces, exactly as in §4.1:

1. **kernel patch** — hooks on syscall entry/exit record a timestamp into a
   static circular buffer.  Tracing is *selective*: only a configured set
   of pids, and optionally only a configured subset of system calls, are
   logged ("it is possible to avoid the tracing of system calls that are
   totally unrelated with the scheduling events").  Each logged event costs
   a small, fixed amount of kernel CPU (:attr:`QTraceConfig.log_cost`),
   charged to the traced process — this is the "really negligible and hard
   to measure" in-kernel part of the overhead.

2. **user-space download agent** — a process that wakes periodically,
   drains the buffer through the character device, and hands the batch to
   whoever registered a sink (the period analyser).  The agent's CPU cost
   (fixed ioctl cost plus a per-event copy cost) and the context switches
   it induces are the measurable part of the Table 1 overhead.

The download agent is spawned with :meth:`QTracer.spawn_download_agent`;
for experiments that do not care about download overhead, call
:meth:`QTracer.drain` directly instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.sim.instructions import SleepUntil, Syscall
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.syscalls import SyscallNr
from repro.sim.time import US
from repro.tracer.events import EventKind, RingBuffer, TraceEvent

#: Signature of a batch consumer registered with :meth:`QTracer.add_sink`.
BatchSink = Callable[[list[TraceEvent], int], None]

#: Signature of the optional download-path corruption stage
#: (:attr:`QTracer.tamper`): receives the drained batch and the download
#: time, returns the batch actually delivered to the sinks.
TamperHook = Callable[[list[TraceEvent], int], list[TraceEvent]]


@dataclass
class QTraceConfig:
    """Cost model and buffer sizing of the qtrace kernel patch."""

    #: circular-buffer capacity (events)
    buffer_capacity: int = 65536
    #: kernel CPU per logged event, ns (timestamp read + buffer store;
    #: calibrated for the paper's 800 MHz testbed)
    log_cost: int = 500
    #: fixed kernel CPU per download ioctl, ns
    download_fixed_cost: int = 8 * US
    #: per-event copy-to-user cost during a download, ns
    download_per_event_cost: int = 90
    #: whether syscall-exit events are logged in addition to entries
    record_exits: bool = True


class QTracer:
    """Selective kernel syscall tracer with batch download."""

    #: telemetry hub (:mod:`repro.obs`); None = disabled fast path.  One
    #: span per download (drain or agent ioctl) with buffer-occupancy and
    #: drop counters; strictly read-only — tracing costs are unchanged.
    _obs = None

    def __init__(self, config: QTraceConfig | None = None) -> None:
        self.config = config or QTraceConfig()
        self.buffer = RingBuffer(self.config.buffer_capacity)
        self._pids: set[int] = set()
        self._calls: set[SyscallNr] | None = None  # None = trace all calls
        self._sinks: list[BatchSink] = []
        #: per-(pid, syscall) entry counters, for Figure 4 statistics
        self.call_counts: dict[tuple[int, SyscallNr], int] = {}
        #: optional corruption stage applied to every downloaded batch
        #: before the sinks see it (:mod:`repro.faults` installs these);
        #: None = deliver batches verbatim
        self.tamper: TamperHook | None = None
        #: when True the download path is wedged: ``drain`` returns
        #: nothing and the agent skips its ioctl, so the kernel keeps
        #: overwriting oldest events (ring-overrun pressure)
        self.stalled = False
        #: events lost to ring overwrite across the whole run, as observed
        #: by the download path (buffer swaps preserve the count)
        self.overrun_total = 0
        #: events lost to overwrite since the previous download
        self.last_overrun = 0
        self._overruns_seen = 0

    # ------------------------------------------------------------------
    # configuration (what the real patch accepts through the chardev)
    # ------------------------------------------------------------------
    def trace_pid(self, pid: int) -> None:
        """Start tracing process ``pid``."""
        self._pids.add(pid)

    def untrace_pid(self, pid: int) -> None:
        """Stop tracing process ``pid``."""
        self._pids.discard(pid)

    def set_syscall_filter(self, calls: Iterable[SyscallNr] | None) -> None:
        """Restrict logging to ``calls`` (``None`` restores trace-everything)."""
        self._calls = set(calls) if calls is not None else None

    def add_sink(self, sink: BatchSink) -> None:
        """Register a consumer for downloaded batches."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # TracerHook protocol (called by the kernel)
    # ------------------------------------------------------------------
    def traces(self, proc: Process) -> bool:
        return proc.pid in self._pids

    def _wants(self, proc: Process, nr: SyscallNr) -> bool:
        if proc.pid not in self._pids:
            return False
        return self._calls is None or nr in self._calls

    def on_syscall_entry(self, proc: Process, nr: SyscallNr, now: int) -> int:
        if not self._wants(proc, nr):
            return 0
        self.buffer.push(TraceEvent(now, proc.pid, nr, EventKind.SYSCALL_ENTRY))
        key = (proc.pid, nr)
        self.call_counts[key] = self.call_counts.get(key, 0) + 1
        return self.config.log_cost

    def on_syscall_exit(self, proc: Process, nr: SyscallNr, now: int) -> int:
        if not self.config.record_exits or not self._wants(proc, nr):
            return 0
        self.buffer.push(TraceEvent(now, proc.pid, nr, EventKind.SYSCALL_EXIT))
        return self.config.log_cost

    # ------------------------------------------------------------------
    # download side
    # ------------------------------------------------------------------
    def _account_overrun(self) -> int:
        """Fold newly observed ring overwrites into the overrun counters.

        Returns the number of events lost since the previous download —
        the explicit overrun count each download surfaces instead of
        letting :attr:`RingBuffer.dropped` grow silently.
        """
        lost = self.buffer.dropped - self._overruns_seen
        self._overruns_seen = self.buffer.dropped
        self.last_overrun = lost
        self.overrun_total += lost
        return lost

    def overruns(self) -> int:
        """Lifetime events lost to ring overwrite, downloads included or not.

        Unlike :attr:`overrun_total` (which only advances when a download
        actually runs), this also counts losses the download path has not
        surfaced yet — e.g. overwrites piling up while :attr:`stalled`.
        """
        return self.overrun_total + (self.buffer.dropped - self._overruns_seen)

    def drain(self, now: int) -> list[TraceEvent]:
        """Drain the buffer and feed every sink (zero-cost, kernel-side).

        Use :meth:`spawn_download_agent` when the download cost itself is
        part of the experiment.  Returns the empty batch without touching
        the buffer while :attr:`stalled` is set.
        """
        if self.stalled:
            return []
        obs = self._obs
        occupancy = len(self.buffer) if obs is not None else 0
        batch = self.buffer.drain()
        overrun = self._account_overrun()
        if self.tamper is not None:
            batch = self.tamper(batch, now)
        for sink in self._sinks:
            sink(batch, now)
        if obs is not None:
            obs.tracer_download(
                now,
                now,
                batch=len(batch),
                occupancy=occupancy,
                dropped=self.buffer.dropped,
                overrun=overrun,
            )
        return batch

    def download_cost(self, batch_size: int) -> int:
        """CPU cost (ns) of downloading ``batch_size`` events."""
        return self.config.download_fixed_cost + batch_size * self.config.download_per_event_cost

    def spawn_download_agent(self, kernel: Kernel, period: int, *, name: str = "lfs++-dl") -> Process:
        """Create the user-space download process.

        Every ``period`` ns it issues an ioctl on the trace device (a real
        syscall, so it context-switches against the workload), burns the
        batch-size-dependent copy cost, and delivers the batch to the
        sinks.
        """

        tracer = self

        def agent():
            cycle = 0
            while True:
                cycle += 1
                now = yield Syscall(SyscallNr.CLOCK_NANOSLEEP, block=SleepUntil(cycle * period))
                if tracer.stalled:
                    continue  # wedged: skip the ioctl, let the ring wrap
                started = now
                occupancy = len(tracer.buffer)
                batch = tracer.buffer.drain()
                overrun = tracer._account_overrun()
                cost = tracer.download_cost(len(batch))
                now = yield Syscall(SyscallNr.IOCTL, cost=cost)
                if tracer.tamper is not None:
                    batch = tracer.tamper(batch, now)
                for sink in tracer._sinks:
                    sink(batch, now)
                obs = tracer._obs
                if obs is not None:
                    obs.tracer_download(
                        started,
                        now,
                        batch=len(batch),
                        occupancy=occupancy,
                        dropped=tracer.buffer.dropped,
                        overrun=overrun,
                        cost_ns=cost,
                    )

        return kernel.spawn(name, agent())
