"""System-call tracing.

Reimplements the paper's §4.1 tracing stack:

- :mod:`.events` — timestamped trace records and the statically allocated
  circular buffer that backs the kernel patch;
- :mod:`.qtrace` — the paper's low-overhead kernel tracer: selective
  per-pid / per-syscall filters, a character-device-style batch download
  interface, and a calibrated per-event cost model;
- :mod:`.ptrace_tracers` — overhead models for the ``strace`` and
  ``qostrace`` baselines of Table 1, both of which pay two context switches
  per traced call because they are built on ``ptrace()``;
- :mod:`.sched_events` — the future-work alternative sketched in §6:
  tracing blocked→ready transitions instead of system calls.
"""

from repro.tracer.events import EventKind, RingBuffer, TraceEvent
from repro.tracer.ptrace_tracers import PtraceTracer, qostrace, strace
from repro.tracer.qtrace import QTraceConfig, QTracer
from repro.tracer.sched_events import WakeupTracer
from repro.tracer.tracefile import filter_trace, load_trace, save_trace

__all__ = [
    "TraceEvent",
    "EventKind",
    "RingBuffer",
    "QTracer",
    "QTraceConfig",
    "PtraceTracer",
    "strace",
    "qostrace",
    "WakeupTracer",
    "save_trace",
    "load_trace",
    "filter_trace",
]
