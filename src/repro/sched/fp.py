"""Preemptive fixed-priority scheduler with a Rate Monotonic helper.

Fixed priorities are what general-purpose OSes offer real-time
applications out of the box (``SCHED_FIFO``); the paper's Section 1 calls
them "known to be unfit for soft real-time applications", and Section 3.2's
Figure 2 uses a Rate Monotonic assignment *inside* a shared reservation.
Both uses are covered here.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sched.base import Scheduler
from repro.sim.process import Process


def rate_monotonic_priorities(periods: Sequence[int]) -> list[int]:
    """Priorities (0 = highest) for tasks with the given periods.

    The famous Liu & Layland assignment: shorter period, higher priority.
    Ties keep input order.

    >>> rate_monotonic_priorities([30_000, 15_000, 20_000])
    [2, 0, 1]
    """
    order = sorted(range(len(periods)), key=lambda i: (periods[i], i))
    prio = [0] * len(periods)
    for rank, idx in enumerate(order):
        prio[idx] = rank
    return prio


class FixedPriorityScheduler(Scheduler):
    """Strictly preemptive fixed priorities; FIFO within a priority level."""

    # FP keeps no absolute times and no monotone counters: the no-op
    # shift and empty periods/counters defaults are the implementation.
    cycle_defaults_ok = ("shift_times", "cycle_periods", "cycle_counters")

    def __init__(self) -> None:
        super().__init__()
        self._prio: dict[int, int] = {}
        self._ready: list[Process] = []

    def attach(self, proc: Process, priority: int) -> None:
        """Assign ``priority`` (lower value = more important) to ``proc``."""
        self._prio[proc.pid] = priority

    def priority_of(self, proc: Process) -> int:
        """Priority of ``proc`` (unattached processes idle at the bottom)."""
        return self._prio.get(proc.pid, 2**31)

    def on_ready(self, proc: Process, now: int) -> None:
        if proc not in self._ready:
            self._ready.append(proc)

    def on_block(self, proc: Process, now: int) -> None:
        if proc in self._ready:
            self._ready.remove(proc)

    def pick(self, now: int) -> Process | None:
        if not self._ready:
            return None
        # stable min: FIFO among equal priorities because _ready preserves
        # arrival order and min() returns the first minimal element
        return min(self._ready, key=lambda p: self.priority_of(p))

    def charge(self, proc: Process, delta: int, now: int) -> None:
        pass  # no budgets

    def cycle_state(self, now: int) -> object:
        """Ready order with priorities (arrival order carries the FIFO ties)."""
        return ("fp", tuple((p.pid, self.priority_of(p)) for p in self._ready))
