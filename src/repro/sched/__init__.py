"""Pluggable CPU schedulers.

The paper's machinery sits on top of the AQuoSA Constant Bandwidth Server
(:mod:`.cbs`).  The package also provides the baselines the paper's
analysis contrasts against: plain EDF (:mod:`.edf`), preemptive fixed
priority with a Rate Monotonic helper (:mod:`.fp`), a proportional-share
stride scheduler (:mod:`.pshare`) — the class of algorithms Section 3.2
calls out as period-oblivious — and a POSIX-flavoured round-robin
best-effort scheduler (:mod:`.posix`).
"""

from repro.sched.base import Scheduler, SmpScheduler
from repro.sched.cbs import CbsScheduler, Server, ServerParams
from repro.sched.edf import EdfScheduler
from repro.sched.fp import FixedPriorityScheduler, rate_monotonic_priorities
from repro.sched.gedf import GlobalCbsScheduler, GlobalEdfScheduler
from repro.sched.posix import RoundRobinScheduler
from repro.sched.pshare import StrideScheduler

__all__ = [
    "Scheduler",
    "SmpScheduler",
    "CbsScheduler",
    "Server",
    "ServerParams",
    "EdfScheduler",
    "FixedPriorityScheduler",
    "rate_monotonic_priorities",
    "GlobalEdfScheduler",
    "GlobalCbsScheduler",
    "RoundRobinScheduler",
    "StrideScheduler",
]
