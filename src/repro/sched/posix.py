"""Round-robin best-effort scheduler (the ``SCHED_OTHER`` stand-in).

Used for experiments that do not involve reservations at all, e.g. the
tracer-overhead measurements of Table 1, where ffmpeg and the trace
download agent share the CPU under the stock time-sharing policy.
"""

from __future__ import annotations

from collections import deque


from repro.sched.base import Scheduler
from repro.sim.process import Process
from repro.sim.time import MS


class RoundRobinScheduler(Scheduler):
    """Single-queue round robin with a fixed time slice."""

    # RR state is queue order plus slice remainder — nothing absolute to
    # shift and nothing monotone to extrapolate.
    cycle_defaults_ok = ("shift_times", "cycle_periods", "cycle_counters")

    def __init__(self, *, timeslice: int = 4 * MS) -> None:
        super().__init__()
        if timeslice <= 0:
            raise ValueError("timeslice must be positive")
        self.timeslice = timeslice
        self._queue: deque[Process] = deque()
        self._slice_left = timeslice

    def on_ready(self, proc: Process, now: int) -> None:
        if proc not in self._queue:
            self._queue.append(proc)

    def on_block(self, proc: Process, now: int) -> None:
        if proc in self._queue:
            self._queue.remove(proc)
            self._slice_left = self.timeslice

    def pick(self, now: int) -> Process | None:
        return self._queue[0] if self._queue else None

    def charge(self, proc: Process, delta: int, now: int) -> None:
        self._slice_left -= delta
        if self._slice_left <= 0:
            self._slice_left = self.timeslice
            if len(self._queue) > 1 and self._queue[0] is proc:
                self._queue.rotate(-1)

    def time_until_internal_event(self, proc: Process, now: int) -> int | None:
        if len(self._queue) <= 1:
            return None
        return max(self._slice_left, 1)

    def cycle_state(self, now: int) -> object:
        """Run-queue rotation plus the remaining slice of the head."""
        return ("rr", tuple(p.pid for p in self._queue), self._slice_left)
