"""Scheduler interface.

The kernel drives schedulers through a small protocol:

- :meth:`Scheduler.on_ready` / :meth:`Scheduler.on_block` /
  :meth:`Scheduler.on_exit` report state transitions;
- :meth:`Scheduler.pick` selects the process to run *now*;
- :meth:`Scheduler.charge` accounts CPU consumed by the running process;
- :meth:`Scheduler.time_until_internal_event` bounds how long the current
  pick may run before the scheduler itself wants control back (budget
  exhaustion, time-slice expiry); releases and wake-ups arrive through the
  kernel's event calendar instead.

Schedulers that need timed callbacks (CBS budget replenishment) receive the
kernel handle via :meth:`Scheduler.bind`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process


class Scheduler(abc.ABC):
    """Abstract scheduling policy."""

    #: Fast-forward conformance declaration (checked statically by the FF
    #: lint pack): the ``cycle_*`` methods this class *intentionally*
    #: leaves to the base defaults.  A concrete scheduler must implement
    #: the full ``cycle_state``/``shift_times``/``cycle_periods``/
    #: ``cycle_counters`` surface, list the remainder here, or set
    #: :attr:`cycle_ineligible` — silent reliance on the defaults is
    #: indistinguishable from having forgotten them.
    cycle_defaults_ok: ClassVar[tuple[str, ...]] = ()

    #: Declares the policy out of steady-state fast-forward entirely
    #: (``cycle_state`` stays ``None``-returning and the mechanism
    #: auto-disables).
    cycle_ineligible: ClassVar[bool] = False

    def __init__(self) -> None:
        self.kernel: Kernel | None = None

    def bind(self, kernel: Kernel) -> None:
        """Attach to a kernel (called once by :class:`~repro.sim.kernel.Kernel`)."""
        self.kernel = kernel

    @abc.abstractmethod
    def on_ready(self, proc: Process, now: int) -> None:
        """``proc`` became runnable at ``now`` (admission or wake-up)."""

    @abc.abstractmethod
    def on_block(self, proc: Process, now: int) -> None:
        """``proc`` blocked at ``now``."""

    def on_exit(self, proc: Process, now: int) -> None:
        """``proc`` exited at ``now``; default defers to :meth:`on_block`."""
        self.on_block(proc, now)

    @abc.abstractmethod
    def pick(self, now: int) -> Process | None:
        """Return the process that should occupy the CPU at ``now``."""

    @abc.abstractmethod
    def charge(self, proc: Process, delta: int, now: int) -> None:
        """Account ``delta`` ns of CPU just consumed by ``proc`` ending at ``now``."""

    def time_until_internal_event(self, proc: Process, now: int) -> int | None:
        """Upper bound (ns from ``now``) on how long ``proc`` may run
        before this scheduler needs to re-decide; ``None`` means no bound."""
        return None

    # ------------------------------------------------------------------
    # schedule-cycle support (:mod:`repro.sim.cycles`)
    # ------------------------------------------------------------------
    def cycle_state(self, now: int) -> object | None:
        """Digestible policy state, with absolute times relative to ``now``.

        Two instants with equal :func:`repro.sim.cycles.state_digest` must
        behave identically forever, so everything the policy's future
        decisions depend on belongs here (ready-queue order, budgets,
        deadlines-minus-now, slice remainders).  Monotone output counters
        (consumed time, exhaustion tallies) must be left out — they grow
        without bound and are extrapolated separately via
        :meth:`cycle_counters`.  ``None`` (the default) marks the policy as
        unsupported: fast-forward auto-disables.
        """
        return None

    def shift_times(self, delta: int) -> None:
        """Shift every absolute-time field ``delta`` ns into the future.

        Called once per fast-forward skip, after the kernel clock and event
        calendar have been relocated.  The default is a no-op for policies
        that keep no absolute times (FP, RR, stride).
        """

    def cycle_periods(self) -> tuple[int, ...]:
        """Policy-internal periods to fold into the hyperperiod (CBS server
        periods); default none."""
        return ()

    def cycle_counters(self) -> dict[str, int]:
        """Monotone output counters excluded from :meth:`cycle_state`.

        Keyed by a stable name; the fast-forward extrapolation replays one
        cycle's deltas via :meth:`advance_cycle_counters`.
        """
        return {}

    def advance_cycle_counters(self, deltas: dict[str, int], cycles: int) -> None:
        """Add ``cycles`` extra repetitions of per-cycle counter ``deltas``."""


class SmpScheduler(Scheduler):
    """A scheduler that can occupy several CPUs at once.

    Used with :class:`repro.sim.multicore.MultiCoreKernel`: at every
    decision point the kernel asks for the ``n`` processes to run.
    """

    @abc.abstractmethod
    def pick_n(self, now: int, n: int) -> list[Process | None]:
        """Return the processes to run on CPUs ``0..n-1`` (None = idle).

        The returned processes must be distinct and runnable.
        """

    def pick(self, now: int) -> Process | None:
        """Uniprocessor compatibility: the most urgent pick."""
        return self.pick_n(now, 1)[0]
