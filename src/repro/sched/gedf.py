"""Global EDF schedulers for the multicore kernel.

Two flavours:

- :class:`GlobalEdfScheduler` — task-level global EDF: the ``n`` earliest
  absolute deadlines run, wherever they last executed.  Exhibits the
  classic global-EDF pathologies (Dhall's effect) that make the paper's
  partitioned direction attractive — the test suite demonstrates one.
- :class:`GlobalCbsScheduler` — server-level global EDF over CBS
  reservations: the ``n`` earliest server deadlines run (one task per
  server), with the same wake-up/exhaustion rules as the uniprocessor
  :class:`repro.sched.cbs.CbsScheduler` it extends, and the best-effort
  class filling whatever CPUs remain idle.
"""

from __future__ import annotations



from repro.sched.base import SmpScheduler
from repro.sched.cbs import CbsScheduler
from repro.sched.edf import EdfScheduler
from repro.sim.process import Process


class GlobalEdfScheduler(EdfScheduler, SmpScheduler):
    """Task-level global EDF: the n earliest deadlines occupy the CPUs."""

    def pick_n(self, now: int, n: int) -> list[Process | None]:
        ordered = sorted(
            self._ready, key=lambda p: (self._abs_deadline.get(p.pid, 2**62), p.pid)
        )
        picks: list[Process | None] = list(ordered[:n])
        picks += [None] * (n - len(picks))
        return picks


class GlobalCbsScheduler(CbsScheduler, SmpScheduler):
    """Server-level global EDF over CBS reservations."""

    def pick_n(self, now: int, n: int) -> list[Process | None]:
        picks: list[Process | None] = []
        for server in sorted(self._eligible_servers(), key=lambda s: (s.deadline, s.sid)):
            if len(picks) >= n:
                break
            picks.append(server.ready[0])
        for proc in self._bg:
            if len(picks) >= n:
                break
            if proc not in picks:
                picks.append(proc)
        picks += [None] * (n - len(picks))
        return picks
