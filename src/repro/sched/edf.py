"""Task-level Earliest Deadline First scheduler.

This is the plain EDF dispatcher CBS builds upon, exposed standalone so the
analysis layer and the property-based tests can exercise EDF optimality
directly (a feasible implicit-deadline periodic set never misses under
EDF at unit speed).

Tasks are attached with a *relative deadline*: every time a process wakes
up (which, for the periodic workload models, happens exactly at a job
release) its absolute deadline becomes ``wake time + relative deadline``.
"""

from __future__ import annotations



from repro.sched.base import Scheduler
from repro.sim.process import Process

#: absolute-deadline sentinel for best-effort tasks — far enough in the
#: future to lose every comparison, and (unlike real deadlines) never
#: shifted by the fast-forward relocation
_BEST_EFFORT = 2**62


class EdfScheduler(Scheduler):
    """Preemptive EDF over processes with per-wakeup absolute deadlines."""

    # deadlines are shifted by shift_times; EDF itself contributes no
    # extra periods and keeps no monotone counters.
    cycle_defaults_ok = ("cycle_periods", "cycle_counters")

    def __init__(self) -> None:
        super().__init__()
        self._rel_deadline: dict[int, int] = {}
        self._abs_deadline: dict[int, int] = {}
        self._ready: list[Process] = []

    def attach(self, proc: Process, rel_deadline: int) -> None:
        """Declare ``proc``'s relative deadline (ns after each wake-up)."""
        if rel_deadline <= 0:
            raise ValueError(f"relative deadline must be positive, got {rel_deadline}")
        self._rel_deadline[proc.pid] = rel_deadline
        if proc.runnable:
            # already released: anchor the first deadline at attach time
            now = self.kernel.clock if self.kernel is not None else 0
            self._abs_deadline[proc.pid] = now + rel_deadline

    def deadline_of(self, proc: Process) -> int | None:
        """Current absolute deadline of ``proc`` (None if never released)."""
        return self._abs_deadline.get(proc.pid)

    def on_ready(self, proc: Process, now: int) -> None:
        rel = self._rel_deadline.get(proc.pid)
        if rel is not None:
            self._abs_deadline[proc.pid] = now + rel
        else:
            # best-effort task: schedule it behind everything real-time
            self._abs_deadline.setdefault(proc.pid, _BEST_EFFORT)
        if proc not in self._ready:
            self._ready.append(proc)

    def on_block(self, proc: Process, now: int) -> None:
        if proc in self._ready:
            self._ready.remove(proc)

    def pick(self, now: int) -> Process | None:
        if not self._ready:
            return None
        return min(self._ready, key=lambda p: (self._abs_deadline.get(p.pid, _BEST_EFFORT), p.pid))

    def charge(self, proc: Process, delta: int, now: int) -> None:
        pass  # plain EDF has no budgets

    def cycle_state(self, now: int) -> object:
        """Ready order plus deadlines relative to ``now`` (BE tasks masked)."""
        entries = []
        for proc in self._ready:
            deadline = self._abs_deadline.get(proc.pid, _BEST_EFFORT)
            entries.append((proc.pid, "be" if deadline >= _BEST_EFFORT else deadline - now))
        return ("edf", tuple(entries))

    def shift_times(self, delta: int) -> None:
        """Relocate every real absolute deadline (the BE sentinel stays put)."""
        for pid in sorted(self._abs_deadline):
            deadline = self._abs_deadline[pid]
            if deadline < _BEST_EFFORT:
                self._abs_deadline[pid] = deadline + delta
