"""Constant Bandwidth Server scheduler (Abeni & Buttazzo, RTSS 1998).

This is the reservation scheduler underneath the paper's whole machinery
(the AQuoSA ``qres`` module on Linux 2.6.29).  Each *server* owns a budget
``Q`` per period ``T``; servers with pending work are dispatched EDF on
their scheduling deadlines.  The two classic CBS rules are implemented:

- **wake-up rule**: when a task arrives at an idle server at time ``t``, if
  the remaining budget ``q`` could not be consumed by the current deadline
  ``d`` without exceeding the reserved bandwidth (``q >= (d - t) * Q/T``),
  the server state is reset to ``q = Q``, ``d = t + T``;
- **exhaustion rule**: when ``q`` reaches zero the configured policy
  applies — ``"hard"`` throttles the tasks until the replenishment at the
  server deadline, ``"soft"`` (classic CBS) postpones ``d += T`` and
  recharges immediately, and ``"background"`` (the AQuoSA flavour) drops
  the tasks to the best-effort class until the replenishment.  See
  :class:`ServerParams`.

Processes not attached to any server run in a best-effort background class
(round robin), strictly below every server — the stand-in for Linux's
normal scheduling class, which is where an untuned legacy application
lives before the self-tuning framework adopts it.

The ``qres``-style introspection API used by the LFS++ sensor is
:attr:`Server.consumed` (total CPU time executed by the server, the
equivalent of ``qres_get_time()``) and :attr:`Server.exhaustions`
(budget-exhaustion counter, the binary saturation signal of the original
LFS).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sched.base import Scheduler
from repro.sim.process import Process
from repro.sim.time import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry
    from repro.sim.kernel import Kernel


#: what happens when a server's budget runs out mid-period
EXHAUSTION_POLICIES = ("hard", "soft", "background")


@dataclass
class ServerParams:
    """Reservation parameters: budget ``Q``, period ``T`` (ns), and the
    exhaustion policy.

    - ``"hard"`` — the attached tasks are throttled until the budget
      replenishes at the server deadline (strict temporal isolation, the
      ``SCHED_DEADLINE`` throttling behaviour);
    - ``"soft"`` — classic soft CBS: the deadline is postponed by ``T``
      and the budget recharged, so the tasks stay runnable at lower EDF
      priority;
    - ``"background"`` — the AQuoSA behaviour the paper's experiments run
      under: the guaranteed ``(Q, T)`` is served through EDF, and once
      exhausted the tasks *drop to the best-effort class* until the
      replenishment, competing with ordinary processes for leftover CPU.
    """

    budget: int
    period: int
    policy: str = "hard"

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.budget > self.period:
            raise ValueError(
                f"budget {self.budget} exceeds period {self.period} (bandwidth > 1)"
            )
        if self.policy not in EXHAUSTION_POLICIES:
            raise ValueError(
                f"policy must be one of {EXHAUSTION_POLICIES}, got {self.policy!r}"
            )

    @property
    def hard(self) -> bool:
        """Whether the reservation throttles on exhaustion."""
        return self.policy == "hard"

    @property
    def bandwidth(self) -> float:
        """Reserved CPU fraction ``Q/T``."""
        return self.budget / self.period


class Server:
    """A CBS instance: scheduling state plus attached processes."""

    def __init__(self, sid: int, params: ServerParams, name: str = "") -> None:
        self.sid = sid
        self.name = name or f"srv{sid}"
        self.params = params
        #: remaining budget in the current server period (ns)
        self.q = 0
        #: absolute scheduling deadline (ns)
        self.deadline = 0
        self.throttled = False
        #: ready attached processes (round-robin among them when several
        #: threads share the reservation, as the stock Linux policy would)
        self.ready: deque[Process] = deque()
        self.members: set[int] = set()
        #: remaining intra-server time slice, ns (multi-member servers)
        self.slice_left = 0
        #: total CPU time consumed through this server (``qres_get_time``)
        self.consumed = 0
        #: number of budget exhaustions since creation
        self.exhaustions = 0
        #: optional observer called as ``exhaustion_hook(server, now)`` on
        #: every budget exhaustion (:mod:`repro.core.events` burst
        #: counting); None = disabled fast path.  The hook may post
        #: calendar events but must not touch scheduler state.
        self.exhaustion_hook = None
        self._replenish_handle = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Server({self.name}, Q={self.params.budget}, T={self.params.period}, "
            f"q={self.q}, d={self.deadline}, throttled={self.throttled})"
        )

    @property
    def bandwidth(self) -> float:
        """Currently reserved CPU fraction."""
        return self.params.bandwidth

    def has_work(self) -> bool:
        """Whether any attached process is ready to run."""
        return bool(self.ready)


class CbsScheduler(Scheduler):
    """EDF dispatcher over CBS servers, with a background RR class."""

    #: telemetry hub (:mod:`repro.obs`); None = disabled fast path.  Hook
    #: sites are read-only and sit off the per-quantum ``charge`` path —
    #: only server lifecycle edges (create/destroy/exhaust/replenish/
    #: set-params) are reported.
    _obs: Telemetry | None = None

    def __init__(self, *, background_slice: int = 20 * MS, intra_server_slice: int = 4 * MS) -> None:
        super().__init__()
        if background_slice <= 0 or intra_server_slice <= 0:
            raise ValueError("slices must be positive")
        self.servers: dict[int, Server] = {}
        self._next_sid = 1
        self._bg: deque[Process] = deque()
        self._bg_slice = background_slice
        self._bg_slice_left = background_slice
        self._intra_slice = intra_server_slice
        self._proc_server: dict[int, Server] = {}

    # ------------------------------------------------------------------
    # server management (the qres-like API)
    # ------------------------------------------------------------------
    def _now(self) -> int:
        """Current virtual time (0 before binding; telemetry-only)."""
        return self.kernel.clock if self.kernel is not None else 0

    def create_server(self, params: ServerParams, name: str = "") -> Server:
        """Create a reservation; returns the server handle."""
        server = Server(self._next_sid, params, name)
        self._next_sid += 1
        self.servers[server.sid] = server
        if self._obs is not None:
            self._obs.server_created(server, self._now())
        return server

    def destroy_server(self, server: Server) -> None:
        """Remove a reservation; attached processes fall back to background."""
        for pid in sorted(server.members):
            proc = self._find_proc(server, pid)
            if proc is not None:
                self.detach(proc)
        self.servers.pop(server.sid, None)
        if self._obs is not None:
            self._obs.server_destroyed(server, self._now())

    def _find_proc(self, server: Server, pid: int) -> Process | None:
        for p in server.ready:
            if p.pid == pid:
                return p
        if self.kernel is not None:
            return self.kernel.processes.get(pid)
        return None

    def attach(self, proc: Process, server: Server) -> None:
        """Attach ``proc`` to ``server`` (the ``qres_attach_thread`` call)."""
        old = self._proc_server.get(proc.pid)
        if old is not None:
            self.detach(proc)
        if proc in self._bg:
            self._bg.remove(proc)
        server.members.add(proc.pid)
        self._proc_server[proc.pid] = server
        proc.sched_data = server
        if proc.runnable:
            now = self.kernel.clock if self.kernel else 0
            self._enqueue(server, proc, now)

    def detach(self, proc: Process) -> None:
        """Detach ``proc`` from its server; it becomes a background process."""
        server = self._proc_server.pop(proc.pid, None)
        if server is None:
            return
        server.members.discard(proc.pid)
        if proc in server.ready:
            server.ready.remove(proc)
        proc.sched_data = None
        if proc.runnable and proc not in self._bg:
            self._bg.append(proc)

    def server_of(self, proc: Process) -> Server | None:
        """The server ``proc`` is attached to, if any."""
        return self._proc_server.get(proc.pid)

    def set_params(self, server: Server, params: ServerParams) -> None:
        """Change a reservation at run time (``qres_set_params``).

        A running (non-throttled) server keeps its current deadline and its
        remaining budget clamped to the new ``Q``; a throttled server picks
        up the new budget at its pending replenishment.  Actuation latency
        is therefore at most one server period, as on the real system.
        """
        server.params = params
        if not server.throttled:
            server.q = min(server.q, params.budget)
        if self._obs is not None:
            self._obs.server_params_changed(server, self._now())

    def total_bandwidth(self) -> float:
        """Sum of reserved fractions over all servers."""
        return sum(s.bandwidth for s in self.servers.values())

    # ------------------------------------------------------------------
    # CBS rules
    # ------------------------------------------------------------------
    def _enqueue(self, server: Server, proc: Process, now: int) -> None:
        was_idle = not server.ready
        server.ready.append(proc)
        if was_idle and not server.throttled:
            self._wakeup_rule(server, now)

    def _wakeup_rule(self, server: Server, now: int) -> None:
        q, d = server.q, server.deadline
        Q, T = server.params.budget, server.params.period
        # reset if the pair (q, d) is not bandwidth-safe at `now`
        if d <= now or q * T >= (d - now) * Q:
            server.q = Q
            server.deadline = now + T

    def _on_exhaustion(self, server: Server, now: int) -> None:
        server.exhaustions += 1
        if self._obs is not None:
            self._obs.server_exhausted(server, now)
        hook = server.exhaustion_hook
        if hook is not None:
            hook(server, now)
        Q, T = server.params.budget, server.params.period
        if server.params.policy == "soft":
            # soft CBS: postpone the deadline, recharge, keep running
            while server.q <= 0:
                server.q += Q
                server.deadline += T
            return
        # hard / background: the guaranteed budget is gone until the
        # replenishment at the server deadline
        server.throttled = True
        if server.params.policy == "background":
            # AQuoSA behaviour: the tasks drop to the best-effort class
            for p in server.ready:
                if p not in self._bg:
                    self._bg.append(p)
        wake_at = max(server.deadline, now + 1)
        assert self.kernel is not None
        server._replenish_handle = self.kernel.events.push(
            wake_at, self._replenish_event, server
        )

    def _replenish_event(self, now: int, server: Server) -> None:
        """Calendar payload trampoline for the replenishment timer."""
        self._replenish(server, now)

    def _replenish(self, server: Server, now: int) -> None:
        server.throttled = False
        server._replenish_handle = None
        server.q = server.params.budget
        server.deadline = max(server.deadline + server.params.period, now + server.params.period)
        if server.params.policy == "background":
            # pull the tasks back out of the best-effort class
            for p in server.ready:
                if p in self._bg:
                    self._bg.remove(p)
        if self._obs is not None:
            self._obs.server_replenished(server, now)

    # ------------------------------------------------------------------
    # Scheduler protocol
    # ------------------------------------------------------------------
    def on_ready(self, proc: Process, now: int) -> None:
        server = self._proc_server.get(proc.pid)
        if server is not None:
            self._enqueue(server, proc, now)
            if (
                server.throttled
                and server.params.policy == "background"
                and proc not in self._bg
            ):
                self._bg.append(proc)
        elif proc not in self._bg:
            self._bg.append(proc)

    def on_block(self, proc: Process, now: int) -> None:
        server = self._proc_server.get(proc.pid)
        if server is not None and proc in server.ready:
            server.ready.remove(proc)
        if proc in self._bg:
            self._bg.remove(proc)

    def _eligible_servers(self) -> list[Server]:
        return [
            s
            for s in self.servers.values()
            if s.has_work() and not s.throttled and s.q > 0
        ]

    def pick(self, now: int) -> Process | None:
        # manual argmin over (deadline, sid) — equivalent to
        # min(self._eligible_servers(), key=...) without building the list
        # or a key tuple per server; pick() runs once per kernel iteration
        best: Server | None = None
        best_d = 0
        for s in self.servers.values():
            if s.ready and not s.throttled and s.q > 0:
                d = s.deadline
                if best is None or d < best_d or (d == best_d and s.sid < best.sid):
                    best = s
                    best_d = d
        if best is not None:
            return best.ready[0]
        if self._bg:
            return self._bg[0]
        return None

    def _charge_background(self, proc: Process, delta: int) -> None:
        self._bg_slice_left -= delta
        if self._bg_slice_left <= 0:
            self._bg_slice_left = self._bg_slice
            if len(self._bg) > 1 and self._bg and self._bg[0] is proc:
                self._bg.rotate(-1)

    def charge(self, proc: Process, delta: int, now: int) -> None:
        # hot path: ``proc.sched_data`` mirrors ``_proc_server`` (attach
        # and detach keep both in sync) without the pid hash lookup
        server: Server | None = proc.sched_data  # type: ignore[assignment]
        if server is None:
            self._charge_background(proc, delta)
            return
        server.consumed += delta
        if server.throttled:
            # background-policy overflow execution: no budget to charge,
            # but the best-effort round robin still rotates
            self._charge_background(proc, delta)
            return
        server.q -= delta
        # intra-server round robin among a multi-thread reservation
        if len(server.ready) > 1:
            server.slice_left -= delta
            if server.slice_left <= 0:
                server.slice_left = self._intra_slice
                if server.ready and server.ready[0] is proc:
                    server.ready.rotate(-1)
        if server.q <= 0:
            server.q = max(server.q, 0)
            self._on_exhaustion(server, now)

    def time_until_internal_event(self, proc: Process, now: int) -> int | None:
        server: Server | None = proc.sched_data  # type: ignore[assignment]
        if server is not None and not server.throttled:
            bound = server.q
            if bound < 0:
                bound = 0
            if len(server.ready) > 1:
                slice_left = server.slice_left
                if slice_left <= 0:
                    slice_left = server.slice_left = self._intra_slice
                if slice_left < bound:
                    bound = slice_left
            return bound if bound > 1 else 1
        if len(self._bg) > 1:
            left = self._bg_slice_left
            return left if left > 1 else 1
        return None

    # ------------------------------------------------------------------
    # schedule-cycle support (:mod:`repro.sim.cycles`)
    # ------------------------------------------------------------------
    def cycle_state(self, now: int) -> object:
        """Per-server CBS state with deadlines relative to ``now``.

        An *idle-stale* server (no ready work, not throttled, deadline in
        the past) masks its ``(q, deadline)`` pair to ``None``: the wake-up
        rule is guaranteed to reset both on the next arrival, so the stale
        absolute values are unobservable and must not block a cycle match.
        Every other server keeps the raw pair — a future deadline matters
        to the bandwidth-safety test even while the server idles.
        """
        server_entries = []
        for sid in sorted(self.servers):
            s = self.servers[sid]
            if not s.ready and not s.throttled and s.deadline <= now:
                budget_state: tuple[int, int] | None = None
            else:
                budget_state = (s.q, s.deadline - now)
            server_entries.append(
                (
                    sid,
                    budget_state,
                    s.throttled,
                    tuple(p.pid for p in s.ready),
                    tuple(sorted(s.members)),
                    s.slice_left,
                    s.params.budget,
                    s.params.period,
                    s.params.policy,
                )
            )
        return (
            "cbs",
            tuple(server_entries),
            tuple(p.pid for p in self._bg),
            self._bg_slice_left,
        )

    def shift_times(self, delta: int) -> None:
        """Relocate every server deadline (replenishment events move with
        the kernel calendar)."""
        for sid in sorted(self.servers):
            self.servers[sid].deadline += delta

    def cycle_periods(self) -> tuple[int, ...]:
        """Server periods participate in the hyperperiod: replenishments
        and deadline postponements happen on the server grid."""
        return tuple(self.servers[sid].params.period for sid in sorted(self.servers))

    def cycle_counters(self) -> dict[str, int]:
        counters: dict[str, int] = {}
        for sid in sorted(self.servers):
            s = self.servers[sid]
            counters[f"server{sid}.consumed"] = s.consumed
            counters[f"server{sid}.exhaustions"] = s.exhaustions
        return counters

    def advance_cycle_counters(self, deltas: dict[str, int], cycles: int) -> None:
        for sid in sorted(self.servers):
            s = self.servers[sid]
            s.consumed += cycles * deltas.get(f"server{sid}.consumed", 0)
            s.exhaustions += cycles * deltas.get(f"server{sid}.exhaustions", 0)
