"""Proportional-share (stride) scheduler.

Section 3.2 of the paper points out "a possible inefficiency in scheduling
real-time periodic tasks by a class of algorithms (such as the Proportional
Share algorithms), for which the scheduling period is not explicitly
considered".  This stride scheduler is that class's representative: each
process holds *tickets*; the scheduler always runs the process with the
smallest virtual *pass*, advancing the pass by ``stride = STRIDE1 /
tickets`` per quantum of service.  CPU shares converge to ticket ratios,
but there is no per-task period, so allocation granularity is emergent —
exactly the weakness Figure 1 quantifies for reservations with a
badly-chosen server period.
"""

from __future__ import annotations



from repro.sched.base import Scheduler
from repro.sim.process import Process
from repro.sim.time import MS

#: Numerator for stride computation (tickets divide it).
STRIDE1 = 1 << 20


class StrideScheduler(Scheduler):
    """Classic stride scheduling (Waldspurger & Weihl, OSDI 1994)."""

    # pass values are relative (cycle_state re-bases them); no absolute
    # times, no policy periods, no monotone counters.
    cycle_defaults_ok = ("shift_times", "cycle_periods", "cycle_counters")

    def __init__(self, *, quantum: int = 1 * MS) -> None:
        super().__init__()
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._tickets: dict[int, int] = {}
        self._pass: dict[int, int] = {}
        self._remaining: dict[int, int] = {}
        self._ready: list[Process] = []
        self._global_pass = 0

    def attach(self, proc: Process, tickets: int) -> None:
        """Give ``proc`` a weight of ``tickets`` (>= 1)."""
        if tickets < 1:
            raise ValueError(f"tickets must be >= 1, got {tickets}")
        self._tickets[proc.pid] = tickets

    def _stride(self, proc: Process) -> int:
        return STRIDE1 // self._tickets.get(proc.pid, 1)

    def on_ready(self, proc: Process, now: int) -> None:
        if proc not in self._ready:
            # re-sync the pass so a long sleeper does not monopolise the CPU
            self._pass[proc.pid] = max(self._pass.get(proc.pid, 0), self._global_pass)
            self._remaining.setdefault(proc.pid, self.quantum)
            self._ready.append(proc)

    def on_block(self, proc: Process, now: int) -> None:
        if proc in self._ready:
            self._ready.remove(proc)

    def pick(self, now: int) -> Process | None:
        if not self._ready:
            return None
        best = min(self._ready, key=lambda p: (self._pass.get(p.pid, 0), p.pid))
        self._global_pass = self._pass.get(best.pid, 0)
        return best

    def charge(self, proc: Process, delta: int, now: int) -> None:
        left = self._remaining.get(proc.pid, self.quantum) - delta
        if left <= 0:
            # one quantum of service: advance the pass
            self._pass[proc.pid] = self._pass.get(proc.pid, 0) + self._stride(proc)
            left = self.quantum
        self._remaining[proc.pid] = left

    def time_until_internal_event(self, proc: Process, now: int) -> int | None:
        if len(self._ready) <= 1:
            return None
        return max(self._remaining.get(proc.pid, self.quantum), 1)

    def cycle_state(self, now: int) -> object:
        """Passes relative to the global pass, quantum remainders, tickets.

        Absolute passes grow without bound, but only their differences
        drive decisions (and :meth:`on_ready` clamps sleepers up to the
        global pass), so the digest normalises them against
        ``_global_pass``; ready processes always sit at or above it.
        """
        gpass = self._global_pass
        pids = sorted(set(self._pass) | set(self._remaining) | set(self._tickets))
        entries = tuple(
            (
                pid,
                max(self._pass.get(pid, 0) - gpass, 0),
                self._remaining.get(pid, self.quantum),
                self._tickets.get(pid, 1),
            )
            for pid in pids
        )
        return ("stride", entries, tuple(p.pid for p in self._ready))
