"""AQuoSA-compatible ``qres`` facade.

The paper's implementation talks to the scheduler through the AQuoSA
middleware API [23] (``qres_create_server``, ``qres_attach_thread``,
``qres_set_params``, ``qres_get_exec_time``, …).  This module exposes the
same vocabulary over :class:`repro.sched.cbs.CbsScheduler`, so code
written against AQuoSA's C API ports to the simulator almost verbatim —
and so the reproduction's naming stays recognisable to readers of the
original sources.

Times in this facade are **microseconds**, as in AQuoSA (the simulator's
native unit is nanoseconds).

Example::

    qres = QresFacade(scheduler)
    sid = qres.qres_create_server(budget_us=20_000, period_us=100_000)
    qres.qres_attach_thread(sid, proc)
    ...
    used = qres.qres_get_exec_time(sid)      # total CPU, us
"""

from __future__ import annotations

from repro.sched.cbs import CbsScheduler, Server, ServerParams
from repro.sim.process import Process
from repro.sim.time import US


class QresError(Exception):
    """Raised for the conditions the C API signals with error codes."""


class QresFacade:
    """AQuoSA-style server management over a :class:`CbsScheduler`."""

    def __init__(self, scheduler: CbsScheduler) -> None:
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def qres_create_server(
        self, budget_us: int, period_us: int, *, flags: str = "hard"
    ) -> int:
        """Create a reservation; returns the server id (``qres_sid_t``)."""
        try:
            params = ServerParams(
                budget=budget_us * US, period=period_us * US, policy=flags
            )
        except ValueError as exc:
            raise QresError(str(exc)) from exc
        return self.scheduler.create_server(params).sid

    def qres_destroy_server(self, sid: int) -> None:
        """Destroy a reservation (threads fall back to best-effort)."""
        self.scheduler.destroy_server(self._server(sid))

    def qres_attach_thread(self, sid: int, proc: Process) -> None:
        """Attach ``proc`` to server ``sid``.

        As in the C API, attaching a thread that is already attached is an
        error (``QRES_E_INCONSISTENT_STATE``) — detach it first; the
        scheduler-level :meth:`CbsScheduler.attach` migration shortcut is
        deliberately not exposed here.
        """
        server = self._server(sid)
        current = self.scheduler.server_of(proc)
        if current is not None:
            raise QresError(
                f"pid {proc.pid} is already attached to server {current.sid}"
            )
        self.scheduler.attach(proc, server)

    def qres_detach_thread(self, sid: int, proc: Process) -> None:
        """Detach ``proc`` from server ``sid``."""
        server = self._server(sid)
        if proc.pid not in server.members:
            raise QresError(f"pid {proc.pid} is not attached to server {sid}")
        self.scheduler.detach(proc)

    # ------------------------------------------------------------------
    # parameters and sensors
    # ------------------------------------------------------------------
    def qres_set_params(self, sid: int, budget_us: int, period_us: int) -> None:
        """Change the reservation at run time."""
        server = self._server(sid)
        try:
            params = ServerParams(
                budget=budget_us * US, period=period_us * US, policy=server.params.policy
            )
        except ValueError as exc:
            raise QresError(str(exc)) from exc
        self.scheduler.set_params(server, params)

    def qres_get_params(self, sid: int) -> tuple[int, int]:
        """Current (budget_us, period_us) of the reservation."""
        params = self._server(sid).params
        return params.budget // US, params.period // US

    def qres_get_exec_time(self, sid: int) -> int:
        """Total CPU time executed through the server, microseconds.

        This is the LFS++ sensor (``qres_get_time`` in the paper's text).
        """
        return self._server(sid).consumed // US

    def qres_get_curr_budget(self, sid: int) -> int:
        """Remaining budget in the current server period, microseconds."""
        return max(self._server(sid).q, 0) // US

    def qres_get_deadline(self, sid: int) -> int:
        """Current absolute scheduling deadline, microseconds."""
        return self._server(sid).deadline // US

    def qres_get_exhaustions(self, sid: int) -> int:
        """Budget-exhaustion count (the LFS binary-feedback sensor)."""
        return self._server(sid).exhaustions

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _server(self, sid: int) -> Server:
        server = self.scheduler.servers.get(sid)
        if server is None:
            raise QresError(f"no such server: {sid}")
        return server
