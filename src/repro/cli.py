"""Command-line experiment runner.

::

    repro-exp list                      # what can be reproduced
    repro-exp run fig01                 # one experiment, default params
    repro-exp run fig12 reps=100        # override keyword parameters
    repro-exp all                       # everything (long)

Parameters are passed as ``key=value`` pairs; values are parsed as Python
literals where possible (``reps=100``, ``horizons_s=(1.0,2.0)``).
"""

from __future__ import annotations

import argparse
import ast
import sys
import time

from repro.experiments import REGISTRY


def _parse_overrides(pairs: list[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            out[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            out[key] = raw
    return out


def _run_one(name: str, overrides: dict, csv_path: str | None = None) -> None:
    module = REGISTRY.get(name)
    if module is None:
        raise SystemExit(f"unknown experiment {name!r}; try 'repro-exp list'")
    start = time.perf_counter()
    result = module.run(**overrides)
    elapsed = time.perf_counter() - start
    print(result.to_text())
    print(f"[{name} completed in {elapsed:.1f}s]")
    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write(result.to_csv())
        print(f"[csv written to {csv_path}]")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-exp``."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Reproduce the tables and figures of 'Self-tuning "
        "Schedulers for Legacy Real-Time Applications' (EuroSys 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (e.g. fig01)")
    run_p.add_argument("overrides", nargs="*", help="key=value parameter overrides")
    run_p.add_argument("--csv", default=None, help="also write the result as CSV to this path")
    all_p = sub.add_parser("all", help="run every experiment with defaults")
    all_p.add_argument("--skip", nargs="*", default=[], help="experiments to skip")
    an_p = sub.add_parser("analyze", help="offline period analysis of a saved trace")
    an_p.add_argument("trace", help="trace file (qtrace v1 format)")
    an_p.add_argument("--pid", type=int, default=None, help="restrict to one pid")
    an_p.add_argument("--fmin", type=float, default=1.0, help="scan floor, Hz")
    an_p.add_argument("--fmax", type=float, default=100.0, help="scan ceiling, Hz")
    an_p.add_argument("--df", type=float, default=0.1, help="frequency step, Hz")
    an_p.add_argument("--horizon", type=float, default=2.0, help="observation horizon, s")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name, module in REGISTRY.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    if args.command == "run":
        _run_one(args.experiment, _parse_overrides(args.overrides), csv_path=args.csv)
        return 0
    if args.command == "all":
        for name in REGISTRY:
            if name in args.skip:
                continue
            _run_one(name, {})
            print()
        return 0
    if args.command == "analyze":
        _analyze(args)
        return 0
    return 1  # pragma: no cover


def _analyze(args) -> None:
    """Offline period detection on a saved trace."""
    from repro.core.analyser import AnalyserConfig, PeriodAnalyser
    from repro.core.spectrum import SpectrumConfig
    from repro.sim.time import SEC
    from repro.tracer import EventKind, filter_trace, load_trace

    events = load_trace(args.trace)
    events = filter_trace(events, pid=args.pid, kinds=[EventKind.SYSCALL_ENTRY, EventKind.WAKEUP])
    if not events:
        raise SystemExit("no matching events in the trace")
    pids = sorted({e.pid for e in events})
    print(f"{len(events)} events, pids {pids}, span "
          f"{(events[-1].time - events[0].time) / SEC:.3f} s")

    analyser = PeriodAnalyser(
        AnalyserConfig(
            spectrum=SpectrumConfig(f_min=args.fmin, f_max=args.fmax, df=args.df),
            horizon_ns=int(args.horizon * SEC),
        )
    )
    analyser.add_times([e.time for e in events])
    estimate = analyser.analyse(events[-1].time)
    if estimate is None:
        print("verdict: no periodic structure detected")
        return
    print(f"verdict: periodic at {estimate.frequency:.2f} Hz "
          f"(period {estimate.period_ns / 1e6:.3f} ms, from {estimate.n_events} events)")
    if estimate.detail is not None and estimate.detail.candidates:
        top = sorted(
            zip(estimate.detail.candidates, estimate.detail.harmonic_sums),
            key=lambda cs: -cs[1],
        )[:5]
        print("top candidates (freq Hz : harmonic sum):")
        for freq, total in top:
            print(f"  {freq:8.2f} : {total:.1f}")


if __name__ == "__main__":
    sys.exit(main())
