"""Command-line experiment runner.

::

    repro-exp list                      # what can be reproduced
    repro-exp run fig01                 # one experiment, default params
    repro-exp run fig12 reps=100        # override keyword parameters
    repro-exp run fig06 --jobs 4        # shard inner repetitions
    repro-exp all --jobs 4              # everything, registry sharded
    repro-exp bench --output BENCH.json # timed sweep, machine-readable
    repro-exp bench --micro             # hot-path microbenchmarks
    repro-exp trace fig13               # export a Perfetto/Chrome trace
    repro-exp faults trace-loss         # faulted playback + guard report
    repro-exp fleet run cdn.toml --jobs 8 --stream out.jsonl
                                        # batched fleet of scenario sims
    repro-exp tune demo.toml --jobs 4   # auto-tune the controller knobs

Parameters are passed as ``key=value`` pairs; values are parsed as Python
literals where possible (``reps=100``, ``horizons_s=(1.0,2.0)``).

Results are cached on disk (``$REPRO_CACHE_DIR`` or ``./.repro-cache``)
keyed on experiment + parameters + code digest; pass ``--no-cache`` to
force recomputation or ``--cache-dir`` to relocate the store.
"""

from __future__ import annotations

import argparse
import ast
import sys

from repro.experiments import REGISTRY


def _parse_overrides(pairs: list[str]) -> dict:
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            out[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            out[key] = raw
    return out


def _make_cache(args):
    """Build the ResultCache implied by --no-cache/--cache-dir."""
    if getattr(args, "no_cache", False):
        return None
    from repro.experiments.cache import ResultCache

    return ResultCache(getattr(args, "cache_dir", None))


def _add_exec_flags(subparser) -> None:
    subparser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="process-pool width (default: 1, serial)"
    )
    subparser.add_argument(
        "--no-cache", action="store_true", help="do not read or write the on-disk result cache"
    )
    subparser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )


def _run_one(
    name: str,
    overrides: dict,
    csv_path: str | None = None,
    *,
    jobs: int = 1,
    cache=None,
) -> None:
    from repro.experiments.runner import run_experiment

    if name not in REGISTRY:
        raise SystemExit(f"unknown experiment {name!r}; try 'repro-exp list'")
    outcome = run_experiment(name, overrides, jobs=jobs, cache=cache)
    print(outcome.result.to_text())
    if outcome.cached:
        print(f"[{name} served from cache]")
    else:
        print(f"[{name} completed in {outcome.elapsed_s:.1f}s]")
    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write(outcome.result.to_csv())
        print(f"[csv written to {csv_path}]")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-exp``."""
    parser = argparse.ArgumentParser(
        prog="repro-exp",
        description="Reproduce the tables and figures of 'Self-tuning "
        "Schedulers for Legacy Real-Time Applications' (EuroSys 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment name (e.g. fig01)")
    run_p.add_argument("overrides", nargs="*", help="key=value parameter overrides")
    run_p.add_argument("--csv", default=None, help="also write the result as CSV to this path")
    _add_exec_flags(run_p)
    all_p = sub.add_parser("all", help="run every experiment with defaults")
    all_p.add_argument("--skip", nargs="*", default=[], help="experiments to skip")
    _add_exec_flags(all_p)
    bench_p = sub.add_parser(
        "bench", help="timed sweep with a machine-readable BENCH_*.json report"
    )
    bench_p.add_argument(
        "experiments", nargs="*", help="experiments to benchmark (default: the whole registry)"
    )
    bench_p.add_argument(
        "--output", default=None, metavar="PATH", help="report path (default: BENCH_<utc>.json)"
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down parameters for the expensive sweeps (CI smoke setting)",
    )
    bench_p.add_argument(
        "--micro",
        action="store_true",
        help="run the hot-path microbenchmarks instead of the experiment "
        "sweep (positional args then select metrics: calendar, sim, "
        "spectrum, detector, sim-obs, fastforward, fleet, tune)",
    )
    _add_exec_flags(bench_p)
    trace_p = sub.add_parser(
        "trace", help="run an instrumented scenario and export a Perfetto/Chrome trace"
    )
    trace_p.add_argument(
        "scenario", help="trace scenario (fig13, fig13-lfs, daemon, qtrace-agent)"
    )
    trace_p.add_argument("overrides", nargs="*", help="key=value scenario overrides")
    trace_p.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="trace JSON path (default: <scenario>.perfetto.json)",
    )
    trace_p.add_argument(
        "--csv", default=None, metavar="PATH", help="also dump the metric timeseries as CSV"
    )
    trace_p.add_argument(
        "--summary", action="store_true", help="print a text digest of the recorded telemetry"
    )
    faults_p = sub.add_parser(
        "faults", help="run a fault-injection scenario and report the degradation guards"
    )
    faults_p.add_argument(
        "scenario",
        help="fault scenario (trace-loss, trace-jitter, ring-overrun, "
        "clock-coarse, overload, mode-switch, saturation)",
    )
    faults_p.add_argument("overrides", nargs="*", help="key=value scenario overrides")
    faults_p.add_argument(
        "--output",
        "-o",
        default=None,
        metavar="PATH",
        help="also export the telemetry as a Perfetto/Chrome trace JSON",
    )
    lint_p = sub.add_parser(
        "lint", help="determinism & sim-invariant static analysis of the source tree"
    )
    from repro.analysis.lint.cli import build_parser as _build_lint_parser

    _build_lint_parser(lint_p)
    sim_p = sub.add_parser(
        "simulate",
        help="run a canonical scenario and print its equivalence digest "
        "(optionally through the schedule-cycle fast-forward)",
    )
    sim_p.add_argument(
        "scenario", help="canonical scenario name (see repro.bench.scenarios)"
    )
    sim_p.add_argument(
        "--duration", type=float, default=2.0, help="simulated horizon, seconds"
    )
    sim_p.add_argument(
        "--fast-forward",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="skip repeated schedule cycles analytically (default: off, so "
        "golden traces are produced by full stepping)",
    )
    sim_p.add_argument("--json", action="store_true", help="machine-readable output")
    fleet_p = sub.add_parser(
        "fleet", help="fleet-scale scenario DSL: expand templates, run batched sims"
    )
    fleet_sub = fleet_p.add_subparsers(dest="fleet_command", required=True)
    fr_p = fleet_sub.add_parser(
        "run", help="run a scenario or template TOML through the batched engine"
    )
    fr_p.add_argument("spec", help="scenario or template TOML (templates have a [template] table)")
    fr_p.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes (default: 1, inline)"
    )
    fr_p.add_argument(
        "--chunksize",
        type=int,
        default=16,
        metavar="K",
        help="sims packed per pool task (default: 16; result-invariant)",
    )
    fr_p.add_argument(
        "--stream",
        default=None,
        metavar="PATH",
        help="write one JSON line per finished sim to PATH, in fleet order",
    )
    fr_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="run only the first N sims of the expansion",
    )
    fr_p.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="full stepping only (fast-forward is bit-identical; this is a debugging aid)",
    )
    fr_p.add_argument("--json", action="store_true", help="machine-readable aggregate output")
    fe_p = fleet_sub.add_parser(
        "expand", help="expand a template without running it (count or list the specs)"
    )
    fe_p.add_argument("spec", help="scenario or template TOML")
    fe_p.add_argument(
        "--limit", type=int, default=None, metavar="N", help="list at most N spec names"
    )
    fe_p.add_argument("--json", action="store_true", help="machine-readable spec dump")
    tune_p = sub.add_parser(
        "tune",
        help="auto-tune the controller parameter space against workload "
        "classes; writes a deterministic TUNE_*.json report",
    )
    tune_p.add_argument("spec", help="tune spec TOML (see docs/tuning.md)")
    tune_p.add_argument(
        "--budget", type=int, default=None, metavar="B",
        help="override the spec's per-class evaluation budget",
    )
    tune_p.add_argument(
        "--seed", type=int, default=None, metavar="S", help="override the spec's master seed"
    )
    tune_p.add_argument(
        "--method", default=None, metavar="M",
        help="override the global search method (lhs, random, cmaes)",
    )
    tune_p.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="report path (default: TUNE_<name>.json next to the cwd)",
    )
    tune_p.add_argument("--json", action="store_true", help="print the report to stdout as JSON")
    _add_exec_flags(tune_p)
    an_p = sub.add_parser("analyze", help="offline period analysis of a saved trace")
    an_p.add_argument("trace", help="trace file (qtrace v1 format)")
    an_p.add_argument("--pid", type=int, default=None, help="restrict to one pid")
    an_p.add_argument("--fmin", type=float, default=1.0, help="scan floor, Hz")
    an_p.add_argument("--fmax", type=float, default=100.0, help="scan ceiling, Hz")
    an_p.add_argument("--df", type=float, default=0.1, help="frequency step, Hz")
    an_p.add_argument("--horizon", type=float, default=2.0, help="observation horizon, s")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name, module in REGISTRY.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    if args.command == "run":
        _run_one(
            args.experiment,
            _parse_overrides(args.overrides),
            csv_path=args.csv,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
        return 0
    if args.command == "all":
        from repro.experiments.runner import run_many

        names = [name for name in REGISTRY if name not in args.skip]
        outcomes = run_many(names, jobs=args.jobs, cache=_make_cache(args))
        for outcome in outcomes:
            print(outcome.result.to_text())
            status = "served from cache" if outcome.cached else f"{outcome.elapsed_s:.1f}s"
            print(f"[{outcome.name}: {status}]")
            print()
        return 0
    if args.command == "bench":
        return _bench(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "faults":
        return _faults(args)
    if args.command == "lint":
        from repro.analysis.lint.cli import run_lint

        return run_lint(args)
    if args.command == "simulate":
        return _simulate(args)
    if args.command == "fleet":
        return _fleet(args)
    if args.command == "tune":
        return _tune(args)
    if args.command == "analyze":
        _analyze(args)
        return 0
    return 1  # pragma: no cover


def _bench(args) -> int:
    """Timed registry sweep; writes the machine-readable BENCH report."""
    import time

    from repro.experiments.report import BENCH_QUICK_OVERRIDES, write_bench_json
    from repro.experiments.runner import run_many

    if args.micro:
        return _bench_micro(args)
    names = args.experiments or list(REGISTRY)
    for name in names:
        if name not in REGISTRY:
            raise SystemExit(f"unknown experiment {name!r}; try 'repro-exp list'")
    overrides = {n: dict(BENCH_QUICK_OVERRIDES.get(n, {})) for n in names} if args.quick else {}
    outcomes = run_many(names, overrides, jobs=args.jobs, cache=_make_cache(args))
    for outcome in outcomes:
        status = "cache" if outcome.cached else f"{outcome.elapsed_s:6.1f}s"
        print(f"{outcome.name:16s} {status}")
    path = args.output or time.strftime("BENCH_%Y%m%dT%H%M%SZ.json", time.gmtime())
    write_bench_json(path, outcomes, overrides=overrides)
    print(f"[bench report written to {path}]")
    return 0


def _bench_micro(args) -> int:
    """Hot-path microbenchmark sweep; same BENCH_*.json schema, ``micro`` key."""
    import time

    from repro.bench.micro import MICRO_REGISTRY, run_micro
    from repro.experiments.report import write_bench_json

    names = args.experiments or list(MICRO_REGISTRY)
    for name in names:
        if name not in MICRO_REGISTRY:
            raise SystemExit(
                f"unknown microbenchmark {name!r}; known: {', '.join(MICRO_REGISTRY)}"
            )
    results = run_micro(names)
    for r in results:
        print(f"{r.name:10s} {r.value:18,.0f} {r.unit:10s} ({r.elapsed_s:.2f}s)")
    path = args.output or time.strftime("BENCH_%Y%m%dT%H%M%SZ.json", time.gmtime())
    write_bench_json(path, [], micro=results)
    print(f"[bench report written to {path}]")
    return 0


def _simulate(args) -> int:
    """Run a canonical scenario; print its digest and fast-forward report."""
    import json

    from repro.bench.golden import equivalence_digest
    from repro.bench.scenarios import ALL_SCENARIOS
    from repro.sim.time import SEC

    if args.scenario not in ALL_SCENARIOS:
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; known: {', '.join(sorted(ALL_SCENARIOS))}"
        )
    duration_ns = int(args.duration * SEC)
    digest, report = equivalence_digest(
        args.scenario, duration_ns, fast_forward=args.fast_forward
    )
    if args.json:
        payload = {
            "scenario": args.scenario,
            "duration_ns": duration_ns,
            "digest": digest,
            "fast_forward": report.to_jsonable() if report is not None else None,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.scenario}: digest {digest}")
    if report is not None:
        if report.detected:
            print(
                f"fast-forward: cycle of {report.cycle_len} ns detected at "
                f"{report.cycle_start} ns after {report.boundaries_sampled} "
                f"boundary samples; skipped {report.cycles_skipped} cycles "
                f"({report.skipped_ns} simulated ns)"
            )
        elif report.enabled:
            print(
                f"fast-forward: enabled (hyperperiod {report.hyperperiod} ns, "
                f"{report.boundaries_sampled} boundaries sampled) but no cycle "
                "repeated within the horizon"
            )
        else:
            print(f"fast-forward: disabled ({report.reason})")
    return 0


def _fleet_specs(path: str):
    """Load ``path`` as a template or single scenario; return (specs, size).

    ``specs`` is a lazy iterator; ``size`` is the declared expansion size
    (1 for a plain scenario) before any ``--limit``.
    """
    from pathlib import Path

    from repro.fleet import expand_template, load_scenario, load_template
    from repro.fleet._toml import load_toml
    from repro.fleet.spec import SpecError

    try:
        doc = load_toml(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise SystemExit(f"cannot read {path!r}: {exc}") from None
    except ValueError as exc:
        raise SystemExit(f"{path}: {exc}") from None
    try:
        if "template" in doc:
            template = load_template(path)
            return expand_template(template), template.size
        return iter([load_scenario(path)]), 1
    except SpecError as exc:
        raise SystemExit(f"{path}: {exc}") from None


def _fleet(args) -> int:
    """Fleet verbs: ``expand`` (inspect a template) and ``run`` (execute)."""
    import itertools
    import json
    import time

    from repro.fleet import run_fleet
    from repro.sim.time import SEC

    specs, size = _fleet_specs(args.spec)
    if args.limit is not None:
        if args.limit < 1:
            raise SystemExit(f"--limit must be >= 1, got {args.limit}")
        specs = itertools.islice(specs, args.limit)
        size = min(size, args.limit)
    if args.fleet_command == "expand":
        if args.json:
            print(json.dumps([spec.to_jsonable() for spec in specs], indent=2, sort_keys=True))
        else:
            for spec in specs:
                print(spec.name)
            print(f"[{size} sims]")
        return 0
    t0 = time.perf_counter()
    aggregate = run_fleet(
        specs,
        jobs=args.jobs,
        chunksize=args.chunksize,
        fast_forward=not args.no_fast_forward,
        stream=args.stream,
    )
    elapsed = time.perf_counter() - t0
    if args.json:
        payload = aggregate.to_jsonable()
        payload["digest"] = aggregate.digest()
        payload["elapsed_s"] = elapsed
        payload["sims_per_s"] = aggregate.sims / elapsed if elapsed > 0 else 0.0
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"{aggregate.sims} sims, {aggregate.simulated_ns / SEC:.1f} simulated s "
        f"in {elapsed:.1f}s wall "
        f"({aggregate.sims / elapsed if elapsed > 0 else 0.0:,.1f} sims/s)"
    )
    print(
        f"latency: mean {aggregate.lat_mean / 1e6:.3f} ms, "
        f"p99 <= {aggregate.quantile(0.99) / 1e6:.3f} ms, "
        f"max {aggregate.lat_max / 1e6:.3f} ms over {aggregate.samples:,d} samples"
    )
    print(
        f"misses: {aggregate.misses:,d} ({100.0 * aggregate.miss_rate:.4f}%), "
        f"crashes: {aggregate.crashes}, fast-forwarded: {aggregate.ff_detected}/{aggregate.sims}"
    )
    if args.stream:
        print(f"[stream written to {args.stream}]")
    print(f"digest {aggregate.digest()}")
    return 0


def _tune(args) -> int:
    """Auto-tune the controller space; write the canonical TUNE report.

    The report file is a pure function of the tune spec (no wall-clock
    data) so reruns and different ``--jobs`` values are byte-identical;
    the run statistics (evaluations, cache hits, simulations executed,
    elapsed time) go to stdout only.
    """
    import dataclasses
    import json
    import time

    from repro.fleet.spec import SpecError
    from repro.tune import run_tune, write_tune_json
    from repro.tune.service import load_tune_spec

    try:
        spec = load_tune_spec(args.spec)
        overrides = {
            key: value
            for key, value in (
                ("budget", args.budget), ("seed", args.seed), ("method", args.method)
            )
            if value is not None
        }
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.spec!r}: {exc}") from None
    except (SpecError, ValueError) as exc:
        raise SystemExit(f"{args.spec}: {exc}") from None
    t0 = time.perf_counter()
    report = run_tune(spec, jobs=args.jobs, cache=_make_cache(args))
    elapsed = time.perf_counter() - t0
    if args.json:
        print(json.dumps(report.payload, indent=2, sort_keys=True))
    path = args.output or f"TUNE_{spec.name}.json"
    write_tune_json(path, report.payload)
    for key in sorted(report.payload["classes"]):
        cls = report.payload["classes"][key]
        print(
            f"{key:16s} default {cls['default_score']:10.3f} -> "
            f"best {cls['best_score']:10.3f} (improvement {cls['improvement']:+.3f})"
        )
    print(
        f"[{report.evaluations} evaluations, {report.cache_hits} cache hits, "
        f"{report.sims_run} sims in {elapsed:.1f}s]"
    )
    print(f"[tune report written to {path}]")
    return 0


def _trace(args) -> int:
    """Run an instrumented scenario; export the Perfetto/Chrome artifact."""
    from repro.obs.export import summary_text, timeseries_csv, write_chrome_trace
    from repro.obs.scenarios import TRACE_SCENARIOS, run_trace_scenario

    if args.scenario not in TRACE_SCENARIOS:
        raise SystemExit(
            f"unknown trace scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(TRACE_SCENARIOS))}"
        )
    telemetry = run_trace_scenario(args.scenario, _parse_overrides(args.overrides))
    path = args.output or f"{args.scenario}.perfetto.json"
    write_chrome_trace(telemetry, path)
    cats = ", ".join(sorted(telemetry.span_categories()))
    print(
        f"[trace written to {path}: {len(telemetry.spans)} spans ({cats}), "
        f"{len(telemetry.instants)} instants, {len(telemetry.metrics)} metric series]"
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(timeseries_csv(telemetry))
        print(f"[timeseries csv written to {args.csv}]")
    if args.summary:
        print(summary_text(telemetry))
    return 0


def _faults(args) -> int:
    """Run a fault scenario; print the guard report, optionally export."""
    from repro.faults.scenarios import FAULT_SCENARIOS, run_fault_scenario

    if args.scenario not in FAULT_SCENARIOS:
        raise SystemExit(
            f"unknown fault scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(FAULT_SCENARIOS))}"
        )
    run = run_fault_scenario(args.scenario, _parse_overrides(args.overrides))
    print(run.report_text())
    if args.output:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(run.telemetry, args.output)
        print(f"[trace written to {args.output}]")
    return 0


def _analyze(args) -> None:
    """Offline period detection on a saved trace."""
    from repro.core.analyser import AnalyserConfig, PeriodAnalyser
    from repro.core.spectrum import SpectrumConfig
    from repro.sim.time import SEC
    from repro.tracer import EventKind, filter_trace, load_trace

    events = load_trace(args.trace)
    events = filter_trace(events, pid=args.pid, kinds=[EventKind.SYSCALL_ENTRY, EventKind.WAKEUP])
    if not events:
        raise SystemExit("no matching events in the trace")
    pids = sorted({e.pid for e in events})
    print(f"{len(events)} events, pids {pids}, span "
          f"{(events[-1].time - events[0].time) / SEC:.3f} s")

    analyser = PeriodAnalyser(
        AnalyserConfig(
            spectrum=SpectrumConfig(f_min=args.fmin, f_max=args.fmax, df=args.df),
            horizon_ns=int(args.horizon * SEC),
        )
    )
    analyser.add_times([e.time for e in events])
    estimate = analyser.analyse(events[-1].time)
    if estimate is None:
        print("verdict: no periodic structure detected")
        return
    print(f"verdict: periodic at {estimate.frequency:.2f} Hz "
          f"(period {estimate.period_ns / 1e6:.3f} ms, from {estimate.n_events} events)")
    if estimate.detail is not None and estimate.detail.candidates:
        top = sorted(
            zip(estimate.detail.candidates, estimate.detail.harmonic_sums, strict=True),
            key=lambda cs: -cs[1],
        )[:5]
        print("top candidates (freq Hz : harmonic sum):")
        for freq, total in top:
            print(f"  {freq:8.2f} : {total:.1f}")


if __name__ == "__main__":
    sys.exit(main())
