"""Figure 2: minimum bandwidth for three tasks sharing one reservation.

Tasks C = (3, 5, 5) ms, P = (15, 20, 30) ms (cumulative utilisation
~61.7%) are scheduled with Rate Monotonic priorities inside a single
reservation; the plot shows the minimum bandwidth vs the server period,
against the flat line a set of dedicated per-task servers would need
(exactly the cumulative utilisation).

Expected shape (paper): the single-reservation curve sits well above the
utilisation line everywhere (waste roughly 6-41%), with no obvious
relationship to the task periods.
"""

from __future__ import annotations

from repro.analysis import Task, min_bandwidth_shared_edf, min_bandwidth_shared_rm
from repro.analysis.tasks import total_utilisation
from repro.experiments.base import ExperimentResult, Series


def run(
    *,
    t_min_ms: float = 1.0,
    t_max_ms: float = 60.0,
    t_step_ms: float = 0.5,
    include_edf: bool = False,
) -> ExperimentResult:
    """Sweep the shared-server period; optionally add the EDF-inside curve."""
    tasks = [Task(3, 15), Task(5, 20), Task(5, 30)]
    util = total_utilisation(tasks)
    result = ExperimentResult(
        experiment="fig02",
        title="Minimum bandwidth: three RM tasks in one reservation vs dedicated servers",
    )
    shared = Series(name="single_reservation")
    dedicated = Series(name="multiple_reservations")
    edf = Series(name="single_reservation_edf")
    t = t_min_ms
    while t <= t_max_ms + 1e-9:
        b = min_bandwidth_shared_rm(tasks, t)
        shared.add(round(t, 6), b if b is not None else float("nan"))
        dedicated.add(round(t, 6), util)
        if include_edf:
            be = min_bandwidth_shared_edf(tasks, t)
            edf.add(round(t, 6), be if be is not None else float("nan"))
        t += t_step_ms
    result.series.append(shared)
    result.series.append(dedicated)
    if include_edf:
        result.series.append(edf)

    feasible = [b for b in shared.y if b == b]  # drop NaNs
    result.add_row(metric="cumulative_utilisation", value=util)
    result.add_row(metric="min_single_reservation_bandwidth", value=min(feasible))
    result.add_row(metric="max_single_reservation_bandwidth", value=max(feasible))
    result.add_row(metric="min_waste", value=min(feasible) - util)
    result.add_row(metric="max_waste", value=max(feasible) - util)
    return result
