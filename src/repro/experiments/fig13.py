"""Figures 13 & 14: LFS vs LFS++ on a 25 fps video.

mplayer plays a 1400-frame 25 fps video under adaptive reservations, once
with the original LFS (binary saturation feedback, fixed reservation
period, sampled every server period) and once with LFS++ (consumed-time
sensor, quantile predictor, period from the analyser).  Rate detection is
disabled for the LFS run exactly as in §5.4 ("to make the results more
reliable").

Reported, as in the paper:
- the inter-frame-time series and the reserved-fraction series (Fig. 13),
- their CDFs (Fig. 14),
- mean/std of the inter-frame time for both laws (the paper measured
  39.992 ms / 11.287 ms for LFS and 40.925 ms / 4.631 ms for LFS++).

Expected shape: equal ~40 ms means; LFS takes ~100 frames to bring the
inter-frame time under control while LFS++ adapts almost immediately, so
LFS's std and CDF tail are several times worse.
"""

from __future__ import annotations

import numpy as np

from repro.core import Lfs, LfsPlusPlus, SelfTuningRuntime
from repro.core.controller import TaskControllerConfig
from repro.core.spectrum import SpectrumConfig
from repro.core.analyser import AnalyserConfig
from repro.experiments.base import ExperimentResult, Series
from repro.metrics import InterFrameProbe, cdf_points
from repro.sim.time import MS, SEC
from repro.workloads import VideoPlayer
from repro.workloads.desktop import desktop_load, desktop_suite
from repro.workloads.mplayer import VideoPlayerConfig

#: analyser band for the 25 fps video (fundamental 25 Hz, harmonics in band)
VIDEO_SPECTRUM = SpectrumConfig(f_min=20.0, f_max=100.0, df=0.1)


def run_one(law_name: str, *, n_frames: int, seed: int) -> dict:
    """One playback run under the given feedback law; returns raw series."""
    rt = SelfTuningRuntime()
    player = VideoPlayer(VideoPlayerConfig(seed=seed))
    proc = rt.spawn("mplayer", player.program(n_frames))
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(rt.kernel)
    # the desktop background mix: reservations only matter because the
    # best-effort class (where budget-exhausted tasks overflow) is busy
    for i, cfg in enumerate(desktop_suite(seed + 40)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))

    if law_name == "lfs":
        feedback = Lfs()
        controller_config = TaskControllerConfig(
            sampling_period=40 * MS, use_period_estimate=False
        )
        analyser_config = None
    elif law_name == "lfs++":
        feedback = LfsPlusPlus()
        controller_config = TaskControllerConfig(sampling_period=100 * MS)
        analyser_config = AnalyserConfig(spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC)
    else:
        raise ValueError(f"unknown law {law_name!r}")

    task = rt.adopt(
        proc,
        feedback=feedback,
        controller_config=controller_config,
        analyser_config=analyser_config,
    )
    rt.run((n_frames * 40 + 2000) * MS)

    ift_ms = np.array(probe.inter_frame_times, dtype=np.float64) / MS
    bw_t = np.array([t for t, _ in task.controller.granted_history], dtype=np.float64) / SEC
    bw = np.array([g.bandwidth for _, g in task.controller.granted_history])
    # cut the post-playback tail (requests decay once the player exits)
    active = bw_t <= (n_frames * 40 / 1000.0)
    return {
        "ift_ms": ift_ms,
        "bw_time_s": bw_t[active],
        "bw": bw[active],
        "frames": player.frames_played,
        "utilisation": player.config.utilisation,
    }


def run(*, n_frames: int = 1400, seed: int = 13) -> ExperimentResult:
    """Compare LFS and LFS++ on the same video."""
    result = ExperimentResult(
        experiment="fig13",
        title="Inter-frame times and reserved CPU fraction: LFS vs LFS++ (Figs. 13-14)",
    )
    runs = {name: run_one(name, n_frames=n_frames, seed=seed) for name in ("lfs", "lfs++")}

    for name, data in runs.items():
        ift = data["ift_ms"]
        # Fig. 13 time series
        s_ift = Series(name=f"ift_ms[{name}]")
        for i, v in enumerate(ift):
            s_ift.add(i + 1, float(v))
        result.series.append(s_ift)
        s_bw = Series(name=f"reserved_fraction[{name}]")
        for t, b in zip(data["bw_time_s"], data["bw"], strict=True):
            s_bw.add(float(t), float(b))
        result.series.append(s_bw)
        # Fig. 14 CDFs
        xs, ps = cdf_points(ift)
        s_cdf = Series(name=f"ift_cdf[{name}]")
        for x, p in zip(xs[:: max(1, len(xs) // 200)], ps[:: max(1, len(xs) // 200)], strict=True):
            s_cdf.add(float(x), float(p))
        result.series.append(s_cdf)

        late = np.where(ift > 80.0)[0]
        steady = ift[len(ift) // 5 :]
        result.add_row(
            law=name.upper(),
            ift_mean_ms=float(ift.mean()),
            ift_std_ms=float(ift.std(ddof=1)),
            steady_std_ms=float(steady.std(ddof=1)),
            last_frame_over_80ms=int(late[-1] + 1) if late.size else 0,
            frames_over_80ms=int(late.size),
            mean_reserved_fraction=float(np.mean(data["bw"])),
        )
    result.notes.append(
        f"video utilisation ~{runs['lfs']['utilisation']:.2f}; expected: equal "
        "~40ms means, LFS std several times larger, LFS late frames up to "
        "~100, LFS++ almost immediate"
    )
    return result
