"""Figure 11: PMF of the detected frequency vs tracing time.

Tracing + detection is repeated over independent runs at 200 ms and
2000 ms tracing times.  At 200 ms the PMF spreads over a few Hz around
32.5 with occasional hits on a harmonic; at 2000 ms it concentrates
tightly on 32.5 Hz.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.common import build_mp3_scenario, detect_frequency, trace_mp3
from repro.metrics import pmf
from repro.sim.time import SEC


def run(
    *,
    reps: int = 60,
    tracing_times_s: tuple[float, ...] = (0.2, 2.0),
    seed0: int = 1100,
) -> ExperimentResult:
    """Detect over ``reps`` runs per tracing time and report the PMFs."""
    result = ExperimentResult(
        experiment="fig11",
        title="PMF of the detected frequency at short vs long tracing times",
    )
    duration = int(max(tracing_times_s) * SEC) + SEC // 2
    traces = []
    for r in range(reps):
        scenario = build_mp3_scenario(seed=seed0 + r, n_frames=int(duration / SEC * 33) + 10)
        traces.append(np.array(trace_mp3(scenario, duration), dtype=np.int64))

    for t_s in tracing_times_s:
        upto = int(t_s * SEC)
        detections = []
        for trace in traces:
            f = detect_frequency(trace[trace < upto], horizon_ns=upto, now=upto)
            if f is not None:
                detections.append(f)
        dist = pmf(detections, bin_width=0.5)
        curve = Series(name=f"pmf_{t_s}s")
        for f, p in dist.items():
            curve.add(f, p)
        result.series.append(curve)
        arr = np.array(detections)
        in_band = arr[(arr > 30.0) & (arr < 40.0)]
        result.add_row(
            tracing_s=t_s,
            detections=len(detections),
            mode_hz=max(dist, key=dist.get) if dist else None,
            mode_mass=max(dist.values()) if dist else 0.0,
            fraction_30_40hz=len(in_band) / len(arr) if len(arr) else 0.0,
            harmonic_hits=int((arr >= 60.0).sum()),
        )
    result.notes.append(
        "the PMF must tighten around 32.5 Hz as the tracing time grows; "
        "occasional harmonic hits may persist (as in the paper)"
    )
    return result
