"""Robustness sweep: fault intensity vs deadline misses, guards on/off.

The qualitative claim under test is the paper's pitch that the §3/§4
loop *degrades gracefully* when its observation channel degrades.  For a
chosen fault family (any :mod:`repro.faults.scenarios` entry) the sweep
runs the Figure 13 playback at increasing fault intensity, twice per
point:

- **hardened** — the degradation guards on: analyser anomaly rejection
  and period band, controller last-good fallback with decay, and (for
  the saturation fault) the ``u_min`` guarantee plus the supervisor's
  starvation watchdog;
- **unhardened** — the same fault hitting the seed configuration.

Reported per intensity and arm: deadline-miss ratio (inter-frame time
beyond the 80 ms threshold fig13 uses), mean relative period-estimate
error after fault onset, frames completed, and the guard counters
(fallbacks, watchdog repairs, injected faults).  Expected shape: the
hardened miss ratio grows smoothly with intensity while the unhardened
arm falls off a cliff once the fault defeats its assumption — the
contrast is starkest for ``fault="saturation"``, where the unhardened
task is compressed into starvation.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, Series
from repro.faults.scenarios import FAULT_SCENARIOS


def _one_rep(fault: str, intensity: float, hardened: bool, n_frames: int, seed: int) -> dict:
    """One faulted playback (one work unit); returns the metrics dict."""
    run_fn = FAULT_SCENARIOS[fault]
    return run_fn(
        intensity=intensity, n_frames=n_frames, seed=seed, hardened=hardened
    ).metrics


def run(
    *,
    fault: str = "saturation",
    intensities: tuple = (0.0, 0.25, 0.5, 0.75, 1.0),
    reps: int = 2,
    n_frames: int = 300,
    seed0: int = 4200,
    map_fn=map,
) -> ExperimentResult:
    """Sweep ``fault`` intensity, hardened vs unhardened.

    ``map_fn`` shards the (intensity x arm x repetition) grid; every
    repetition is an independent simulation seeded ``seed0 + r``.
    """
    if fault not in FAULT_SCENARIOS:
        raise ValueError(f"unknown fault {fault!r}; known: {sorted(FAULT_SCENARIOS)}")
    result = ExperimentResult(
        experiment="robustness",
        title=f"Graceful degradation under {fault!r} faults: guards on vs off",
    )
    grid = [
        (intensity, hardened, seed0 + r)
        for intensity in intensities
        for hardened in (True, False)
        for r in range(reps)
    ]
    units = list(
        map_fn(
            _rep_unit,
            [(fault, intensity, hardened, n_frames, seed) for intensity, hardened, seed in grid],
        )
    )

    curves = {True: Series(name="miss_ratio[hardened]"), False: Series(name="miss_ratio[unhardened]")}
    for intensity in intensities:
        for hardened in (True, False):
            metrics = [
                m
                for (i, h, _), m in zip(grid, units, strict=True)
                if i == intensity and h == hardened
            ]
            miss = float(np.mean([m["miss_ratio"] for m in metrics]))
            errors = [m["period_error"] for m in metrics if not np.isnan(m["period_error"])]
            curves[hardened].add(float(intensity), miss)
            result.add_row(
                fault=fault,
                intensity=float(intensity),
                guards="on" if hardened else "off",
                miss_ratio=miss,
                period_error=float(np.mean(errors)) if errors else None,
                frames_played=float(np.mean([m["frames_played"] for m in metrics])),
                fallbacks=int(sum(m["controller_fallbacks"] for m in metrics)),
                watchdog_repairs=int(sum(m["watchdog_repairs"] for m in metrics)),
                overruns=int(sum(m["tracer_overruns"] for m in metrics)),
            )
    result.series.extend(curves.values())
    result.notes.append(
        "expected: hardened miss ratio degrades smoothly with intensity; "
        "unhardened collapses once the fault defeats its assumption "
        "(starkest for fault='saturation')"
    )
    return result


def _rep_unit(args: tuple) -> dict:
    """Picklable work unit for process-pool ``map_fn`` sharding."""
    return _one_rep(*args)
