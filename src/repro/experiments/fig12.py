"""Figure 12 / Table 2: period-detection tolerance to real-time load.

An unreserved mplayer instance plays an mp3 while 0-4 synthetic periodic
tasks run inside CBS reservations (~15% each, the Table 2 parameters).
Detection is repeated over independent runs per load level; the table
reports average, standard deviation and maximum of the detected
frequency.

Expected shape (paper): the detector degrades with load by flipping to
*integer multiples* of the true 32.5 Hz (up to ~3x, bounded by the
100 Hz scan ceiling); both the average and the spread of the detected
frequency grow with the load.

Reproduction note: the degradation emerges from contention — reservations
compress the best-effort residual where the player, the desktop mix and
the I/O daemon live, stretching the player's scheduling/IO latency until
its burst train loses grid alignment.  Our substrate's best-effort
scheduler is *fairer* than a 2009 desktop's, so the published magnitudes
(mean up to 75 Hz) are only partially reached; the failure mode and its
monotonic trend are reproduced.  An ablation with per-pid trace filtering
and no desktop shows the detector staying locked at 32.5 Hz, isolating
the cause.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.common import TABLE2_RESERVATIONS, build_mp3_scenario, detect_frequency, trace_mp3
from repro.sim.time import SEC


# repro: allow[CC001]  -- reaches the idempotent cycle-adapter registry; deterministic per process
def _one_rep(
    n_load: int, seed: int, duration_s: float, horizon: int, duration: int
) -> tuple[float | None, float | None, float]:
    """One traced playback under ``n_load`` reservations (one work unit).

    Returns ``(detected_hz_or_None, phase_concentration_or_None,
    player_latency_ms)``; seeded purely by ``seed`` so any
    order-preserving ``map_fn`` reproduces the serial sweep.
    """
    scenario = build_mp3_scenario(seed=seed, n_load=n_load, n_frames=int(duration_s * 33) + 10)
    times = trace_mp3(scenario, duration)
    period = scenario.player.config.period
    latency = scenario.player_proc.sched_latency.mean / 1e6
    concentration = None
    if times:
        phases = np.exp(2j * np.pi * np.asarray(times, dtype=np.float64) / period)
        concentration = float(abs(phases.mean()))
    f = detect_frequency(times, horizon_ns=horizon, now=duration)
    return f, concentration, latency


def run(
    *,
    reps: int = 40,
    horizon_s: float = 2.0,
    duration_s: float = 4.0,
    seed0: int = 1200,
    include_ablation: bool = False,
    map_fn=map,
) -> ExperimentResult:
    """Sweep the load levels of Table 2 and record detection statistics.

    ``map_fn`` shards the full (load level x repetition) grid — every
    repetition is an independent simulation seeded ``seed0 + r``.
    """
    result = ExperimentResult(
        experiment="fig12",
        title="Period-detection precision vs background real-time load (Table 2)",
    )
    horizon = int(horizon_s * SEC)
    duration = int(duration_s * SEC)
    curve = Series(name="detected_hz_vs_load")

    n_levels = len(TABLE2_RESERVATIONS) + 1
    grid = [(n_load, seed0 + r) for n_load in range(n_levels) for r in range(reps)]
    n_units = len(grid)
    units = list(
        map_fn(
            _one_rep,
            [g[0] for g in grid],
            [g[1] for g in grid],
            [duration_s] * n_units,
            [horizon] * n_units,
            [duration] * n_units,
        )
    )

    for n_load in range(n_levels):
        load = sum(b / p for b, p in TABLE2_RESERVATIONS[:n_load])
        level_units = units[n_load * reps : (n_load + 1) * reps]
        detections = [f for f, _, _ in level_units if f is not None]
        concentrations = [c for _, c, _ in level_units if c is not None]
        latencies = [lat for _, _, lat in level_units]
        failures = sum(1 for f, _, _ in level_units if f is None)
        arr = np.array(detections)
        mean = float(arr.mean()) if arr.size else float("nan")
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
        mx = float(arr.max()) if arr.size else float("nan")
        reservation = TABLE2_RESERVATIONS[n_load - 1] if n_load else None
        result.add_row(
            load_pct=round(load * 100),
            new_reservation=f"({reservation[0]},{reservation[1]})" if reservation else "-",
            avg_hz=mean,
            std_hz=std,
            max_hz=mx,
            non_detections=failures,
            multiple_hits=int((arr >= 45.0).sum()),
            phase_concentration=float(np.mean(concentrations)) if concentrations else 0.0,
            player_latency_ms=float(np.mean(latencies)) if latencies else 0.0,
        )
        curve.add(round(load * 100), mean, std)
    result.series.append(curve)

    if include_ablation:
        # ablation: no desktop/disk contention -> detection stays locked
        clean: list[float] = []
        for r in range(min(reps, 10)):
            scenario = build_mp3_scenario(
                seed=seed0 + r,
                n_load=len(TABLE2_RESERVATIONS),
                n_frames=int(duration_s * 33) + 10,
                with_desktop=False,
                with_disk=False,
            )
            times = trace_mp3(scenario, duration)
            f = detect_frequency(times, horizon_ns=horizon, now=duration)
            if f is not None:
                clean.append(f)
        arr = np.array(clean)
        result.notes.append(
            f"ablation (60% load, no desktop/disk contention): mean "
            f"{arr.mean():.2f} Hz, std {arr.std():.2f} — detection stays locked"
        )
    return result
