"""Figure 5: the bursty structure of a traced event segment.

The paper shows ~120 ms of a real trace: events accumulate in bursts at
the beginning and end of each period, motivating the Dirac-train model of
§4.2.  We reproduce the excerpt and quantify burstiness: the fraction of
events that fall within a small window around the burst anchors, and the
number of distinct bursts per period.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, Series
from repro.experiments.common import build_mp3_scenario, trace_mp3
from repro.sim.time import MS, SEC


def run(
    *,
    seed: int = 5,
    excerpt_start_ms: float = 1000.0,
    excerpt_len_ms: float = 130.0,
) -> ExperimentResult:
    """Trace playback and extract the Figure 5 excerpt plus burst stats."""
    scenario = build_mp3_scenario(seed=seed, n_load=0, with_desktop=False, with_disk=False)
    times = np.array(trace_mp3(scenario, 3 * SEC), dtype=np.int64)
    period = scenario.player.config.period

    lo = int(excerpt_start_ms * MS)
    hi = lo + int(excerpt_len_ms * MS)
    excerpt = times[(times >= lo) & (times < hi)]

    result = ExperimentResult(
        experiment="fig05",
        title="Event-trace excerpt: periodic bursts at period boundaries",
    )
    seg = Series(name="event_times_ms")
    for t in excerpt:
        seg.add(float(t / MS), 1.0)
    result.series.append(seg)

    # burstiness: how concentrated are the events within the period?
    offsets = (times % period) / period  # in [0, 1)
    slot = period // scenario.player.config.writes_per_period
    anchor_window = 0.30  # fraction of a slot counted as "near an anchor"
    near = 0
    for t in times:
        off_in_slot = (t % slot) / slot
        if off_in_slot < anchor_window:
            near += 1
    result.add_row(metric="events_total", value=int(times.size))
    result.add_row(metric="excerpt_events", value=int(excerpt.size))
    result.add_row(metric="fraction_near_burst_anchor", value=near / times.size)
    result.add_row(
        metric="phase_concentration",
        value=float(np.abs(np.exp(2j * np.pi * offsets).mean())),
    )
    result.notes.append(
        "phase_concentration is |mean phasor| of event phases: 1 = perfectly "
        "aligned bursts, 0 = uniform spread"
    )
    return result
