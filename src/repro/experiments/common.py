"""Shared scenario builders for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import AnalyserConfig, PeriodAnalyser
from repro.core.spectrum import SpectrumConfig
from repro.sched import CbsScheduler, ServerParams
from repro.sim import Kernel, SEC
from repro.sim.time import US
from repro.tracer import QTracer
from repro.workloads import AudioPlayer, periodic_task, PeriodicTaskConfig
from repro.workloads.desktop import desktop_load, desktop_suite
from repro.workloads.io import Disk, DiskConfig
from repro.workloads.mplayer import AudioPlayerConfig

#: the (budget us, period us) reservations of Table 2, ~15% each; row k of
#: the table runs the first k of them concurrently
TABLE2_RESERVATIONS = [(645, 4300), (1200, 8000), (1650, 11000), (2250, 15000)]

#: frequency grid of the mp3 experiments (the paper's Figs. 10-11 scan
#: 30-100 Hz)
MP3_SPECTRUM = SpectrumConfig(f_min=30.0, f_max=100.0, df=0.1)


@dataclass
class Mp3Scenario:
    """A traced mp3-playback run: mplayer + desktop + optional RT load."""

    kernel: Kernel
    scheduler: CbsScheduler
    tracer: QTracer
    player: AudioPlayer
    player_pid: int
    load_pids: list[int] = field(default_factory=list)

    @property
    def player_proc(self):
        """The mplayer process handle (for latency introspection)."""
        return self.kernel.processes[self.player_pid]


def build_mp3_scenario(
    *,
    seed: int = 0,
    n_load: int = 0,
    n_frames: int = 400,
    with_desktop: bool = True,
    with_disk: bool = True,
    player_config: AudioPlayerConfig | None = None,
) -> Mp3Scenario:
    """Assemble the canonical §5.2/§5.3 testbed.

    An unreserved mplayer instance playing an mp3, traced by qtrace, with
    the desktop background mix and (optionally) the first ``n_load``
    Table 2 reservations running synthetic periodic load.
    """
    scheduler = CbsScheduler()
    kernel = Kernel(scheduler)
    tracer = QTracer()
    kernel.add_tracer(tracer)

    disk = Disk(kernel, DiskConfig(service_cost=6_000_000, seed=seed + 77)) if with_disk else None
    player = AudioPlayer(player_config or AudioPlayerConfig(seed=seed))
    proc = kernel.spawn("mplayer", player.program(n_frames, disk=disk))
    tracer.trace_pid(proc.pid)

    if with_desktop:
        for i, cfg in enumerate(desktop_suite(seed + 500)):
            kernel.spawn(f"desktop{i}", desktop_load(cfg))

    load_pids = []
    for i in range(n_load):
        budget_us, period_us = TABLE2_RESERVATIONS[i]
        task_cfg = PeriodicTaskConfig(
            cost=int(budget_us * 0.9) * US,
            period=period_us * US,
            seed=seed + 1000 + i,
            phase=((seed * 131 + i * 977) % period_us) * US,
        )
        proc_load = kernel.spawn(f"rtload{i}", periodic_task(task_cfg))
        server = scheduler.create_server(
            ServerParams(budget=budget_us * US, period=period_us * US)
        )
        scheduler.attach(proc_load, server)
        load_pids.append(proc_load.pid)

    return Mp3Scenario(
        kernel=kernel,
        scheduler=scheduler,
        tracer=tracer,
        player=player,
        player_pid=proc.pid,
        load_pids=load_pids,
    )


def trace_mp3(scenario: Mp3Scenario, duration_ns: int) -> list[int]:
    """Run the scenario and return the player's event timestamps."""
    scenario.kernel.run(duration_ns)
    return [
        e.time
        for e in scenario.tracer.buffer.drain()
        if e.pid == scenario.player_pid
    ]


def detect_frequency(
    times_ns,
    *,
    horizon_ns: int = 2 * SEC,
    spectrum: SpectrumConfig = MP3_SPECTRUM,
    epsilon: float | None = None,
    alpha: float | None = None,
    now: int | None = None,
) -> float | None:
    """One-shot period detection on a recorded event train."""
    from repro.core.peaks import PeakConfig

    peaks = PeakConfig(
        alpha=0.2 if alpha is None else alpha,
        epsilon=0.5 if epsilon is None else epsilon,
    )
    analyser = PeriodAnalyser(
        AnalyserConfig(spectrum=spectrum, peaks=peaks, horizon_ns=horizon_ns)
    )
    times = list(times_ns)
    analyser.add_times(times)
    stamp = now if now is not None else (max(times) if times else 0)
    estimate = analyser.analyse(stamp)
    return estimate.frequency if estimate else None
