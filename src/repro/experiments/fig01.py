"""Figure 1: minimum bandwidth vs server period, single task.

A periodic task with C = 20 ms, P = 100 ms (20% utilisation) is placed in
a dedicated CBS; the plot shows the minimum bandwidth Q/T that still meets
every deadline, as the server period T sweeps (0, 200] ms.

Expected shape (paper): exactly 20% whenever T divides P (100, 50, 33.3,
25, 20 ms, ...), sharply higher between those points, and rising past 60%
as T approaches 2P.  T = P is the most robust choice.
"""

from __future__ import annotations

from repro.analysis import Task, min_bandwidth_dedicated
from repro.experiments.base import ExperimentResult, Series


def run(
    *,
    cost_ms: float = 20.0,
    period_ms: float = 100.0,
    t_min_ms: float = 2.0,
    t_max_ms: float = 200.0,
    t_step_ms: float = 1.0,
) -> ExperimentResult:
    """Sweep the server period and record the minimum bandwidth."""
    task = Task(cost=cost_ms, period=period_ms)
    result = ExperimentResult(
        experiment="fig01",
        title=f"Minimum bandwidth to schedule C={cost_ms}ms P={period_ms}ms vs server period",
    )
    curve = Series(name="min_bandwidth")
    t = t_min_ms
    while t <= t_max_ms + 1e-9:
        b = min_bandwidth_dedicated(task, t)
        curve.add(round(t, 6), b if b is not None else float("nan"))
        t += t_step_ms
    result.series.append(curve)

    # headline rows the paper's text calls out
    for label, t in (("T = P", period_ms), ("T = P/3", period_ms / 3), ("T = 2P", 2 * period_ms)):
        b = min_bandwidth_dedicated(task, t)
        result.add_row(server_period_ms=round(t, 3), min_bandwidth=b, label=label)
    result.notes.append(
        "analysis uses the dedicated-CBS supply bound (initial delay T-Q); "
        "utilisation floor is 0.2"
    )
    return result
