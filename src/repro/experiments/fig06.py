"""Figure 6: spectrum-computation cost and precision vs H and δf.

At fixed f_max = 100 Hz the observation horizon H sweeps 0.5-2 s and the
frequency step δf sweeps {0.1, 0.2, 0.5} Hz.  For every combination we
measure (a) the wall-clock time to compute the transform — expected to
scale like Eq. 3, i.e. proportional to the event count (∝ H) and to the
number of frequency samples (∝ 1/δf) — and (b) the detected frequency's
mean and standard deviation over repeated traces.

Absolute milliseconds differ from the paper's 2.6 GHz laptop; the scaling
law and the insensitivity of precision to δf are the reproduced claims.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.peaks import PeakDetector
from repro.core.spectrum import SpectrumConfig, sparse_amplitude_spectrum
from repro.experiments.base import ExperimentResult, mean_std
from repro.experiments.common import build_mp3_scenario, trace_mp3
from repro.sim.time import SEC


#: wall-clock columns that legitimately differ between two runs
TIMING_COLUMNS = ("transform_ms", "transform_ms_std")


# repro: allow[CC001]  -- reaches the idempotent cycle-adapter registry; deterministic per process
def _record_trace(seed: int, duration_ns: int, clean: bool) -> np.ndarray:
    """One independent mp3 event trace (a parallelisable work unit)."""
    scenario = build_mp3_scenario(
        seed=seed,
        n_frames=int(duration_ns / SEC * 33) + 10,
        with_desktop=not clean,
        with_disk=not clean,
    )
    return np.array(trace_mp3(scenario, duration_ns), dtype=np.int64)


def collect_traces(
    reps: int, duration_ns: int, *, seed0: int = 600, clean: bool = True, map_fn=map
):
    """Record ``reps`` independent mp3 event traces.

    Each trace is seeded ``seed0 + r`` from its repetition index alone, so
    any order-preserving ``map_fn`` (the builtin, or a process-pool map
    injected by :mod:`repro.experiments.runner`) yields the same traces.
    """
    return list(
        map_fn(
            _record_trace,
            [seed0 + r for r in range(reps)],
            [duration_ns] * reps,
            [clean] * reps,
        )
    )


def window(trace: np.ndarray, horizon_ns: int, end_ns: int) -> np.ndarray:
    """The slice of ``trace`` inside the window ``[end - horizon, end)``."""
    return trace[(trace >= end_ns - horizon_ns) & (trace < end_ns)]


def run(
    *,
    reps: int = 10,
    f_max: float = 100.0,
    df_values: tuple[float, ...] = (0.1, 0.2, 0.5),
    horizons_s: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    epsilon: float = 0.5,
    map_fn=map,
) -> ExperimentResult:
    """Sweep (H, δf) and measure transform time + detected frequency.

    ``map_fn`` shards trace collection (the expensive simulation part);
    the timed spectrum transforms stay serial so the measured wall-clock
    costs are not perturbed by sibling workers.
    """
    result = ExperimentResult(
        experiment="fig06",
        title="Spectrum computation time and detection precision vs H and δf (fmax=100Hz)",
    )
    duration = int(max(horizons_s) * SEC) + SEC
    traces = collect_traces(reps, duration, map_fn=map_fn)
    detector = PeakDetector()

    for df in df_values:
        config = SpectrumConfig(f_min=30.0, f_max=f_max, df=df)
        freqs = config.frequencies()
        for h_s in horizons_s:
            h_ns = int(h_s * SEC)
            times_ms: list[float] = []
            detections: list[float] = []
            for trace in traces:
                w = window(trace, h_ns, duration)
                t0 = time.perf_counter()
                amp = sparse_amplitude_spectrum(w, freqs)
                times_ms.append((time.perf_counter() - t0) * 1e3)
                found = detector.detect(freqs, amp)
                if found.frequency is not None:
                    detections.append(found.frequency)
            t_mean, t_std = mean_std(times_ms)
            f_mean, f_std = mean_std(detections)
            result.add_row(
                df_hz=df,
                horizon_s=h_s,
                n_events=int(np.mean([window(t, h_ns, duration).size for t in traces])),
                transform_ms=t_mean,
                transform_ms_std=t_std,
                detected_hz=f_mean,
                detected_hz_std=f_std,
            )
    result.notes.append(
        "transform time should scale ~ (events in window) x (f_max-f_min)/df; "
        "detected frequency should sit at 32.5 Hz regardless of df"
    )
    return result
