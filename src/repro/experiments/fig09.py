"""Figure 9: detected-frequency average and std dev vs ε and H.

The harmonic tolerance ε has a sweet spot: tiny ε misses slightly
misplaced harmonics (higher variance), moderate ε (≈0.5) credits them to
the right fundamental (lowest variance), and large ε blurs adjacent
frequencies together (variance grows again).  Longer horizons always
help.  The traces carry light background interference so the effect has
something to bite on.
"""

from __future__ import annotations

from repro.core.peaks import PeakConfig, PeakDetector
from repro.core.spectrum import SpectrumConfig, sparse_amplitude_spectrum
from repro.experiments.base import ExperimentResult, mean_std
from repro.experiments.fig06 import collect_traces, window
from repro.sim.time import SEC


def run(
    *,
    reps: int = 20,
    epsilons: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    horizons_s: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    alpha: float = 0.2,
) -> ExperimentResult:
    """Sweep (ε, H) and record detected-frequency statistics."""
    result = ExperimentResult(
        experiment="fig09",
        title="Detected frequency (avg, std) vs ε and H",
    )
    duration = int(max(horizons_s) * SEC) + SEC
    traces = collect_traces(reps, duration, seed0=900, clean=False)
    config = SpectrumConfig(f_min=30.0, f_max=100.0, df=0.1)
    freqs = config.frequencies()

    spectra: dict[float, list] = {}
    for h_s in horizons_s:
        h_ns = int(h_s * SEC)
        spectra[h_s] = [sparse_amplitude_spectrum(window(t, h_ns, duration), freqs) for t in traces]

    for eps in epsilons:
        detector = PeakDetector(PeakConfig(alpha=alpha, epsilon=eps))
        for h_s in horizons_s:
            detections = []
            for amp in spectra[h_s]:
                found = detector.detect(freqs, amp)
                if found.frequency is not None:
                    detections.append(found.frequency)
            f_mean, f_std = mean_std(detections)
            result.add_row(
                epsilon=eps,
                horizon_s=h_s,
                detected_hz=f_mean,
                detected_hz_std=f_std,
                detections=len(detections),
            )
    return result
