"""Ablation studies of the design choices the paper calls out.

Not figures of the paper, but experiments its text motivates:

- :func:`run_predictors` — the prediction function P(·) (§4.4 proposes a
  quantile estimator; how do max / moving-average / EWMA compare?);
- :func:`run_spread` — the spread factor ``x`` ("typically between 10%
  and 20%": what happens outside that band?);
- :func:`run_sampling_period` — the sampling period ``S``, including the
  paper's remark 2: setting ``S`` equal to the task period "determines a
  very unstable and fluctuating behaviour for the predicted computation
  time with no apparent benefit";
- :func:`run_exhaustion_policy` — hard vs soft vs AQuoSA-background CBS
  exhaustion behaviour under the same adaptive playback;
- :func:`run_exhaustion_boost` — the §4.4-remark-1 extension (budget
  boost on frequent exhaustions, aimed at GOP I-frame peaks);
- :func:`run_tracer_input` — system-call events vs blocked→ready
  transitions (§6's ftrace alternative) as the analyser's input.

All ablations share one scenario: the Figure 13 adaptive video playback
with the desktop background mix.
"""

from __future__ import annotations

import numpy as np

from repro.core import LfsPlusPlus, SelfTuningRuntime
from repro.core.analyser import AnalyserConfig, PeriodAnalyser
from repro.core.controller import TaskControllerConfig
from repro.core.lfspp import LfsPlusPlusConfig
from repro.core.predictors import Ewma, MovingAverage
from repro.core.spectrum import SpectrumConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.fig13 import VIDEO_SPECTRUM
from repro.metrics import InterFrameProbe
from repro.sim.time import MS, SEC
from repro.workloads import VideoPlayer
from repro.workloads.desktop import desktop_load, desktop_suite
from repro.workloads.mplayer import VideoPlayerConfig


def _playback(
    *,
    feedback,
    n_frames: int = 1000,
    seed: int = 13,
    sampling_period: int = 100 * MS,
    reservation_policy: str = "hard",
    use_period_estimate: bool = True,
):
    """One adaptive playback run; returns (ift ms array, task, player)."""
    rt = SelfTuningRuntime(reservation_policy=reservation_policy)
    player = VideoPlayer(VideoPlayerConfig(seed=seed))
    proc = rt.spawn("mplayer", player.program(n_frames))
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(rt.kernel)
    for i, cfg in enumerate(desktop_suite(seed + 40)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))
    task = rt.adopt(
        proc,
        feedback=feedback,
        controller_config=TaskControllerConfig(
            sampling_period=sampling_period, use_period_estimate=use_period_estimate
        ),
        analyser_config=AnalyserConfig(spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC),
    )
    rt.run(n_frames * 40 * MS)
    ift = np.array(probe.inter_frame_times, dtype=np.float64) / MS
    return ift, task, player


def _summary(ift: np.ndarray, task) -> dict:
    late = np.where(ift > 80.0)[0]
    bw = [g.bandwidth for _, g in task.controller.granted_history]
    return {
        "ift_mean_ms": float(ift.mean()),
        "ift_std_ms": float(ift.std(ddof=1)),
        "frames_over_80ms": int(late.size),
        "mean_bandwidth": float(np.mean(bw)),
    }


def run_predictors(*, n_frames: int = 1000) -> ExperimentResult:
    """Compare prediction functions for LFS++."""
    result = ExperimentResult(
        experiment="abl-predictors",
        title="LFS++ prediction function ablation",
    )
    candidates = {
        "quantile(0.9375)": lambda: LfsPlusPlus(),
        "max": lambda: LfsPlusPlus(LfsPlusPlusConfig(quantile=1.0)),
        "moving_average": lambda: LfsPlusPlus(predictor=MovingAverage(window=16)),
        "ewma(0.25)": lambda: LfsPlusPlus(predictor=Ewma(alpha=0.25)),
    }
    for name, factory in candidates.items():
        ift, task, _ = _playback(feedback=factory(), n_frames=n_frames)
        result.add_row(predictor=name, **_summary(ift, task))
    result.notes.append(
        "averaging predictors under-provision the workload peaks; the "
        "order statistics trade a little bandwidth for far fewer late frames"
    )
    return result


def run_spread(*, values: tuple[float, ...] = (0.0, 0.05, 0.1, 0.15, 0.2, 0.3), n_frames: int = 1000) -> ExperimentResult:
    """Sweep the spread factor x."""
    result = ExperimentResult(
        experiment="abl-spread",
        title="LFS++ spread factor (x) ablation",
    )
    for x in values:
        law = LfsPlusPlus(LfsPlusPlusConfig(spread=x))
        ift, task, _ = _playback(feedback=law, n_frames=n_frames)
        result.add_row(spread=x, **_summary(ift, task))
    result.notes.append(
        "x buys robustness with bandwidth: reserved fraction grows ~(1+x), "
        "late frames shrink; beyond ~0.2 the returns flatten (the paper's "
        "'usually between 10% and 20%')"
    )
    return result


def run_sampling_period(
    *,
    values_ms: tuple[int, ...] = (40, 80, 100, 200, 400),
    n_frames: int = 1000,
) -> ExperimentResult:
    """Sweep the controller sampling period S (remark 2 of §4.4).

    The instability remark is quantified by the coefficient of variation
    of the *requested* budget over the converged phase: sampling at the
    task period (S = P = 40 ms) makes each sample a single-job measurement
    taken asynchronously to job boundaries — a noisy signal the predictor
    then chases.
    """
    result = ExperimentResult(
        experiment="abl-sampling",
        title="LFS++ controller sampling period (S) ablation",
    )
    for s_ms in values_ms:
        law = LfsPlusPlus()
        ift, task, _ = _playback(feedback=law, sampling_period=s_ms * MS, n_frames=n_frames)
        samples = np.array([v for t, v in law.sample_history if t > 4 * SEC])
        sample_cov = (
            float(samples.std(ddof=1) / samples.mean()) if samples.size > 3 else float("nan")
        )
        requests = np.array(
            [req.bandwidth for t, req in law.history if t > 4 * SEC and req.bandwidth > 0.06]
        )
        request_cov = (
            float(requests.std(ddof=1) / requests.mean()) if requests.size > 3 else float("nan")
        )
        row = _summary(ift, task)
        result.add_row(sampling_ms=s_ms, sample_cov=sample_cov, request_cov=request_cov, **row)
    result.notes.append(
        "sample_cov is the fluctuation of the raw per-period computation "
        "estimate.  At S = P each sample sees a single job, so the estimate "
        "carries the full job-to-job (GOP) variance — the paper's remark 2 — "
        "which S = 2-2.5P averages away (lowest sample_cov and request_cov). "
        "Pushing S much beyond that back-fires differently: the loop reacts "
        "too slowly, stall/catch-up cycles re-inflate both covs and the "
        "inter-frame dispersion grows monotonically"
    )
    return result


def run_exhaustion_policy(*, n_frames: int = 1000) -> ExperimentResult:
    """Hard vs soft vs AQuoSA-background exhaustion behaviour."""
    result = ExperimentResult(
        experiment="abl-policy",
        title="CBS exhaustion-policy ablation under adaptive playback",
    )
    for policy in ("hard", "soft", "background"):
        ift, task, _ = _playback(feedback=LfsPlusPlus(), reservation_policy=policy, n_frames=n_frames)
        result.add_row(policy=policy, **_summary(ift, task))
    result.notes.append(
        "hard enforcement maximises isolation but pays for every budget "
        "under-run; the background policy recovers overruns from best-effort "
        "slack at the cost of weaker guarantees"
    )
    return result


def run_exhaustion_boost(*, n_frames: int = 1000) -> ExperimentResult:
    """The §4.4-remark-1 budget boost on frequent exhaustions."""
    result = ExperimentResult(
        experiment="abl-boost",
        title="LFS++ exhaustion-boost extension (GOP peak coverage)",
    )
    laws = {
        "off": LfsPlusPlus(),
        "on": LfsPlusPlus(
            LfsPlusPlusConfig(exhaustion_rate_threshold=0.3, exhaustion_boost=0.3)
        ),
    }
    for name, law in laws.items():
        ift, task, _ = _playback(feedback=law, n_frames=n_frames)
        result.add_row(boost=name, boosts_tripped=law.boosts, **_summary(ift, task))
    result.notes.append(
        "the boost spends a little extra bandwidth whenever the server "
        "exhausts repeatedly (I-frame bursts), trimming the inter-frame "
        "time dispersion"
    )
    return result


def run_tracer_input(*, reps: int = 15) -> ExperimentResult:
    """Analyser input: syscall events vs blocked→ready transitions (§6).

    Two workloads are observed through both tracers:

    - a simple periodic task (one wake-up per job) — the clean case §6
      has in mind;
    - the mp3 player, which wakes *three* times per period to push ALSA
      chunks — where the wake-up train carries the device-write rate
      (97.5 Hz) but loses the job-level asymmetry the syscall bursts
      carry, so the detector reports a multiple of the job rate.

    Detection quality and event volume (a proxy for tracing/analysis
    cost) are reported per combination.
    """
    from repro.core.spectrum import SpectrumConfig
    from repro.experiments.common import MP3_SPECTRUM, build_mp3_scenario
    from repro.sched import CbsScheduler
    from repro.sim import Kernel
    from repro.tracer import QTracer, WakeupTracer
    from repro.workloads import PeriodicTaskConfig, periodic_task

    result = ExperimentResult(
        experiment="abl-tracer-input",
        title="Period detection from syscalls vs scheduler wake-ups",
    )

    def detect(times, spectrum):
        analyser = PeriodAnalyser(
            AnalyserConfig(spectrum=spectrum, horizon_ns=2 * SEC, min_events=8)
        )
        analyser.add_times(times)
        estimate = analyser.analyse(4 * SEC)
        return estimate.frequency if estimate else None

    # --- workload 1: simple periodic task at 25 Hz --------------------
    periodic_spectrum = SpectrumConfig(f_min=15.0, f_max=100.0, df=0.1)
    for source in ("syscalls", "wakeups"):
        detections, volumes = [], []
        for r in range(reps):
            kernel = Kernel(CbsScheduler())
            tracer = QTracer()
            kernel.add_tracer(tracer)
            wakeup = WakeupTracer()
            wakeup.install(kernel)
            cfg = PeriodicTaskConfig(cost=5 * MS, period=40 * MS, extra_syscalls=4, seed=r)
            proc = kernel.spawn("rt", periodic_task(cfg))
            tracer.trace_pid(proc.pid)
            wakeup.trace_pid(proc.pid)
            kernel.run(4 * SEC)
            times = (
                [e.time for e in tracer.buffer.drain() if e.pid == proc.pid]
                if source == "syscalls"
                else [e.time for e in wakeup.drain()]
            )
            volumes.append(len(times))
            f = detect(times, periodic_spectrum)
            if f is not None:
                detections.append(f)
        arr = np.array(detections)
        result.add_row(
            workload="periodic-25Hz",
            source=source,
            detections=len(detections),
            avg_hz=float(arr.mean()) if arr.size else float("nan"),
            std_hz=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            events_per_run=float(np.mean(volumes)),
        )

    # --- workload 2: the mp3 player (3 wake-ups per period) -----------
    for source in ("syscalls", "wakeups"):
        detections, volumes = [], []
        for r in range(reps):
            scenario = build_mp3_scenario(seed=4000 + r, n_load=0, n_frames=140)
            wakeup = WakeupTracer()
            wakeup.install(scenario.kernel)
            wakeup.trace_pid(scenario.player_pid)
            scenario.kernel.run(4 * SEC)
            times = (
                [e.time for e in scenario.tracer.buffer.drain() if e.pid == scenario.player_pid]
                if source == "syscalls"
                else [e.time for e in wakeup.drain()]
            )
            volumes.append(len(times))
            f = detect(times, MP3_SPECTRUM)
            if f is not None:
                detections.append(f)
        arr = np.array(detections)
        result.add_row(
            workload="mp3-32.5Hz",
            source=source,
            detections=len(detections),
            avg_hz=float(arr.mean()) if arr.size else float("nan"),
            std_hz=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            events_per_run=float(np.mean(volumes)),
        )
    result.notes.append(
        "for one-wake-per-job tasks, wake-up tracing matches syscall "
        "tracing with ~10x fewer events; for the mp3 player the wake train "
        "reports the device-write rate (3x the job rate) — scheduler "
        "transitions lose the job-level asymmetry that syscall bursts carry"
    )
    return result


def run_smp(*, n_players: int = 4, n_frames: int = 300) -> ExperimentResult:
    """Multicore scaling (§6's multicore direction).

    ``n_players`` adaptive 25 fps players run under three configurations:
    one CPU (their cumulative demand exceeds the supervisor bound and
    playback degrades), two *partitioned* CPUs with worst-fit placement,
    and two CPUs under *global* CBS (gEDF over the servers, migrations
    allowed).
    """
    from repro.core import SelfTuningRuntime
    from repro.core.smp import SmpSelfTuningRuntime
    from repro.metrics import InterFrameProbe

    result = ExperimentResult(
        experiment="abl-smp",
        title="Adaptive reservations on multicore: 1 CPU vs partitioned vs global",
    )

    def adopt_kwargs():
        return dict(
            feedback=LfsPlusPlus(),
            controller_config=TaskControllerConfig(sampling_period=100 * MS),
            analyser_config=AnalyserConfig(spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC),
        )

    def summarise(label, probes, bandwidths):
        means = [np.mean(np.array(p.inter_frame_times) / MS) for p in probes if p.inter_frame_times]
        stds = [
            np.std(np.array(p.inter_frame_times) / MS, ddof=1)
            for p in probes
            if len(p.inter_frame_times) > 1
        ]
        result.add_row(
            configuration=label,
            players=n_players,
            worst_ift_mean_ms=float(max(means)),
            worst_ift_std_ms=float(max(stds)),
            granted_bandwidth_per_cpu=bandwidths,
        )

    # partitioned: 1 CPU (overload) and 2 CPUs (worst-fit placement)
    for n_cpus in (1, 2):
        smp = SmpSelfTuningRuntime(n_cpus)
        probes = []
        for i in range(n_players):
            player = VideoPlayer(VideoPlayerConfig(seed=20 + i, phase=i * 7 * MS))
            cpu, proc, _ = smp.place(f"player{i}", player.program(n_frames), **adopt_kwargs())
            probe = InterFrameProbe(pid=proc.pid)
            probe.install(smp.cpus[cpu].kernel)
            probes.append(probe)
        smp.run(n_frames * 40 * MS)
        label = "1cpu" if n_cpus == 1 else "2cpu-partitioned"
        summarise(label, probes, [round(smp.granted_bandwidth(c), 3) for c in range(n_cpus)])

    # global: 2 CPUs, one run queue, gEDF over the CBS servers
    rt = SelfTuningRuntime(n_cpus=2)
    probes = []
    for i in range(n_players):
        player = VideoPlayer(VideoPlayerConfig(seed=20 + i, phase=i * 7 * MS))
        proc = rt.spawn(f"player{i}", player.program(n_frames))
        probe = InterFrameProbe(pid=proc.pid)
        probe.install(rt.kernel)
        rt.adopt(proc, **adopt_kwargs())
        probes.append(probe)
    rt.run(n_frames * 40 * MS)
    summarise(
        "2cpu-global", probes, [round(rt.supervisor.total_granted_bandwidth(), 3)]
    )
    result.notes.append(
        "both multicore configurations hold the 40 ms average the single "
        "CPU cannot; global CBS needs no placement decisions (tasks "
        "migrate freely) at the price of gEDF's weaker analysability"
    )
    return result


def run_rate_change(*, n_frames_per_phase: int = 300) -> ExperimentResult:
    """Time-varying requirements: a 25→50 fps switch mid-playback.

    The paper's §1 motivation in one experiment: the application's rate
    (and thus the correct reservation period) changes at run time; the
    analyser re-detects it and the loop re-converges, with the hysteresis
    bounding the adaptation latency.
    """
    from repro.core import SelfTuningRuntime
    from repro.metrics import InterFrameProbe

    result = ExperimentResult(
        experiment="abl-rate-change",
        title="Tracking a mid-run rate change (25 fps → 50 fps)",
    )
    rt = SelfTuningRuntime()
    phase1 = VideoPlayer(VideoPlayerConfig(seed=3))
    phase2 = VideoPlayer(
        VideoPlayerConfig(
            seed=4, period=20 * MS, i_cost=8 * MS, p_cost=6 * MS, b_cost=5 * MS,
            phase=n_frames_per_phase * 40 * MS,
        )
    )

    def chained():
        yield from phase1.program(n_frames_per_phase)
        yield from phase2.program(n_frames_per_phase)

    proc = rt.spawn("mplayer", chained())
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(rt.kernel)
    task = rt.adopt(
        proc,
        feedback=LfsPlusPlus(),
        controller_config=TaskControllerConfig(sampling_period=100 * MS),
        analyser_config=AnalyserConfig(spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC),
    )
    switch_at = n_frames_per_phase * 40 * MS
    rt.run(switch_at + n_frames_per_phase * 20 * MS)

    history = task.controller.period_history
    confirmed_20 = [t for t, p in history if p and abs(p - 20 * MS) < 1 * MS]
    stamps = np.array(probe.display_times)
    ift = np.diff(stamps) / MS
    split = np.searchsorted(stamps[1:], switch_at)
    result.add_row(
        phase="25fps",
        period_detected_ms=float(np.median([p for t, p in history if p and t < switch_at]) / MS),
        ift_mean_ms=float(ift[: max(split - 5, 1)].mean()),
    )
    result.add_row(
        phase="50fps",
        period_detected_ms=float(
            np.median([p for t, p in history if p and t > switch_at + 4 * SEC]) / MS
        ),
        ift_mean_ms=float(ift[-max(n_frames_per_phase - 60, 10):].mean()),
    )
    if confirmed_20:
        result.notes.append(
            f"new rate confirmed {(confirmed_20[0] - switch_at) / SEC:.1f}s after "
            "the switch (observation-window refill + hysteresis)"
        )
    return result


def run_detector_comparison(*, reps: int = 12) -> ExperimentResult:
    """Frequency-domain vs time-domain period detection.

    The paper chose a sparse-spectrum detector; its cited pitch-extraction
    literature [11, 20] also contains time-domain (autocorrelation)
    methods.  :class:`repro.core.autocorr.IntervalHistogramDetector`
    implements that alternative; this ablation compares the two on clean
    and loaded mp3 traces.
    """
    import time as _time

    from repro.core.autocorr import IntervalHistogramDetector
    from repro.experiments.common import build_mp3_scenario, detect_frequency, trace_mp3

    result = ExperimentResult(
        experiment="abl-detector",
        title="Sparse-spectrum vs interval-histogram period detection",
    )
    for n_load, label in ((0, "idle"), (4, "60% RT load")):
        spectrum_hits = 0
        interval_hits = 0
        spectrum_ms: list[float] = []
        interval_ms: list[float] = []
        for r in range(reps):
            scenario = build_mp3_scenario(seed=5000 + r, n_load=n_load, n_frames=140)
            times = trace_mp3(scenario, 4 * SEC)

            t0 = _time.perf_counter()
            f_spec = detect_frequency(times, horizon_ns=2 * SEC, now=4 * SEC)
            spectrum_ms.append((_time.perf_counter() - t0) * 1e3)
            if f_spec is not None and abs(f_spec - 32.5) < 1.0:
                spectrum_hits += 1

            t0 = _time.perf_counter()
            est = IntervalHistogramDetector().detect(
                [t for t in times if t >= 2 * SEC]
            )
            interval_ms.append((_time.perf_counter() - t0) * 1e3)
            if est.frequency is not None and abs(est.frequency - 32.5) < 1.0:
                interval_hits += 1
        result.add_row(
            condition=label,
            spectrum_accuracy=spectrum_hits / reps,
            interval_accuracy=interval_hits / reps,
            spectrum_ms=float(np.mean(spectrum_ms)),
            interval_ms=float(np.mean(interval_ms)),
        )
    result.notes.append(
        "both detectors are exact on clean traces; under load the "
        "time-domain method collapses to the ALSA write grid (3x) sooner "
        "than the spectrum method — the multi-burst structure hurts the "
        "interval histogram more, vindicating the paper's frequency-domain "
        "choice for this workload class"
    )
    return result


def _importance_score(ift: np.ndarray, task) -> float:
    """Scalar playback objective (lower is better) for :func:`run_importance`.

    Weighted like the tune objective: late frames dominate, then the
    inter-frame dispersion, then the bandwidth spent to get there.
    """
    s = _summary(ift, task)
    return s["frames_over_80ms"] + s["ift_std_ms"] + 10.0 * s["mean_bandwidth"]


def run_importance(*, n_frames: int = 1000) -> ExperimentResult:
    """Component-importance scores for the self-tuning stack.

    Each component of the closed loop is knocked out in isolation on the
    standard adaptive-playback scenario, and the variants are ranked
    with :func:`repro.tune.report.rank_importance` — the shared
    aumai-style ranking also used for the tuner's sensitivity report.
    A *positive* delta means removing the component worsens the
    objective (it earns its complexity); a *negative* delta flags a
    component that is harmful on this workload.
    """
    from repro.tune.report import rank_importance

    result = ExperimentResult(
        experiment="abl-importance",
        title="Component importance of the self-tuning stack",
    )

    def score_variant(**overrides) -> tuple[float, dict]:
        feedback = overrides.pop("feedback", None) or LfsPlusPlus()
        ift, task, _ = _playback(feedback=feedback, n_frames=n_frames, **overrides)
        return _importance_score(ift, task), _summary(ift, task)

    baseline_score, baseline_summary = score_variant()
    variants = {
        "quantile-predictor": dict(
            feedback=LfsPlusPlus(predictor=MovingAverage(window=16))
        ),
        "spread-margin": dict(feedback=LfsPlusPlus(LfsPlusPlusConfig(spread=0.0))),
        "rate-detection": dict(use_period_estimate=False),
        "hard-enforcement": dict(reservation_policy="soft"),
    }
    scores: dict[str, float] = {}
    summaries: dict[str, dict] = {}
    for name, overrides in variants.items():
        scores[name], summaries[name] = score_variant(**dict(overrides))
    result.add_row(
        component="(baseline)", score=baseline_score, delta=0.0, harmful=False,
        **baseline_summary,
    )
    for record in rank_importance(baseline_score, scores):
        result.add_row(
            component=record["name"],
            score=record["score"],
            delta=record["delta"],
            harmful=record["harmful"],
            **summaries[record["name"]],
        )
    result.notes.append(
        "each row knocks out one component (ablation); delta > 0 means the "
        "loop is worse without it — the ranking orders the stack's "
        "components by how much of the closed-loop quality they carry"
    )
    return result


def run(**kwargs) -> ExperimentResult:
    """Default entry point: the predictor ablation (CLI compatibility)."""
    return run_predictors(**kwargs)
