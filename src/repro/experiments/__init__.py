"""One module per table/figure of the paper's evaluation (§5).

Each module exposes ``run(...) -> ExperimentResult`` with keyword
parameters that default to the paper's setting (scaled-down repetition
counts keep the default runs minutes-fast; pass ``reps``/``duration``
overrides for full-fidelity runs).  The benchmark suite, the CLI and the
examples all call into these functions, so there is exactly one
implementation of every experiment.

Execution goes through two sibling layers (see
``docs/running-experiments.md``):

- :mod:`repro.experiments.runner` — process-pool fan-out over the
  registry and over the expensive sweeps' inner repetitions (their
  ``run()`` accepts an order-preserving ``map_fn``), bit-identical to
  serial execution;
- :mod:`repro.experiments.cache` — content-addressed on-disk memoisation
  of results, keyed on name + canonical kwargs + code digest.
"""

from types import SimpleNamespace

from repro.experiments import (
    ablations,
    events,
    fig01,
    fig02,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    robustness,
    tab01,
    tab03,
)
from repro.experiments.base import ExperimentResult, Series


def _ablation(run_fn, doc: str) -> SimpleNamespace:
    return SimpleNamespace(run=run_fn, __doc__=doc)


#: registry used by the CLI: name -> module-like (must expose ``run``)
REGISTRY = {
    "fig01": fig01,
    "fig02": fig02,
    "fig04": fig04,
    "fig05": fig05,
    "tab01": tab01,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,  # also Table 2
    "fig13": fig13,  # also Figure 14
    "tab03": tab03,
    # fault-injection sweep (repro.faults): guards on vs off
    "robustness": robustness,
    # event-driven vs periodic controller activation (repro.core.events)
    "events-vs-periodic": events,
    # ablations of the design choices the paper's text calls out
    "abl-predictors": _ablation(
        ablations.run_predictors, "Ablation: LFS++ prediction function (quantile/max/avg/EWMA)."
    ),
    "abl-spread": _ablation(ablations.run_spread, "Ablation: LFS++ spread factor x sweep."),
    "abl-sampling": _ablation(
        ablations.run_sampling_period,
        "Ablation: controller sampling period S, incl. the destabilising S = P.",
    ),
    "abl-policy": _ablation(
        ablations.run_exhaustion_policy, "Ablation: CBS exhaustion policy (hard/soft/background)."
    ),
    "abl-boost": _ablation(
        ablations.run_exhaustion_boost, "Ablation: §4.4-remark-1 budget boost on exhaustion bursts."
    ),
    "abl-tracer-input": _ablation(
        ablations.run_tracer_input, "Ablation: syscall vs wake-up events as analyser input (§6)."
    ),
    "abl-smp": _ablation(
        ablations.run_smp, "Extension: partitioned multicore adaptive reservations (§6)."
    ),
    "abl-rate-change": _ablation(
        ablations.run_rate_change, "Extension: tracking a mid-run rate change (§1 motivation)."
    ),
    "abl-detector": _ablation(
        ablations.run_detector_comparison,
        "Ablation: sparse-spectrum vs time-domain (autocorrelation) detection.",
    ),
    "abl-importance": _ablation(
        ablations.run_importance,
        "Ablation: ranked component-importance scores for the self-tuning stack.",
    ),
}

__all__ = ["REGISTRY", "ExperimentResult", "Series"]
