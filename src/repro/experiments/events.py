"""Event-driven vs periodic controller activation: overhead vs response.

The paper's loop recomputes every ``S`` regardless of whether anything
changed (§4.4 fixes ``S`` well below the task period to stay stable).
:mod:`repro.core.events` replaces the clock with triggers — CBS
budget-exhaustion bursts, deadline misses, confidence drops — plus a
periodic fallback floor.  This experiment quantifies the trade the mode
buys, head to head on the same playback:

- **overhead** — controller recomputes per second on the *steady legs*
  of a cliff-load plan (before the cliff once converged, and after the
  cliff once re-converged), where a well-behaved event mode should be
  coasting on its fallback floor;
- **responsiveness** — settling time after the cliff: how long until
  the granted bandwidth re-converges to its post-cliff steady value.

The workload is the Figure 13 playback (25 fps video over the bursty
desktop mix) with a :class:`~repro.faults.injectors.WorkloadFaults`
cliff: per-frame decode cost inflates by ``1 + intensity`` from
``cliff_at`` to the end of the run — the I-frame-burst shape of §4.4's
remark 1, held indefinitely.  Expected shape: event mode cuts steady-leg
recomputes by >= 3x (floor 400 ms vs S = 100 ms) while settling no
slower, because the exhaustion-burst trigger reacts within one burst
window instead of waiting for the next sampling tick.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, Series
from repro.sim.time import MS, SEC

#: the two controller activation modes under comparison
MODES = ("periodic", "event")

#: late-frame threshold shared with fig13 (a 25 fps frame > 80 ms late)
MISS_THRESHOLD_MS = 80.0

#: cliff onset: give the loop time to converge on the pre-cliff cost
#: (the cold-start ramp takes ~3 s; the pre-cliff steady leg starts later)
CLIFF_AT = 6 * SEC

#: steady legs exclude this much after cold start / after the cliff
SETTLE_GRACE = 4 * SEC

#: decode-cost inflation scale: the cliff must clear the spread headroom
#: LFS++ provisions, or no mode has anything to react to
COMPUTE_FACTOR = 2.5

#: settling tolerance: within this fraction of the final grant counts
SETTLE_TOL = 0.10


def _settling_time(grants: list[tuple[int, float]], onset: int, until: int) -> float:
    """Nanoseconds from ``onset`` until the grant stays within tolerance.

    Classic control-theory settling time over the grant samples in
    ``[onset, until)``: the final value is the last sample of the
    window, and settling is the first time after which *every* later
    sample stays within ``SETTLE_TOL`` of it.  The window must end
    before the playback drains, or the post-workload grant decay would
    masquerade as never settling.  NaN when the window is empty.
    """
    post = [(t, g) for t, g in grants if onset <= t < until]
    if not post:
        return float("nan")
    final = post[-1][1]
    if final <= 0.0:
        return float("nan")
    settled_at = onset
    for t, g in post:
        if abs(g - final) > SETTLE_TOL * final:
            settled_at = t  # still outside the band: settling is later
    return float(settled_at - onset)


def _leg_rate(times: list[int], start: int, end: int) -> float:
    """Recomputes per simulated second inside ``[start, end)``."""
    if end <= start:
        return float("nan")
    n = sum(1 for t in times if start <= t < end)
    return n / ((end - start) / SEC)


def _one_rep(mode: str, intensity: float, n_frames: int, seed: int) -> dict:
    """One playback in one activation mode; returns the metrics dict."""
    from repro.core import EventTriggerConfig, LfsPlusPlus, SelfTuningRuntime
    from repro.core.analyser import AnalyserConfig
    from repro.core.controller import TaskControllerConfig
    from repro.experiments.fig13 import VIDEO_SPECTRUM
    from repro.faults.injectors import WorkloadFaults
    from repro.faults.plan import FaultPlan
    from repro.metrics import InterFrameProbe
    from repro.workloads import VideoPlayer
    from repro.workloads.desktop import desktop_load, desktop_suite
    from repro.workloads.mplayer import VideoPlayerConfig

    rt = SelfTuningRuntime()
    player = VideoPlayer(VideoPlayerConfig(seed=seed))
    cliff = WorkloadFaults(
        overload=FaultPlan.steps([(CLIFF_AT, None, intensity)]),
        compute_factor=COMPUTE_FACTOR,
        seed=seed,
    )
    proc = rt.spawn("mplayer", cliff.wrap(player.program(n_frames)))
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(rt.kernel)
    for i, cfg in enumerate(desktop_suite(seed + 40)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))

    sampling = 100 * MS
    config = TaskControllerConfig(
        sampling_period=sampling,
        trigger=mode,
        events=EventTriggerConfig() if mode == "event" else None,
    )
    task = rt.adopt(
        proc,
        feedback=LfsPlusPlus(),
        controller_config=config,
        analyser_config=AnalyserConfig(spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC),
    )
    horizon = (n_frames * 40 + 2000) * MS
    rt.run(horizon)

    controller = task.controller
    times = [t for t, _ in controller.period_history]
    grants = [(t, req.bandwidth) for t, req in controller.granted_history]
    ift_ms = np.array(probe.inter_frame_times, dtype=np.float64) / MS
    late = int(np.count_nonzero(ift_ms > MISS_THRESHOLD_MS)) if ift_ms.size else 0
    # steady legs: converged pre-cliff, and re-converged post-cliff
    pre = _leg_rate(times, SETTLE_GRACE, CLIFF_AT)
    post = _leg_rate(times, CLIFF_AT + SETTLE_GRACE, horizon)
    metrics = {
        "mode": mode,
        "recomputes": controller.activations,
        "recompute_rate": controller.activations / (horizon / SEC),
        "steady_rate": float(np.nanmean([pre, post])),
        "settling_ms": _settling_time(grants, CLIFF_AT, CLIFF_AT + SETTLE_GRACE) / MS,
        "miss_ratio": late / ift_ms.size if ift_ms.size else 1.0,
        "frames_played": player.frames_played,
        "cause_counts": dict(getattr(task.timer, "cause_counts", {})),
        "recompute_times": times,
        "horizon": horizon,
    }
    return metrics


def run(
    *,
    reps: int = 2,
    n_frames: int = 300,
    intensity: float = 0.8,
    seed0: int = 9100,
    map_fn=map,
) -> ExperimentResult:
    """Compare event-driven and periodic activation on a cliff load.

    ``map_fn`` shards the (mode x repetition) grid; every repetition is
    an independent simulation seeded ``seed0 + r``.
    """
    result = ExperimentResult(
        experiment="events",
        title="Event-driven vs periodic activation: recompute overhead vs settling",
    )
    grid = [(mode, seed0 + r) for mode in MODES for r in range(reps)]
    units = list(map_fn(_rep_unit, [(mode, intensity, n_frames, seed) for mode, seed in grid]))

    by_mode: dict[str, list[dict]] = {mode: [] for mode in MODES}
    for (mode, _), metrics in zip(grid, units, strict=True):
        by_mode[mode].append(metrics)

    curves = {mode: Series(name=f"recompute_rate[{mode}]") for mode in MODES}
    summary: dict[str, dict] = {}
    for mode in MODES:
        ms = by_mode[mode]
        steady = float(np.nanmean([m["steady_rate"] for m in ms]))
        settling = [m["settling_ms"] for m in ms if not np.isnan(m["settling_ms"])]
        settling_ms = float(np.mean(settling)) if settling else float("nan")
        causes: dict[str, int] = {}
        for m in ms:
            for cause, n in m["cause_counts"].items():
                causes[cause] = causes.get(cause, 0) + n
        summary[mode] = {"steady": steady, "settling_ms": settling_ms}
        result.add_row(
            mode=mode,
            recomputes=int(sum(m["recomputes"] for m in ms)),
            recompute_rate=float(np.mean([m["recompute_rate"] for m in ms])),
            steady_rate=steady,
            settling_ms=settling_ms,
            miss_ratio=float(np.mean([m["miss_ratio"] for m in ms])),
            frames_played=float(np.mean([m["frames_played"] for m in ms])),
            causes=", ".join(f"{k}={v}" for k, v in sorted(causes.items())) or None,
        )
        # recompute rate over time, 1 s bins averaged across reps
        horizon = ms[0]["horizon"]
        n_bins = max(1, horizon // SEC)
        counts = np.zeros(n_bins, dtype=np.float64)
        for m in ms:
            for t in m["recompute_times"]:
                b = min(int(t // SEC), n_bins - 1)
                counts[b] += 1.0
        counts /= len(ms)
        for b in range(int(n_bins)):
            curves[mode].add(float(b), float(counts[b]))
    result.series.extend(curves.values())
    reduction = (
        summary["periodic"]["steady"] / summary["event"]["steady"]
        if summary["event"]["steady"] > 0
        else float("inf")
    )
    result.notes.append(
        f"steady-leg recompute reduction: {reduction:.1f}x "
        f"(periodic {summary['periodic']['steady']:.2f}/s vs "
        f"event {summary['event']['steady']:.2f}/s); "
        f"settling {summary['periodic']['settling_ms']:.0f} ms -> "
        f"{summary['event']['settling_ms']:.0f} ms after the cliff"
    )
    result.notes.append(
        "expected: >= 3x fewer steady-leg recomputes in event mode with "
        "settling no worse (the exhaustion-burst trigger reacts within one "
        "burst window instead of the next sampling tick)"
    )
    return result


# repro: allow[CC001]  -- reaches the idempotent cycle-adapter registry; deterministic per process
def _rep_unit(args: tuple) -> dict:
    """Picklable work unit for process-pool ``map_fn`` sharding."""
    return _one_rep(*args)
