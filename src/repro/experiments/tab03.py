"""Table 3: inter-frame times under LFS++ with rising real-time load.

The complete machinery (tracer + period analyser + LFS++ + supervisor)
plays a 25 fps video while synthetic periodic load fills 20-70% of the
CPU inside static reservations.

Expected shape (paper): the average inter-frame time stays pinned at
~40-41 ms up to 60% load (the controller absorbs the interference by
re-tuning the reservation), the standard deviation grows with the load,
and at 70% the system is overloaded and the average too starts slipping.
"""

from __future__ import annotations

import numpy as np

from repro.core import LfsPlusPlus, SelfTuningRuntime
from repro.core.analyser import AnalyserConfig
from repro.core.controller import TaskControllerConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.fig13 import VIDEO_SPECTRUM
from repro.metrics import InterFrameProbe
from repro.sim.time import MS, SEC
from repro.workloads import VideoPlayer, periodic_task
from repro.workloads.desktop import desktop_load, desktop_suite
from repro.workloads.mplayer import VideoPlayerConfig
from repro.workloads.periodic import load_set


# repro: allow[CC001]  -- reaches the idempotent cycle-adapter registry; deterministic per process
def run_one(load: float, n_frames: int = 1000, seed: int = 3000) -> tuple[float, float]:
    """One adaptive playback under ``load``; returns (mean, std) IFT ms."""
    rt = SelfTuningRuntime()
    player = VideoPlayer(VideoPlayerConfig(seed=seed))
    proc = rt.spawn("mplayer", player.program(n_frames))
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(rt.kernel)
    for i, cfg in enumerate(desktop_suite(seed + 40)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))
    rt.adopt(
        proc,
        feedback=LfsPlusPlus(),
        controller_config=TaskControllerConfig(sampling_period=100 * MS),
        analyser_config=AnalyserConfig(spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC),
    )
    if load > 0:
        for i, cfg in enumerate(load_set(load, seed=seed + 50)):
            lp = rt.spawn(f"rtload{i}", periodic_task(cfg))
            rt.add_static_reservation(lp, budget=int(cfg.cost * 1.05) + 200_000, period=cfg.period)
    rt.run((n_frames * 40 + 2000) * MS)
    ift = np.array(probe.inter_frame_times, dtype=np.float64) / MS
    if ift.size < 2:
        return float("nan"), float("nan")
    return float(ift.mean()), float(ift.std(ddof=1))


def run(
    *,
    loads: tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    n_frames: int = 1000,
    seed: int = 3000,
    map_fn=map,
) -> ExperimentResult:
    """Sweep the periodic workload levels of Table 3.

    ``map_fn`` shards the load levels — each :func:`run_one` is a fully
    deterministic end-to-end simulation seeded independently of execution
    order, so parallel sweeps are bit-identical to serial ones.
    """
    result = ExperimentResult(
        experiment="tab03",
        title="Inter-frame times with LFS++ under periodic real-time load (Table 3)",
    )
    n = len(loads)
    stats = map_fn(run_one, list(loads), [n_frames] * n, [seed] * n)
    for load, (mean, std) in zip(loads, stats, strict=True):
        result.add_row(
            periodic_workload_pct=round(load * 100),
            avg_ift_ms=mean,
            std_ift_ms=std,
        )
    result.notes.append(
        "expected: mean pinned at ~40-41ms until the system overloads "
        "(70%), std growing monotonically with load"
    )
    return result
