"""Result containers shared by all experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence


@dataclass
class Series:
    """One curve: x values, y values, optional error bars."""

    name: str
    x: list = field(default_factory=list)
    y: list = field(default_factory=list)
    yerr: list | None = None

    def add(self, x, y, yerr=None) -> None:
        """Append one point."""
        self.x.append(x)
        self.y.append(y)
        if yerr is not None:
            if self.yerr is None:
                self.yerr = []
            self.yerr.append(yerr)


@dataclass
class ExperimentResult:
    """Everything an experiment produced, renderable as a text report."""

    experiment: str
    title: str
    #: column names of :attr:`rows`
    columns: list[str] = field(default_factory=list)
    #: the table the paper prints (one dict per row)
    rows: list[dict] = field(default_factory=list)
    #: the curves the paper plots
    series: list[Series] = field(default_factory=list)
    #: free-form remarks (substitutions, deviations, measured environment)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append a table row; establishes columns on first use."""
        if not self.columns:
            self.columns = list(values.keys())
        self.rows.append(values)

    def series_by_name(self, name: str) -> Series:
        """Find a series (raises ``KeyError`` if absent)."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)

    def to_text(self) -> str:
        """Render the result as the text report the CLI prints."""
        out = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            cols = self.columns or list(self.rows[0].keys())
            widths = {
                c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in self.rows)) for c in cols
            }
            out.append("  ".join(str(c).ljust(widths[c]) for c in cols))
            out.append("  ".join("-" * widths[c] for c in cols))
            for r in self.rows:
                out.append("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in cols))
        for s in self.series:
            out.append(f"-- series: {s.name} ({len(s.x)} points)")
            for i, (x, y) in enumerate(zip(s.x, s.y, strict=True)):
                err = f" +/- {_fmt(s.yerr[i])}" if s.yerr is not None else ""
                out.append(f"   {_fmt(x):>12}  {_fmt(y)}{err}")
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)


    def to_csv(self) -> str:
        """Render rows and series as CSV (one block per section).

        The row table comes first; every series follows as a
        ``series,name,x,y[,yerr]`` block.  Intended for feeding external
        plotting tools (`repro-exp run fig01 --csv out.csv`).
        """
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        if self.rows:
            cols = self.columns or list(self.rows[0].keys())
            writer.writerow(cols)
            for r in self.rows:
                writer.writerow([r.get(c) for c in cols])
        for s in self.series:
            has_err = s.yerr is not None
            header = ["series", "name", "x", "y"] + (["yerr"] if has_err else [])
            writer.writerow(header)
            for i, (x, y) in enumerate(zip(s.x, s.y, strict=True)):
                row = ["series", s.name, x, y]
                if has_err:
                    row.append(s.yerr[i])
                writer.writerow(row)
        return buf.getvalue()


    def to_jsonable(self) -> dict:
        """A plain-JSON view of the result (numpy scalars coerced).

        This is what the cache metadata, the ``BENCH_*.json`` emitter and
        the serial-vs-parallel equality checks operate on: two runs are
        considered equal when their jsonable views are equal.
        """
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [{k: _jsonable(v) for k, v in row.items()} for row in self.rows],
            "series": [
                {
                    "name": s.name,
                    "x": [_jsonable(v) for v in s.x],
                    "y": [_jsonable(v) for v in s.y],
                    "yerr": None if s.yerr is None else [_jsonable(v) for v in s.yerr],
                }
                for s in self.series
            ],
            "notes": list(self.notes),
        }

    def comparable(self, *, ignore_columns: tuple[str, ...] = ()) -> dict:
        """Like :meth:`to_jsonable` but with wall-clock columns dropped.

        Experiments that measure host wall-clock time (fig06/fig07 declare
        theirs in a module-level ``TIMING_COLUMNS``) can never be
        bit-identical across runs; everything else must be.
        """
        d = self.to_jsonable()
        if ignore_columns:
            drop = set(ignore_columns)
            d["columns"] = [c for c in d["columns"] if c not in drop]
            d["rows"] = [{k: v for k, v in row.items() if k not in drop} for row in d["rows"]]
        return d


def _jsonable(v):
    """Coerce numpy scalars (and anything float/int-like) to plain Python."""
    if v is None or isinstance(v, (bool, int, str)):
        return v
    if isinstance(v, float):
        return v
    if hasattr(v, "item"):  # numpy scalar
        return v.item()
    return str(v)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and sample standard deviation (0 for n < 2)."""
    vals = list(values)
    n = len(vals)
    if n == 0:
        return 0.0, 0.0
    mean = sum(vals) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    return mean, var**0.5
