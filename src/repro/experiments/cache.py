"""Content-addressed on-disk cache for :class:`ExperimentResult`.

Every cache entry is keyed on the experiment *name*, the canonicalised
``run()`` keyword arguments and a code digest covering the **entire**
``repro`` package source tree (experiments depend on ``repro.sim``,
``repro.core``, ``repro.workloads`` and on sibling experiment modules,
e.g. fig07/fig08/fig09 reuse ``collect_traces`` from fig06 — so only the
whole-tree digest makes invalidation sound), plus the experiment's own
module when it lives outside the package (dynamically registered
entries).  Therefore

- re-running with the same parameters is a hit,
- changing any parameter is a miss,
- editing *any* ``repro`` source file is a miss (stale results can never
  be served after the implementation — simulator, workloads or
  experiment code — changed).

The tree digest is computed once per process and memoised; editing
sources *while* a process is running is not detected until the next
invocation, which is the granularity that matters for the CLI and CI.

Entries live under ``<cache_dir>/<experiment>/<key>.pkl`` (a pickled
:class:`ExperimentResult`) next to a human-readable ``<key>.json`` with
the key's provenance.  Writes go to a uniquely named temporary file in
the same directory followed by ``os.replace``, so a crashed run never
leaves a truncated entry behind and concurrent writers of the same key
cannot interleave; a corrupted entry is evicted on read and simply
recomputed.

The default cache directory is ``$REPRO_CACHE_DIR`` when set, else
``.repro-cache/`` under the current working directory (gitignored).
"""

from __future__ import annotations

import hashlib
import contextlib
import json
import os
import pickle
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.base import ExperimentResult

#: environment variable overriding the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default cache directory name (relative to the current working directory)
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / DEFAULT_CACHE_DIRNAME


def canonical_kwargs(kwargs: dict) -> str:
    """A stable text form of ``run()`` kwargs, independent of dict order.

    Sequences are normalised (tuple vs list does not change the key),
    floats go through ``repr`` (shortest round-trip form), and
    non-literal values (callables such as a ``map_fn`` injected by the
    runner) are rejected so execution strategy never leaks into the key.
    """
    return json.dumps(
        {k: _canon(v) for k, v in sorted(kwargs.items())},
        sort_keys=True,
        separators=(",", ":"),
    )


def _canon(v):
    if v is None or isinstance(v, (bool, int, str)):
        return v
    if isinstance(v, float):
        return repr(v)
    if isinstance(v, (tuple, list)):
        return [_canon(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _canon(x) for k, x in sorted(v.items())}
    if hasattr(v, "item"):  # numpy scalar
        return _canon(v.item())
    raise TypeError(f"kwarg value {v!r} is not cacheable (not a literal)")


def code_digest(*modules) -> str:
    """SHA-256 over the source files backing ``modules``.

    Accepts module objects or anything with a resolvable ``__file__``;
    entries without a source file (e.g. namespaces) are skipped.
    :meth:`ResultCache.key_for` combines this with :func:`package_digest`
    so the key also covers dynamically registered experiment modules that
    live outside the ``repro`` package tree (test fixtures, plugins).
    """
    h = hashlib.sha256()
    seen: set[str] = set()
    for mod in modules:
        path = getattr(mod, "__file__", None)
        if not path or path in seen:
            continue
        seen.add(path)
        h.update(path.encode())
        try:
            h.update(Path(path).read_bytes())
        except OSError:
            h.update(b"<unreadable>")
    return h.hexdigest()


def tree_digest(root: Path | str) -> str:
    """SHA-256 over every ``*.py`` file under ``root`` (sorted, path-salted).

    This is the invalidation backbone: experiments transitively import
    the simulator, the workload models and each other, so the only sound
    code digest is one over the whole source tree — a per-module digest
    would silently serve stale results after an edit to a dependency.
    """
    root = Path(root)
    h = hashlib.sha256()
    for p in sorted(root.rglob("*.py")):
        h.update(str(p.relative_to(root)).encode())
        h.update(b"\x00")
        try:
            h.update(p.read_bytes())
        except OSError:
            h.update(b"<unreadable>")
        h.update(b"\x00")
    return h.hexdigest()


#: per-process memo for :func:`package_digest` (root path -> digest)
_PACKAGE_DIGESTS: dict[str, str] = {}


def package_digest() -> str:
    """:func:`tree_digest` of the installed ``repro`` package, memoised."""
    import repro

    root = str(Path(repro.__file__).resolve().parent)
    if root not in _PACKAGE_DIGESTS:
        _PACKAGE_DIGESTS[root] = tree_digest(root)
    return _PACKAGE_DIGESTS[root]


@dataclass
class CacheEntry:
    """What :meth:`ResultCache.get` hands back on a hit."""

    result: ExperimentResult
    created: float
    elapsed_s: float | None


class ResultCache:
    """On-disk pickle store for experiment results, keyed by content.

    ``max_entries`` bounds the number of stored results: when a ``put``
    pushes the cache past the bound, the least-recently-used entries
    (by pickle mtime — reads touch it) are evicted.  ``None`` (the
    default) keeps the historical unbounded behaviour; fleet-scale runs
    that sweep thousands of distinct parameter points should set a bound
    so the on-disk cache cannot grow without limit.
    """

    def __init__(self, root: Path | str | None = None, *, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 or None, got {max_entries}")
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- keys ---------------------------------------------------------

    def key(self, name: str, kwargs: dict, digest: str) -> str:
        """The content hash for (experiment, kwargs, code digest)."""
        h = hashlib.sha256()
        h.update(name.encode())
        h.update(b"\x00")
        h.update(canonical_kwargs(kwargs).encode())
        h.update(b"\x00")
        h.update(digest.encode())
        return h.hexdigest()[:32]

    def key_for(self, name: str, kwargs: dict) -> str:
        """Key for a registered experiment, digesting its backing code.

        The digest combines the whole-``repro``-tree :func:`package_digest`
        (experiments depend on the simulator, the workloads and each
        other) with a :func:`code_digest` of the entry's own module, which
        covers dynamically registered experiments living outside the
        package tree.
        """
        from repro.experiments import REGISTRY

        entry = REGISTRY[name]
        run = getattr(entry, "run", None)
        mod = sys.modules.get(getattr(run, "__module__", "")) or entry
        digest = f"{package_digest()}:{code_digest(mod)}"
        return self.key(name, kwargs, digest)

    # -- storage ------------------------------------------------------

    def _paths(self, name: str, key: str) -> tuple[Path, Path]:
        d = self.root / name
        return d / f"{key}.pkl", d / f"{key}.json"

    def get(self, name: str, key: str) -> CacheEntry | None:
        """Load an entry; evicts and misses on any corruption."""
        pkl, meta = self._paths(name, key)
        if not pkl.exists():
            self.misses += 1
            return None
        try:
            with open(pkl, "rb") as fh:
                result = pickle.load(fh)
            if not isinstance(result, ExperimentResult):
                raise TypeError(f"cache entry holds {type(result).__name__}")
            info = {}
            if meta.exists():
                info = json.loads(meta.read_text(encoding="utf-8"))
        except Exception:
            # corrupted / stale-format entry: evict and recompute
            for p in (pkl, meta):
                with contextlib.suppress(OSError):
                    p.unlink()
            self.misses += 1
            return None
        self.hits += 1
        # LRU touch: a hit marks the entry recently used for eviction
        with contextlib.suppress(OSError):
            os.utime(pkl)
        return CacheEntry(
            result=result,
            created=float(info.get("created", 0.0)),
            elapsed_s=info.get("elapsed_s"),
        )

    def put(
        self,
        name: str,
        key: str,
        result: ExperimentResult,
        *,
        kwargs: dict | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        """Store an entry atomically (never leaves partial files).

        Each writer gets its own uniquely named temporary file (via
        ``tempfile.mkstemp`` in the destination directory), so concurrent
        processes computing the same key cannot interleave writes; the
        last ``os.replace`` wins with a complete entry either way.
        """
        pkl, meta = self._paths(name, key)
        pkl.parent.mkdir(parents=True, exist_ok=True)
        info = {
            "experiment": name,
            "key": key,
            "kwargs": canonical_kwargs(kwargs or {}),
            "created": time.time(),
            "elapsed_s": elapsed_s,
        }
        self._atomic_write(
            pkl, lambda fh: pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self._atomic_write(meta, lambda fh: fh.write(json.dumps(info, indent=2).encode("utf-8")))
        if self.max_entries is not None:
            self._evict_lru(keep=pkl)

    def _evict_lru(self, keep: Path) -> None:
        """Drop least-recently-used entries beyond :attr:`max_entries`.

        Recency is the pickle mtime (touched on every hit).  The entry
        just written (``keep``) is never evicted, even if a concurrent
        writer races this scan with fresher files.
        """
        entries: list[tuple[float, Path]] = []
        for pkl in self.root.glob("*/*.pkl"):
            try:
                entries.append((pkl.stat().st_mtime, pkl))
            except OSError:
                continue  # concurrently evicted by another process
        excess = len(entries) - (self.max_entries or 0)
        if excess <= 0:
            return
        entries.sort(key=lambda item: (item[0], str(item[1])))
        for _, pkl in entries:
            if excess <= 0:
                break
            if pkl == keep:
                continue
            for p in (pkl, pkl.with_suffix(".json")):
                with contextlib.suppress(OSError):
                    p.unlink()
            self.evictions += 1
            excess -= 1

    @staticmethod
    def _atomic_write(dest: Path, write) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(dest.parent), prefix=f"{dest.name}.", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
            os.replace(tmp, dest)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        n = 0
        if self.root.exists():
            for p in sorted(self.root.rglob("*")):
                if p.is_file():
                    p.unlink()
                    n += 1
        return n
