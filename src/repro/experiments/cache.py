"""Content-addressed on-disk cache for :class:`ExperimentResult`.

Every cache entry is keyed on the experiment *name*, the canonicalised
``run()`` keyword arguments and a digest of the experiment module's source
(plus the shared ``base``/``common`` modules it builds on), so

- re-running with the same parameters is a hit,
- changing any parameter is a miss,
- editing the experiment's code is a miss (stale results can never be
  served after the implementation changed).

Entries live under ``<cache_dir>/<experiment>/<key>.pkl`` (a pickled
:class:`ExperimentResult`) next to a human-readable ``<key>.json`` with
the key's provenance.  Writes are atomic (tmp file + ``os.replace``) so a
crashed run never leaves a truncated entry behind; a corrupted entry is
evicted on read and simply recomputed.

The default cache directory is ``$REPRO_CACHE_DIR`` when set, else
``.repro-cache/`` under the current working directory (gitignored).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.base import ExperimentResult

#: environment variable overriding the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default cache directory name (relative to the current working directory)
DEFAULT_CACHE_DIRNAME = ".repro-cache"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / DEFAULT_CACHE_DIRNAME


def canonical_kwargs(kwargs: dict) -> str:
    """A stable text form of ``run()`` kwargs, independent of dict order.

    Sequences are normalised (tuple vs list does not change the key),
    floats go through ``repr`` (shortest round-trip form), and
    non-literal values (callables such as a ``map_fn`` injected by the
    runner) are rejected so execution strategy never leaks into the key.
    """
    return json.dumps(
        {k: _canon(v) for k, v in sorted(kwargs.items())},
        sort_keys=True,
        separators=(",", ":"),
    )


def _canon(v):
    if v is None or isinstance(v, (bool, int, str)):
        return v
    if isinstance(v, float):
        return repr(v)
    if isinstance(v, (tuple, list)):
        return [_canon(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _canon(x) for k, x in sorted(v.items())}
    if hasattr(v, "item"):  # numpy scalar
        return _canon(v.item())
    raise TypeError(f"kwarg value {v!r} is not cacheable (not a literal)")


def code_digest(*modules) -> str:
    """SHA-256 over the source files backing ``modules``.

    Accepts module objects or anything with a resolvable ``__file__``;
    entries without a source file (e.g. namespaces) are skipped.  The
    shared ``base``/``common`` modules are digested alongside each
    experiment module by :meth:`ResultCache.key_for`, so edits to the
    result containers or the scenario builders also invalidate entries.
    """
    h = hashlib.sha256()
    seen: set[str] = set()
    for mod in modules:
        path = getattr(mod, "__file__", None)
        if not path or path in seen:
            continue
        seen.add(path)
        h.update(path.encode())
        try:
            h.update(Path(path).read_bytes())
        except OSError:
            h.update(b"<unreadable>")
    return h.hexdigest()


@dataclass
class CacheEntry:
    """What :meth:`ResultCache.get` hands back on a hit."""

    result: ExperimentResult
    created: float
    elapsed_s: float | None


class ResultCache:
    """On-disk pickle store for experiment results, keyed by content."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------

    def key(self, name: str, kwargs: dict, digest: str) -> str:
        """The content hash for (experiment, kwargs, code digest)."""
        h = hashlib.sha256()
        h.update(name.encode())
        h.update(b"\x00")
        h.update(canonical_kwargs(kwargs).encode())
        h.update(b"\x00")
        h.update(digest.encode())
        return h.hexdigest()[:32]

    def key_for(self, name: str, kwargs: dict) -> str:
        """Key for a registered experiment, digesting its backing code."""
        from repro.experiments import REGISTRY
        from repro.experiments import base as base_mod
        from repro.experiments import common as common_mod

        entry = REGISTRY[name]
        run = getattr(entry, "run", None)
        mod = sys.modules.get(getattr(run, "__module__", "")) or entry
        return self.key(name, kwargs, code_digest(mod, base_mod, common_mod))

    # -- storage ------------------------------------------------------

    def _paths(self, name: str, key: str) -> tuple[Path, Path]:
        d = self.root / name
        return d / f"{key}.pkl", d / f"{key}.json"

    def get(self, name: str, key: str) -> CacheEntry | None:
        """Load an entry; evicts and misses on any corruption."""
        pkl, meta = self._paths(name, key)
        if not pkl.exists():
            self.misses += 1
            return None
        try:
            with open(pkl, "rb") as fh:
                result = pickle.load(fh)
            if not isinstance(result, ExperimentResult):
                raise TypeError(f"cache entry holds {type(result).__name__}")
            info = {}
            if meta.exists():
                info = json.loads(meta.read_text(encoding="utf-8"))
        except Exception:
            # corrupted / stale-format entry: evict and recompute
            for p in (pkl, meta):
                try:
                    p.unlink()
                except OSError:
                    pass
            self.misses += 1
            return None
        self.hits += 1
        return CacheEntry(
            result=result,
            created=float(info.get("created", 0.0)),
            elapsed_s=info.get("elapsed_s"),
        )

    def put(
        self,
        name: str,
        key: str,
        result: ExperimentResult,
        *,
        kwargs: dict | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        """Store an entry atomically (never leaves partial files)."""
        pkl, meta = self._paths(name, key)
        pkl.parent.mkdir(parents=True, exist_ok=True)
        tmp = pkl.with_suffix(".pkl.tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, pkl)
        info = {
            "experiment": name,
            "key": key,
            "kwargs": canonical_kwargs(kwargs or {}),
            "created": time.time(),
            "elapsed_s": elapsed_s,
        }
        tmp_meta = meta.with_suffix(".json.tmp")
        tmp_meta.write_text(json.dumps(info, indent=2), encoding="utf-8")
        os.replace(tmp_meta, meta)

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        n = 0
        if self.root.exists():
            for p in sorted(self.root.rglob("*")):
                if p.is_file():
                    p.unlink()
                    n += 1
        return n
