"""Figure 10: normalised spectrum at varying tracing times.

The amplitude spectrum of an mp3 trace, normalised to its maximum, is
computed for tracing times of 0.2-4 s.  Already at 0.5 s the peak family
at 32.5 / 65 / 97.5 Hz is visible; from 1 s on the periodicity is
"indisputable" (peaks sharpen, the noise floor drops).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.spectrum import SpectrumConfig, sparse_amplitude_spectrum
from repro.experiments.base import ExperimentResult, Series
from repro.experiments.common import build_mp3_scenario, trace_mp3
from repro.sim.time import SEC


@lru_cache(maxsize=1)
def _shared_trace(seed: int, n_frames: int, duration: int) -> np.ndarray:
    """The single event trace every work unit truncates (per-process memo).

    Work units receive only the scenario *parameters* and rebuild the
    trace here — pickling scalars instead of shipping the full int64
    trace once per tracing time, whose serialisation cost would rival the
    spectrum computation for long durations.  The simulation is
    deterministic in ``seed``, so every process reconstructs the
    identical trace (and builds it at most once, thanks to the memo).
    """
    scenario = build_mp3_scenario(seed=seed, n_frames=n_frames)
    trace = np.array(trace_mp3(scenario, duration), dtype=np.int64)
    trace.setflags(write=False)
    return trace


# repro: allow[CC001]  -- reaches the idempotent cycle-adapter registry; deterministic per process
def _spectrum_unit(
    seed: int,
    n_frames: int,
    duration: int,
    t_s: float,
    f_min: float,
    f_max: float,
    df: float,
    fundamental: float,
) -> tuple[Series, dict]:
    """Spectrum + peak-family row for one tracing time (one work unit)."""
    trace = _shared_trace(seed, n_frames, duration)
    config = SpectrumConfig(f_min=f_min, f_max=f_max, df=df)
    freqs = config.frequencies()
    upto = int(t_s * SEC)
    w = trace[trace < upto]
    amp = sparse_amplitude_spectrum(w, freqs)
    peak = amp.max() if amp.size else 1.0
    norm = amp / peak if peak > 0 else amp
    curve = Series(name=f"tracing_{t_s}s")
    for f, a in zip(freqs, norm, strict=True):
        curve.add(float(f), float(a))

    # peak-family visibility: normalised amplitude at the harmonics
    def at(f0: float) -> float:
        i = int(round((f0 - config.f_min) / config.df))
        lo, hi = max(0, i - 5), min(len(norm), i + 6)
        return float(norm[lo:hi].max())

    row = dict(
        tracing_s=t_s,
        n_events=int(w.size),
        peak_32_5=at(fundamental),
        peak_65=at(2 * fundamental),
        peak_97_5=at(3 * fundamental),
        noise_floor=float(np.median(norm)),
    )
    return curve, row


def run(
    *,
    seed: int = 10,
    tracing_times_s: tuple[float, ...] = (0.2, 0.5, 1.0, 2.0, 4.0),
    map_fn=map,
) -> ExperimentResult:
    """Compute normalised spectra for each tracing time.

    ``map_fn`` shards the per-tracing-time spectrum computations; each
    work unit carries only the scenario parameters (scalars) and rebuilds
    the shared trace through :func:`_shared_trace`, so any
    order-preserving map — serial or process-pool — reproduces the
    serial run without pickling the trace per unit.
    """
    result = ExperimentResult(
        experiment="fig10",
        title="Normalised event spectrum vs tracing time (mp3 playback)",
    )
    duration = int(max(tracing_times_s) * SEC)
    n_frames = int(duration / SEC * 33) + 10
    scenario = build_mp3_scenario(seed=seed, n_frames=n_frames)

    fundamental = scenario.player.config.frequency
    n = len(tracing_times_s)
    units = map_fn(
        _spectrum_unit,
        [seed] * n,
        [n_frames] * n,
        [duration] * n,
        list(tracing_times_s),
        [30.0] * n,
        [100.0] * n,
        [0.1] * n,
        [fundamental] * n,
    )
    for curve, row in units:
        result.series.append(curve)
        result.add_row(**row)
    result.notes.append(
        "peaks at 32.5/65/97.5 Hz should be visible from 0.5s and sharpen "
        "with tracing time while the noise floor drops"
    )
    return result
