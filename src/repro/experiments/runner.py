"""Process-pool fan-out layer over the experiment :data:`REGISTRY`.

Two levels of parallelism, both with results bit-identical to a serial
run:

**Registry sharding** (:func:`run_many`) — independent experiments are
submitted to a :class:`~concurrent.futures.ProcessPoolExecutor`; each one
runs serially inside its worker.  This is what ``repro-exp all --jobs N``
and ``repro-exp bench --jobs N`` use.

**Repetition sharding** (:func:`run_experiment` with ``jobs > 1``) — the
expensive sweeps (fig06/fig07/fig10/fig12/tab03) expose a ``map_fn``
keyword: their per-repetition inner loops are written against the builtin
``map`` protocol, and the runner swaps in an order-preserving process-pool
map.  Every work unit derives its seed deterministically from the unit
*index* (``seed0 + r``), never from worker identity or execution order, so
``--jobs 1`` and ``--jobs 8`` produce the same
:class:`~repro.experiments.base.ExperimentResult` — only wall-clock
timing columns (declared per-module in ``TIMING_COLUMNS``) may differ,
exactly as they differ between two serial runs.

Both paths consult an optional on-disk :class:`~repro.experiments.cache.
ResultCache`; cached entries are keyed on name + canonicalised kwargs +
code digest, so parallel and serial invocations share hits.
"""

from __future__ import annotations

import inspect
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.experiments.base import ExperimentResult
from repro.experiments.cache import ResultCache


@dataclass
class RunOutcome:
    """One experiment execution: the result plus how it was obtained."""

    name: str
    result: ExperimentResult
    elapsed_s: float
    cached: bool = False
    jobs: int = 1
    key: str | None = None


class _PoolMap:
    """Order-preserving ``map`` over a process pool (the sharding hook).

    Wraps ``ProcessPoolExecutor.map``; results come back in submission
    order whatever the ``chunksize``, which is what keeps parallel runs
    bit-identical to serial ones.  ``chunksize=1`` (the default) fans
    work units out one-per-task — right for expensive units like a whole
    experiment repetition; batch runners over many cheap units (the
    fleet engine) raise it to amortise pickling and task dispatch.
    """

    def __init__(self, executor: ProcessPoolExecutor, chunksize: int = 1):
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self._executor = executor
        self._chunksize = chunksize

    def __call__(self, fn, *iterables):
        return self._executor.map(fn, *iterables, chunksize=self._chunksize)


def _supports_map_fn(run_fn) -> bool:
    try:
        return "map_fn" in inspect.signature(run_fn).parameters
    except (TypeError, ValueError):  # builtins / exotic callables
        return False


def _resolve(name: str):
    from repro.experiments import REGISTRY

    entry = REGISTRY.get(name)
    if entry is None:
        raise KeyError(f"unknown experiment {name!r}")
    return entry


def run_experiment(
    name: str,
    overrides: dict | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    mp_context=None,
    chunksize: int = 1,
) -> RunOutcome:
    """Run one experiment, optionally sharding its inner loops.

    ``overrides`` are the user-facing ``run()`` kwargs and are the only
    thing that enters the cache key — the execution strategy (``jobs``,
    ``mp_context``, ``chunksize``) never does, because it cannot change
    the result.  ``mp_context`` is forwarded to the executor; workers
    only receive picklable module-level callables, so every start method
    (fork/spawn/forkserver) produces identical results.  ``chunksize``
    batches map work units per pool task (see :class:`_PoolMap`).
    """
    entry = _resolve(name)
    overrides = dict(overrides or {})

    key = None
    if cache is not None:
        key = cache.key_for(name, overrides)
        hit = cache.get(name, key)
        if hit is not None:
            return RunOutcome(
                name=name, result=hit.result, elapsed_s=0.0, cached=True, jobs=jobs, key=key
            )

    start = time.perf_counter()
    if jobs > 1 and _supports_map_fn(entry.run):
        with ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context) as executor:
            result = entry.run(**overrides, map_fn=_PoolMap(executor, chunksize))
    else:
        result = entry.run(**overrides)
    elapsed = time.perf_counter() - start

    if cache is not None and key is not None:
        cache.put(name, key, result, kwargs=overrides, elapsed_s=elapsed)
    return RunOutcome(name=name, result=result, elapsed_s=elapsed, jobs=jobs, key=key)


def _run_entry(run_fn, overrides: dict) -> tuple[ExperimentResult, float]:
    """Worker-side body for :func:`run_many`.

    Receives the experiment's ``run`` callable directly (module-level
    functions pickle by reference) rather than re-resolving the name from
    ``REGISTRY`` in the worker: under the ``spawn``/``forkserver`` start
    methods a fresh interpreter only sees statically registered entries,
    so dynamically registered ones would vanish.  Shipping the callable
    works under every start method.
    """
    start = time.perf_counter()
    result = run_fn(**overrides)
    return result, time.perf_counter() - start


def run_many(
    names: list[str],
    overrides_map: dict[str, dict] | None = None,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    mp_context=None,
) -> list[RunOutcome]:
    """Shard a list of experiments across a process pool.

    Results come back in the order of ``names`` regardless of which
    worker finished first.  Cache lookups happen up front in the parent
    process, so only the misses are submitted to the pool — and each
    miss is submitted as its *run callable*, never as a registry name,
    so any multiprocessing start method (``mp_context``) works even for
    dynamically registered experiments.
    """
    overrides_map = dict(overrides_map or {})
    entries = {name: _resolve(name) for name in names}  # fail fast on unknown names

    outcomes: dict[str, RunOutcome] = {}
    pending: list[str] = []
    keys: dict[str, str] = {}
    for name in names:
        overrides = dict(overrides_map.get(name, {}))
        if cache is not None:
            key = cache.key_for(name, overrides)
            keys[name] = key
            hit = cache.get(name, key)
            if hit is not None:
                outcomes[name] = RunOutcome(
                    name=name, result=hit.result, elapsed_s=0.0, cached=True, jobs=jobs, key=key
                )
                continue
        pending.append(name)

    if pending:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs, mp_context=mp_context) as executor:
                futures = {
                    name: executor.submit(
                        _run_entry, entries[name].run, dict(overrides_map.get(name, {}))
                    )
                    for name in pending
                }
                computed = {name: fut.result() for name, fut in futures.items()}
        else:
            computed = {
                name: _run_entry(entries[name].run, dict(overrides_map.get(name, {})))
                for name in pending
            }
        for name, (result, elapsed) in computed.items():
            key = keys.get(name)
            if cache is not None and key is not None:
                cache.put(
                    name, key, result, kwargs=dict(overrides_map.get(name, {})), elapsed_s=elapsed
                )
            outcomes[name] = RunOutcome(
                name=name, result=result, elapsed_s=elapsed, jobs=jobs, key=key
            )

    return [outcomes[name] for name in names]
