"""Table 1: overhead of the tracers on an ffmpeg transcode.

The transcode runs to completion under four configurations — no tracer,
qtrace (the paper's), qostrace and strace (both ptrace-based) — ten times
each; the table reports mean wall time, relative overhead over NOTRACE,
and the run-to-run standard deviation.

Expected shape (paper): QTRACE ≈ 0.6% ≪ QOSTRACE ≈ 2.7% < STRACE ≈ 5.5%.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, mean_std
from repro.sched import RoundRobinScheduler
from repro.sim import Kernel, SEC
from repro.sim.time import MS
from repro.tracer import QTracer, qostrace, strace
from repro.workloads import FfmpegConfig, ffmpeg_transcode


def _one_transcode(tracer_kind: str, seed: int) -> float:
    """Run one transcode; returns wall time in seconds."""
    kernel = Kernel(RoundRobinScheduler())
    config = FfmpegConfig(seed=seed)
    proc = kernel.spawn("ffmpeg", ffmpeg_transcode(config))

    if tracer_kind == "qtrace":
        tracer = QTracer()
        tracer.trace_pid(proc.pid)
        kernel.add_tracer(tracer)
        # the download agent periodically drains the buffer (the real cost
        # of qtrace: a few context switches per sampling period)
        tracer.spawn_download_agent(kernel, period=100 * MS)
    elif tracer_kind == "qostrace":
        tracer = qostrace()
        tracer.record = False  # overhead study: skip event storage
        tracer.trace_pid(proc.pid)
        kernel.add_tracer(tracer)
    elif tracer_kind == "strace":
        tracer = strace()
        tracer.record = False
        tracer.trace_pid(proc.pid)
        kernel.add_tracer(tracer)
    elif tracer_kind != "notrace":
        raise ValueError(f"unknown tracer {tracer_kind!r}")

    end = kernel.run_until_exit([proc], hard_limit=120 * SEC)
    return end / SEC


def run(*, reps: int = 10) -> ExperimentResult:
    """Measure all four configurations, ``reps`` repetitions each."""
    result = ExperimentResult(
        experiment="tab01",
        title="Tracer overhead on an ffmpeg transcode",
    )
    baseline_mean = None
    for kind in ("notrace", "qtrace", "qostrace", "strace"):
        walls = [_one_transcode(kind, seed=100 + r) for r in range(reps)]
        mean, std = mean_std(walls)
        if kind == "notrace":
            baseline_mean = mean
            overhead = None
        else:
            overhead = (mean - baseline_mean) / baseline_mean
        result.add_row(
            tracer=kind.upper(),
            mean_s=mean,
            relative_overhead=overhead,
            std_s=std,
        )
    result.notes.append(
        "overheads are emergent from the cost structure: qtrace pays ~0.5us "
        "per logged event plus periodic download context switches; the "
        "ptrace tracers pay 2 context switches + tracer work per syscall stop"
    )
    return result
