"""Figure 4: statistics of the system calls performed by mplayer.

The paper traces a three-minute mplayer run and histograms the calls: the
trace is dominated by ``ioctl`` (the ALSA path), with time queries and
file I/O behind it.  We run the generative player model under qtrace and
report the same histogram.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import build_mp3_scenario
from repro.sim.time import SEC


def run(*, duration_s: int = 60, seed: int = 4) -> ExperimentResult:
    """Trace an mp3 playback for ``duration_s`` and histogram the calls."""
    scenario = build_mp3_scenario(seed=seed, n_frames=int(duration_s * 33) + 10)
    scenario.kernel.run(duration_s * SEC)

    counts: dict[str, int] = {}
    for (pid, nr), n in scenario.tracer.call_counts.items():
        if pid != scenario.player_pid:
            continue
        counts[nr.value] = counts.get(nr.value, 0) + n
    total = sum(counts.values())

    result = ExperimentResult(
        experiment="fig04",
        title=f"System calls of mplayer over {duration_s}s of mp3 playback",
    )
    for name, n in sorted(counts.items(), key=lambda kv: -kv[1]):
        result.add_row(syscall=name, count=n, fraction=n / total if total else 0.0)
    result.notes.append(f"total traced calls: {total}")
    return result
