"""Figure 7: spectrum-computation cost and precision vs H and f_max.

At fixed δf = 0.5 Hz the scan ceiling f_max sweeps {100, 200, 300, 400}
Hz.  Cost grows linearly with f_max (more frequency samples); precision
*degrades* with f_max because a wider band admits more spurious
high-order candidates — the paper's reason for keeping the band tight.
"""

from __future__ import annotations

import time

from repro.core.peaks import PeakDetector
from repro.core.spectrum import SpectrumConfig, sparse_amplitude_spectrum
from repro.experiments.base import ExperimentResult, mean_std
from repro.experiments.fig06 import collect_traces, window
from repro.sim.time import SEC

#: wall-clock columns that legitimately differ between two runs
TIMING_COLUMNS = ("transform_ms", "transform_ms_std")


def run(
    *,
    reps: int = 10,
    df: float = 0.5,
    fmax_values: tuple[float, ...] = (100.0, 200.0, 300.0, 400.0),
    horizons_s: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    map_fn=map,
) -> ExperimentResult:
    """Sweep (H, f_max) and measure transform time + detected frequency.

    ``map_fn`` shards trace collection across workers (see fig06); the
    timed transforms stay serial.
    """
    result = ExperimentResult(
        experiment="fig07",
        title="Spectrum computation time and detection precision vs H and fmax (df=0.5Hz)",
    )
    duration = int(max(horizons_s) * SEC) + SEC
    # lightly loaded traces so the wider band has spurious peaks to find
    traces = collect_traces(reps, duration, seed0=700, clean=False, map_fn=map_fn)
    detector = PeakDetector()

    for f_max in fmax_values:
        config = SpectrumConfig(f_min=30.0, f_max=f_max, df=df)
        freqs = config.frequencies()
        for h_s in horizons_s:
            h_ns = int(h_s * SEC)
            times_ms: list[float] = []
            detections: list[float] = []
            for trace in traces:
                w = window(trace, h_ns, duration)
                t0 = time.perf_counter()
                amp = sparse_amplitude_spectrum(w, freqs)
                times_ms.append((time.perf_counter() - t0) * 1e3)
                found = detector.detect(freqs, amp)
                if found.frequency is not None:
                    detections.append(found.frequency)
            t_mean, t_std = mean_std(times_ms)
            f_mean, f_std = mean_std(detections)
            result.add_row(
                fmax_hz=f_max,
                horizon_s=h_s,
                transform_ms=t_mean,
                transform_ms_std=t_std,
                detected_hz=f_mean,
                detected_hz_std=f_std,
            )
    result.notes.append(
        "cost grows ~ linearly with fmax; variability of the detected "
        "frequency generally grows with fmax"
    )
    return result
