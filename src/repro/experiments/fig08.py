"""Figure 8: peak-detection heuristic cost vs ε and H.

The heuristic's cost (Eq. 5) is measured as wall-clock time over the
already-computed spectrum, sweeping the harmonic tolerance ε ∈ [0.1, 1.0]
and the horizon H ∈ {0.5, 1, 1.5, 2} s, both with the α threshold
disabled (α = 0: every local maximum is a candidate — the paper's top
plot) and with α = 20% (bottom plot).

Expected shape: cost roughly linear in ε and in H; the α threshold cuts
it by several times by pruning candidates early.
"""

from __future__ import annotations

import time

from repro.core.peaks import PeakConfig, PeakDetector
from repro.core.spectrum import SpectrumConfig, sparse_amplitude_spectrum
from repro.experiments.base import ExperimentResult, mean_std
from repro.experiments.fig06 import collect_traces, window
from repro.sim.time import SEC


def run(
    *,
    reps: int = 10,
    epsilons: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    horizons_s: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0),
    alphas: tuple[float, ...] = (0.0, 0.2),
    detect_reps: int = 5,
) -> ExperimentResult:
    """Sweep (ε, H, α) and time the heuristic on precomputed spectra."""
    result = ExperimentResult(
        experiment="fig08",
        title="Peak-detection overhead vs ε and H, without/with the α threshold",
    )
    duration = int(max(horizons_s) * SEC) + SEC
    traces = collect_traces(reps, duration, seed0=800, clean=False)
    config = SpectrumConfig(f_min=30.0, f_max=100.0, df=0.1)
    freqs = config.frequencies()

    # precompute spectra once per (trace, H)
    spectra: dict[float, list] = {}
    for h_s in horizons_s:
        h_ns = int(h_s * SEC)
        spectra[h_s] = [sparse_amplitude_spectrum(window(t, h_ns, duration), freqs) for t in traces]

    for alpha in alphas:
        for eps in epsilons:
            # α is applied relative to the spectrum maximum here: that is
            # the variant that prunes noise-floor ripples and reproduces
            # the several-fold cost reduction between the two Fig. 8 plots
            detector = PeakDetector(PeakConfig(alpha=alpha, epsilon=eps, alpha_ref="max"))
            for h_s in horizons_s:
                times_us: list[float] = []
                elements: list[int] = []
                for amp in spectra[h_s]:
                    t0 = time.perf_counter()
                    for _ in range(detect_reps):
                        found = detector.detect(freqs, amp)
                    times_us.append((time.perf_counter() - t0) / detect_reps * 1e6)
                    elements.append(found.elements_examined)
                t_mean, t_std = mean_std(times_us)
                result.add_row(
                    alpha=alpha,
                    epsilon=eps,
                    horizon_s=h_s,
                    detect_us=t_mean,
                    detect_us_std=t_std,
                    elements_examined=int(sum(elements) / len(elements)),
                )
    result.notes.append(
        "elements_examined is the Eq. 5 cost metric; wall time should track it"
    )
    return result
