"""Terminal visualisation helpers.

Everything the examples and the CLI print beyond plain tables: ASCII
renderings of spectra, time series and histograms.  Deliberately free of
plotting-library dependencies so the repository stays runnable offline.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def ascii_spectrum(
    freqs: Sequence[float],
    amplitude: Sequence[float],
    *,
    rows: int = 12,
    cols: int = 70,
    marker: str = "#",
) -> str:
    """Render an amplitude spectrum as a column chart.

    Frequencies are binned into ``cols`` columns (each column shows its
    bin's maximum); the tallest column spans ``rows`` lines.
    """
    freqs = np.asarray(freqs, dtype=np.float64)
    amp = np.asarray(amplitude, dtype=np.float64)
    if freqs.size == 0 or freqs.size != amp.size:
        raise ValueError("freqs and amplitude must be equal-length and non-empty")
    cols = min(cols, freqs.size)
    bins = np.array_split(np.arange(freqs.size), cols)
    heights = np.array([amp[b].max() for b in bins])
    peak = heights.max()
    if peak > 0:
        heights = heights / peak
    lines = []
    for level in range(rows, 0, -1):
        threshold = level / rows
        lines.append("".join(marker if h >= threshold else " " for h in heights))
    axis_lo = f"{freqs[0]:.0f} Hz"
    axis_hi = f"{freqs[-1]:.0f} Hz"
    pad = max(1, cols - len(axis_lo) - len(axis_hi))
    return "\n".join(lines) + "\n" + "-" * cols + "\n" + axis_lo + " " * pad + axis_hi


def ascii_timeline(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    rows: int = 10,
    cols: int = 70,
    marker: str = "*",
) -> str:
    """Render a time series as a scatter chart with a y-axis scale."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size == 0 or xs.size != ys.size:
        raise ValueError("xs and ys must be equal-length and non-empty")
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    grid = [[" "] * cols for _ in range(rows)]
    for x, y in zip(xs, ys, strict=True):
        col = int((x - x_lo) / (x_hi - x_lo) * (cols - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (rows - 1))
        grid[rows - 1 - row][col] = marker
    lines = []
    for i, row_chars in enumerate(grid):
        if i == 0:
            label = f"{y_hi:8.3g} |"
        else:
            label = f"{y_lo:8.3g} |" if i == rows - 1 else " " * 8 + " |"
        lines.append(label + "".join(row_chars))
    lines.append(" " * 9 + "+" + "-" * cols)
    lines.append(" " * 10 + f"{x_lo:.3g}" + " " * max(1, cols - 12) + f"{x_hi:.3g}")
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    *,
    bins: int = 12,
    width: int = 50,
    marker: str = "#",
    fmt: str = "{:8.3g}",
) -> str:
    """Render a horizontal histogram of ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty sequence")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:], strict=True):
        bar = marker * int(round(count / peak * width))
        lines.append(f"{fmt.format(lo)} - {fmt.format(hi)} |{bar} {count}")
    return "\n".join(lines)
