"""Runnable fault scenarios for ``repro-exp faults``.

Each scenario is the Figure 13 playback (mplayer at 25 fps over the
desktop mix, adopted by LFS++) with one fault family switched on and the
degradation guards armed: the analyser band/monotonicity guards, the
controller's last-good fallback, and — where the fault attacks the
supervisor — the starvation watchdog.  Scenarios accept ``key=value``
overrides like experiments do::

    repro-exp faults trace-loss intensity=0.6
    repro-exp faults ring-overrun mode=stall -o overrun.perfetto.json
    repro-exp faults saturation hardened=False   # watch it fail instead

Every run returns a :class:`FaultRun` carrying the telemetry hub (fault
spans on ``faults/<kind>`` tracks next to the controller's epochs — the
Perfetto cause-and-effect view), the armed harness, and a metrics dict
with the deadline-miss ratio and the guard counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from repro.faults.harness import FaultHarness
from repro.faults.injectors import (
    ClockCoarsening,
    RingPressure,
    SupervisorSaturation,
    TraceTamper,
    WorkloadFaults,
)
from repro.faults.plan import FaultPlan
from repro.sim.time import MS, SEC

#: late-frame threshold shared with fig13 (a 25 fps frame > 80 ms late)
MISS_THRESHOLD_MS = 80.0

#: default fault window: let the loop converge for 4 s, misbehave for 8 s
FAULT_START = 4 * SEC
FAULT_END = 12 * SEC


@dataclass
class FaultRun:
    """Everything one fault scenario produced."""

    #: scenario name
    scenario: str
    #: telemetry hub (fault spans + controller epochs), Perfetto-ready
    telemetry: object
    #: the armed injectors
    harness: FaultHarness
    #: headline numbers (miss ratio, guard counters, injection counts)
    metrics: dict = field(default_factory=dict)

    def report_text(self) -> str:
        """Human-readable digest for the CLI."""
        lines = [f"fault scenario: {self.scenario}"]
        for key, value in self.metrics.items():
            if isinstance(value, float):
                lines.append(f"  {key:24s} {value:.4f}")
            else:
                lines.append(f"  {key:24s} {value}")
        for summary in self.harness.summary():
            kind = summary.pop("kind")
            injected = summary.pop("injected")
            detail = ", ".join(f"{k}={v}" for k, v in summary.items())
            lines.append(f"  injected[{kind}]           {injected}" + (f" ({detail})" if detail else ""))
        return "\n".join(lines)


def _hardened_configs(hardened: bool):
    """Controller + analyser configs with the degradation guards on/off."""
    from repro.core.analyser import AnalyserConfig
    from repro.core.controller import TaskControllerConfig
    from repro.experiments.fig13 import VIDEO_SPECTRUM

    if hardened:
        # the decay floor is a *livable* bandwidth for 25 fps video, not a
        # starvation level: dropout means "fly blind on the last good
        # grant, shrinking toward the floor", not "give up on the task"
        controller = TaskControllerConfig(
            sampling_period=100 * MS, dropout_after=3, dropout_decay=0.9, dropout_floor=0.25
        )
        analyser = AnalyserConfig(
            spectrum=VIDEO_SPECTRUM,
            horizon_ns=2 * SEC,
            reject_backwards=True,
            period_band=(10 * MS, 200 * MS),
        )
    else:
        controller = TaskControllerConfig(sampling_period=100 * MS)
        analyser = AnalyserConfig(
            spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC, reject_backwards=False
        )
    return controller, analyser


def _playback(
    scenario: str,
    arm,
    *,
    intensity: float,
    n_frames: int,
    seed: int,
    hardened: bool,
    u_min: float = 0.0,
    watchdog: bool = False,
    wrap_program=None,
    ring_capacity: int | None = None,
) -> FaultRun:
    """Run one faulted Figure 13 playback; ``arm(rt, harness)`` installs."""
    from repro.core import LfsPlusPlus, SelfTuningRuntime
    from repro.metrics import InterFrameProbe
    from repro.obs.instrument import instrument_runtime
    from repro.tracer.qtrace import QTraceConfig
    from repro.workloads import VideoPlayer
    from repro.workloads.desktop import desktop_load, desktop_suite
    from repro.workloads.mplayer import VideoPlayerConfig

    tracer_config = (
        QTraceConfig(buffer_capacity=ring_capacity) if ring_capacity is not None else None
    )
    rt = SelfTuningRuntime(tracer_config=tracer_config)
    telemetry = instrument_runtime(rt)
    harness = FaultHarness()

    player = VideoPlayer(VideoPlayerConfig(seed=seed))
    program = player.program(n_frames)
    if wrap_program is not None:
        program = wrap_program(harness, program)
    proc = rt.spawn("mplayer", program)
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(rt.kernel)
    for i, cfg in enumerate(desktop_suite(seed + 40)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))

    controller_config, analyser_config = _hardened_configs(hardened)
    task = rt.adopt(
        proc,
        feedback=LfsPlusPlus(),
        controller_config=controller_config,
        analyser_config=analyser_config,
        # the u_min guarantee is one of the guards under test: the
        # unhardened ablation runs without it
        u_min=u_min if hardened else 0.0,
    )
    arm(rt, harness)
    # mark the kernel as fault-injected — even at zero intensity — so the
    # schedule-cycle fast-forward of :mod:`repro.sim.cycles` refuses to
    # extrapolate a run whose timeline a fault plan may perturb
    rt.kernel.fault_plan = harness
    harness.attach_telemetry(telemetry)
    if watchdog and hardened:
        rt.supervisor.start_watchdog(rt.kernel, 500 * MS)

    rt.run((n_frames * 40 + 2000) * MS)
    harness.close(rt.kernel.clock)
    telemetry.close_open_spans()

    ift_ms = np.array(probe.inter_frame_times, dtype=np.float64) / MS
    late = int(np.count_nonzero(ift_ms > MISS_THRESHOLD_MS)) if ift_ms.size else 0
    true_period = player.config.period
    est_errors = [
        abs(p - true_period) / true_period
        for t, p in task.controller.period_history
        if p is not None and t >= FAULT_START
    ]
    analyser = task.analyser
    metrics = {
        "intensity": intensity,
        "hardened": hardened,
        "frames_played": player.frames_played,
        "miss_ratio": late / ift_ms.size if ift_ms.size else 1.0,
        "late_frames": late,
        "ift_mean_ms": float(ift_ms.mean()) if ift_ms.size else float("nan"),
        "controller_fallbacks": task.controller.fallbacks,
        "tracer_overruns": rt.tracer.overruns(),
        "watchdog_repairs": rt.supervisor.watchdog_repairs,
        "period_error": float(np.mean(est_errors)) if est_errors else float("nan"),
    }
    if analyser is not None:
        metrics["analyser_anomalies"] = dict(analyser.anomalies)
        metrics["analyser_overruns"] = analyser.overruns
    return FaultRun(scenario=scenario, telemetry=telemetry, harness=harness, metrics=metrics)


# ----------------------------------------------------------------------
# the scenario catalogue
# ----------------------------------------------------------------------
def fault_trace_loss(
    *, intensity: float = 0.6, n_frames: int = 300, seed: int = 13, hardened: bool = True
) -> FaultRun:
    """Trace-event loss: the download path drops events at random."""

    def arm(rt, harness: FaultHarness) -> None:
        """Attach the drop-only tamper stage to the runtime's tracer."""
        harness.add(
            TraceTamper(drop=FaultPlan.burst(FAULT_START, FAULT_END, intensity), seed=seed)
        ).arm(rt.tracer)

    return _playback(
        "trace-loss", arm, intensity=intensity, n_frames=n_frames, seed=seed, hardened=hardened
    )


def fault_trace_jitter(
    *, intensity: float = 0.6, n_frames: int = 300, seed: int = 13, hardened: bool = True
) -> FaultRun:
    """Timestamp jitter + duplication: a corrupted clocksource."""

    def arm(rt, harness: FaultHarness) -> None:
        """Attach the jitter + duplication tamper stage to the tracer."""
        harness.add(
            TraceTamper(
                jitter=FaultPlan.burst(FAULT_START, FAULT_END, intensity),
                duplicate=FaultPlan.burst(FAULT_START, FAULT_END, intensity / 2),
                seed=seed,
            )
        ).arm(rt.tracer)

    return _playback(
        "trace-jitter", arm, intensity=intensity, n_frames=n_frames, seed=seed, hardened=hardened
    )


def fault_ring_overrun(
    *,
    intensity: float = 0.9,
    n_frames: int = 300,
    seed: int = 13,
    hardened: bool = True,
    mode: str = "stall",
    ring_capacity: int = 1024,
) -> FaultRun:
    """Ring-overrun pressure: stall the download or shrink the buffer.

    Runs with a §4.1-representative kernel ring (``ring_capacity``
    events, not the simulator's generous default) so that an 8 s stall
    actually wraps the buffer and the loss becomes visible through
    :meth:`repro.tracer.qtrace.QTracer.overruns`.
    """

    def arm(rt, harness: FaultHarness) -> None:
        """Put the ring buffer under overrun pressure."""
        harness.add(
            RingPressure(
                FaultPlan.burst(FAULT_START, FAULT_END, intensity), mode=mode, seed=seed
            )
        ).arm(rt.tracer, rt.kernel)

    return _playback(
        "ring-overrun",
        arm,
        intensity=intensity,
        n_frames=n_frames,
        seed=seed,
        hardened=hardened,
        ring_capacity=ring_capacity,
    )


def fault_clock_coarse(
    *, intensity: float = 0.8, n_frames: int = 300, seed: int = 13, hardened: bool = True
) -> FaultRun:
    """Clock coarsening: timestamps quantised to a jiffy-class grid."""

    def arm(rt, harness: FaultHarness) -> None:
        """Attach the timestamp-quantisation stage to the tracer."""
        harness.add(
            ClockCoarsening(FaultPlan.burst(FAULT_START, FAULT_END, intensity), seed=seed)
        ).arm(rt.tracer)

    return _playback(
        "clock-coarse", arm, intensity=intensity, n_frames=n_frames, seed=seed, hardened=hardened
    )


def fault_overload(
    *, intensity: float = 0.5, n_frames: int = 300, seed: int = 13, hardened: bool = True
) -> FaultRun:
    """Workload overload burst: decode costs inflate mid-playback."""

    def wrap(harness: FaultHarness, program):
        """Wrap the player's program with compute-cost inflation."""
        injector = harness.add(
            WorkloadFaults(
                overload=FaultPlan.burst(FAULT_START, FAULT_END, intensity),
                compute_factor=1.5,
                seed=seed,
            )
        )
        return injector.wrap(program)

    return _playback(
        "overload",
        lambda rt, harness: None,
        intensity=intensity,
        n_frames=n_frames,
        seed=seed,
        hardened=hardened,
        wrap_program=wrap,
    )


def fault_mode_switch(
    *, intensity: float = 0.8, n_frames: int = 300, seed: int = 13, hardened: bool = True
) -> FaultRun:
    """Workload mode switch: the activation period stretches mid-run."""

    def wrap(harness: FaultHarness, program):
        """Wrap the player's program with period stretching."""
        injector = harness.add(
            WorkloadFaults(
                mode_switch=FaultPlan.burst(FAULT_START, FAULT_END, intensity),
                period_factor=0.5,
                seed=seed,
            )
        )
        return injector.wrap(program)

    return _playback(
        "mode-switch",
        lambda rt, harness: None,
        intensity=intensity,
        n_frames=n_frames,
        seed=seed,
        hardened=hardened,
        wrap_program=wrap,
    )


def fault_saturation(
    *, intensity: float = 1.0, n_frames: int = 300, seed: int = 13, hardened: bool = True
) -> FaultRun:
    """Supervisor saturation: bandwidth hogs force Eq. 1 compression."""

    def arm(rt, harness: FaultHarness) -> None:
        """Register phantom bandwidth hogs with the supervisor."""
        harness.add(
            SupervisorSaturation(
                FaultPlan.burst(FAULT_START, FAULT_END, intensity), bandwidth=1.0, seed=seed
            )
        ).arm(rt.supervisor, rt.kernel)

    return _playback(
        "saturation",
        arm,
        intensity=intensity,
        n_frames=n_frames,
        seed=seed,
        hardened=hardened,
        u_min=0.15,
        watchdog=True,
    )


#: name -> scenario callable (kwargs are CLI overrides)
FAULT_SCENARIOS: dict[str, Callable[..., FaultRun]] = {
    "trace-loss": fault_trace_loss,
    "trace-jitter": fault_trace_jitter,
    "ring-overrun": fault_ring_overrun,
    "clock-coarse": fault_clock_coarse,
    "overload": fault_overload,
    "mode-switch": fault_mode_switch,
    "saturation": fault_saturation,
}


def run_fault_scenario(name: str, overrides: dict | None = None) -> FaultRun:
    """Build and run fault scenario ``name`` with ``overrides``."""
    try:
        fn = FAULT_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault scenario {name!r}; known: {sorted(FAULT_SCENARIOS)}"
        ) from None
    return fn(**(overrides or {}))
