"""Injector base class and the bookkeeping shared by every fault.

A fault injector is a small object holding one or more
:class:`~repro.faults.plan.FaultPlan` schedules, a private seeded RNG
(independent of every workload RNG, so arming an injector never perturbs
a workload's random stream), and counters of what it actually injected.
Subclasses implement ``arm(...)`` against their target (tracer, kernel,
supervisor, workload program) and call :meth:`FaultInjector._note` /
:meth:`FaultInjector._span` for every injected fault, which both feeds
the counters the CLI report prints and — when a :mod:`repro.obs` hub is
attached — emits a span/instant on a ``faults/<kind>`` track so Perfetto
traces show cause (the injected fault) and effect (the controller's
reaction) side by side.

Two contracts, mirroring :mod:`repro.obs`:

- **zero-intensity transparency** — ``arm()`` with a zero plan installs
  nothing (see :mod:`repro.faults.plan`);
- **observer-grade telemetry** — the ``_obs`` hook sites follow the
  class-level ``None`` fast-path convention of the rest of the stack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.spans import OpenSpan


class FaultInjector:
    """Common state of every injector: plan(s), RNG, counters, telemetry."""

    #: short identifier used for telemetry tracks and CLI reports
    kind = "fault"

    #: telemetry hub (:mod:`repro.obs`); None = disabled fast path, same
    #: convention as the instrumented simulator classes
    _obs = None

    def __init__(self, *, seed: int = 0) -> None:
        """Initialise counters and the injector-private RNG."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        #: total faults injected (all kinds)
        self.injected = 0
        #: per-event-kind injection counters (e.g. ``{"drop": 17}``)
        self.counts: dict[str, int] = {}
        self._armed = False
        self._obs_window_span: OpenSpan | None = None

    # ------------------------------------------------------------------
    # bookkeeping helpers for subclasses
    # ------------------------------------------------------------------
    def _note(self, event: str, now: int, **args) -> None:
        """Count one injected fault; emit a telemetry instant if attached."""
        self.injected += 1
        self.counts[event] = self.counts.get(event, 0) + 1
        obs = self._obs
        if obs is not None:
            obs.fault_injected(self.kind, event, now, total=self.injected, **args)

    def _window_begin(self, event: str, now: int, **args) -> None:
        """Open the telemetry span covering one active fault window."""
        self.injected += 1
        self.counts[event] = self.counts.get(event, 0) + 1
        obs = self._obs
        if obs is not None and self._obs_window_span is None:
            self._obs_window_span = obs.fault_window_begin(self.kind, event, now, **args)

    def _window_end(self, now: int) -> None:
        """Close the currently open fault-window span (no-op when none)."""
        obs = self._obs
        span = self._obs_window_span
        self._obs_window_span = None
        if obs is not None and span is not None:
            obs.end(span, now)

    def close(self, now: int) -> None:
        """End-of-run hook: close a window span the run ended inside of.

        A fault window may outlive the simulation (the default scenarios
        stop mid-window for short runs); without this the open span would
        never reach the exported trace.  Safe to call repeatedly.
        """
        self._window_end(now)

    def summary(self) -> dict:
        """Counters in report form: ``{"kind": ..., "injected": ..., ...}``."""
        return {"kind": self.kind, "injected": self.injected, **self.counts}
