"""Compose several injectors into one fault campaign.

A :class:`FaultHarness` is a thin container: scenarios build their
injectors individually (each ``arm()`` takes different targets), then
register them here so telemetry attachment and reporting have a single
handle.  The harness inherits both package contracts — attaching a
telemetry hub is read-only, and a harness whose every injector holds a
zero plan changes nothing about the run (the zero-identity test arms a
full harness at intensity 0 and asserts bit-identical digests).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.faults.base import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.telemetry import Telemetry


class FaultHarness:
    """A named bag of injectors plus campaign-level bookkeeping."""

    def __init__(self, injectors: Iterable[FaultInjector] = ()) -> None:
        """Collect ``injectors`` (more can be added with :meth:`add`)."""
        self.injectors: list[FaultInjector] = list(injectors)

    def add(self, injector: FaultInjector) -> FaultInjector:
        """Register one more injector; returns it for chaining with ``arm``."""
        self.injectors.append(injector)
        return injector

    def attach_telemetry(self, hub: Telemetry) -> None:
        """Point every injector's ``_obs`` hook at ``hub`` (read-only)."""
        for injector in self.injectors:
            injector._obs = hub

    def close(self, now: int) -> None:
        """Close any fault-window spans still open at end of run."""
        for injector in self.injectors:
            injector.close(now)

    @property
    def injected(self) -> int:
        """Total faults injected across the whole campaign."""
        return sum(inj.injected for inj in self.injectors)

    @property
    def armed(self) -> bool:
        """True when at least one injector actually installed itself."""
        return any(inj._armed for inj in self.injectors)

    def summary(self) -> list[dict]:
        """Per-injector counter dicts, in registration order."""
        return [inj.summary() for inj in self.injectors]
