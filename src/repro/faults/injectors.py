"""The injector catalogue: five ways the §4 observation loop goes wrong.

Each injector stresses one assumption the paper's architecture (Fig. 3)
quietly relies on:

- :class:`TraceTamper` — §4.2 assumes the analyser sees the application's
  syscall bursts faithfully; this drops, duplicates and time-jitters
  events in the download path (a lossy chardev, a coarse or non-monotonic
  timestamp source).
- :class:`RingPressure` — §4.1's circular buffer overwrites oldest events
  by design; this shrinks the buffer or stalls the download agent so the
  overwrite path actually fires.
- :class:`WorkloadFaults` — §4.4's predictor assumes the per-period
  computation time is stationary; this injects overload bursts (inflated
  decode costs) and mode switches (stretched activation periods).
- :class:`ClockCoarsening` — §4.2's Dirac-train model assumes timestamps
  resolve the burst structure; this quantises them to a coarse grid (a
  jiffy-resolution clocksource).
- :class:`SupervisorSaturation` — Eq. 1's compression assumes competing
  requests are honest; this registers greedy bandwidth hogs against the
  supervisor so every other task gets compressed.

All injectors are deterministic (seeded, independent RNGs) and honour
zero-intensity transparency: ``arm()`` with a zero plan installs nothing
(see :mod:`repro.faults.plan`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.base import FaultInjector
from repro.faults.plan import FaultPlan, combined_is_zero
from repro.sim.instructions import Compute, SleepFor, SleepUntil, Syscall
from repro.sim.process import Program
from repro.sim.time import MS
from repro.tracer.events import RingBuffer, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.supervisor import Supervisor
    from repro.sim.kernel import Kernel
    from repro.tracer.qtrace import QTracer


class TraceTamper(FaultInjector):
    """Drop, duplicate and time-jitter trace events in the download path.

    Wraps :attr:`repro.tracer.qtrace.QTracer.tamper`, so both direct
    ``drain()`` calls and the download agent see the tampered batches;
    the kernel-side ring buffer itself is untouched (the faults model
    corruption *between* the kernel log and the analyser).

    Intensity maps per sub-plan: drop probability per event, duplication
    probability per event, and jitter standard deviation
    ``intensity * jitter_ns`` added to each timestamp (which can reorder
    events — exactly the anomaly the analyser guards must reject).
    """

    kind = "trace"

    def __init__(
        self,
        *,
        drop: FaultPlan | None = None,
        duplicate: FaultPlan | None = None,
        jitter: FaultPlan | None = None,
        jitter_ns: int = 2 * MS,
        seed: int = 0,
    ) -> None:
        """Store the per-fault sub-plans (each may be None = never)."""
        super().__init__(seed=seed)
        self.drop = drop or FaultPlan.zero()
        self.duplicate = duplicate or FaultPlan.zero()
        self.jitter = jitter or FaultPlan.zero()
        self.jitter_ns = jitter_ns

    def arm(self, tracer: QTracer) -> TraceTamper:
        """Install the tamper hook on ``tracer`` (no-op when all plans zero)."""
        if combined_is_zero([self.drop, self.duplicate, self.jitter]):
            return self
        prev = tracer.tamper
        if prev is None:
            tracer.tamper = self._apply
        else:
            # compose with an already-installed tamper stage
            def chained(batch: list[TraceEvent], now: int) -> list[TraceEvent]:
                """Run this stage after the previously installed one."""
                return self._apply(prev(batch, now), now)

            tracer.tamper = chained
        self._armed = True
        return self

    def _apply(self, batch: list[TraceEvent], now: int) -> list[TraceEvent]:
        """Tamper one downloaded batch (identity outside fault windows)."""
        p_drop = self.drop.intensity_at(now)
        p_dup = self.duplicate.intensity_at(now)
        i_jit = self.jitter.intensity_at(now)
        # repro: allow[DT004]  -- exact-zero is the transparency gate: 0.0 is representable
        if not batch or (p_drop == 0.0 and p_dup == 0.0 and i_jit == 0.0):
            return batch
        rng = self._rng
        sigma = i_jit * self.jitter_ns
        out: list[TraceEvent] = []
        for ev in batch:
            if p_drop > 0.0 and rng.random() < p_drop:
                self._note("drop", now, pid=ev.pid)
                continue
            if sigma > 0.0:
                t = max(0, ev.time + int(rng.normal(0.0, sigma)))
                if t != ev.time:
                    ev = TraceEvent(t, ev.pid, ev.nr, ev.kind)
                    self._note("jitter", now, pid=ev.pid)
            out.append(ev)
            if p_dup > 0.0 and rng.random() < p_dup:
                out.append(ev)
                self._note("duplicate", now, pid=ev.pid)
        return out


class RingPressure(FaultInjector):
    """Force §4.1 ring-buffer overruns: shrink the buffer or stall drains.

    ``mode="shrink"`` swaps the tracer's ring for one of capacity
    ``max(min_capacity, capacity · (1 − intensity))`` while a window is
    active (stored events carry over; history counters are preserved).
    ``mode="stall"`` sets :attr:`repro.tracer.qtrace.QTracer.stalled`, so
    neither ``drain()`` nor the download agent empties the buffer and the
    kernel keeps overwriting oldest events.  Either way the loss becomes
    *visible* through the tracer's overrun accounting
    (:attr:`repro.tracer.qtrace.QTracer.overrun_total`).

    State flips happen on calendar callbacks at the plan's edges — one
    event per edge, no polling.
    """

    kind = "ring"

    def __init__(
        self, plan: FaultPlan, *, mode: str = "shrink", min_capacity: int = 8, seed: int = 0
    ) -> None:
        """Configure the pressure mode and the shrink floor."""
        if mode not in ("shrink", "stall"):
            raise ValueError(f"mode must be 'shrink' or 'stall', got {mode!r}")
        if min_capacity < 1:
            raise ValueError(f"min_capacity must be >= 1, got {min_capacity}")
        super().__init__(seed=seed)
        self.plan = plan
        self.mode = mode
        self.min_capacity = min_capacity
        self._tracer: QTracer | None = None
        self._base_capacity = 0

    def arm(self, tracer: QTracer, kernel: Kernel) -> RingPressure:
        """Schedule the window-edge callbacks (no-op for a zero plan)."""
        if self.plan.is_zero:
            return self
        self._tracer = tracer
        self._base_capacity = tracer.buffer.capacity
        for edge in self.plan.edges():
            if edge >= kernel.clock:
                kernel.at(edge, self._on_edge)
        self._on_edge(kernel.clock)  # apply a window already in progress
        self._armed = True
        return self

    def _on_edge(self, now: int) -> None:
        """Apply the intensity in effect at ``now`` to the tracer."""
        tracer = self._tracer
        assert tracer is not None
        intensity = self.plan.intensity_at(now)
        if self.mode == "stall":
            stalled = intensity > 0.0
            if stalled and not tracer.stalled:
                tracer.stalled = True
                self._window_begin("stall", now, intensity=intensity)
            elif not stalled and tracer.stalled:
                tracer.stalled = False
                self._window_end(now)
            return
        capacity = (
            max(self.min_capacity, round(self._base_capacity * (1.0 - intensity)))
            if intensity > 0.0
            else self._base_capacity
        )
        if capacity != tracer.buffer.capacity:
            if capacity < self._base_capacity:
                self._window_begin("shrink", now, capacity=capacity, intensity=intensity)
            else:
                self._window_end(now)
            self._resize(tracer, capacity)

    @staticmethod
    def _resize(tracer: QTracer, capacity: int) -> None:
        """Swap the ring for one of ``capacity``, preserving history counters."""
        old = tracer.buffer
        new = RingBuffer(capacity)
        for ev in old.peek():
            new.push(ev)
        # carry the lifetime accounting across the swap: `total` counts
        # pushes since boot, `dropped` counts overwrites (including the
        # ones the re-push above just performed on a shrink)
        new.total = old.total
        new.dropped += old.dropped
        tracer.buffer = new


class WorkloadFaults(FaultInjector):
    """Overload bursts and mode switches, injected by wrapping a program.

    :meth:`wrap` interposes on the instruction stream of a workload
    generator.  While a window of ``overload`` is active, every
    ``Compute`` duration is inflated by ``1 + intensity · compute_factor``
    (the I-frame-burst shape §4.4's remark 1 worries about).  While a
    window of ``mode_switch`` is active, blocking sleeps are stretched by
    ``1 + intensity · period_factor``, which *slows the application's
    activation rate* — the rate change §1 motivates the whole paper with.

    The wrapper is transparent when idle: outside every window the
    original instruction objects pass through untouched.
    """

    kind = "workload"

    def __init__(
        self,
        *,
        overload: FaultPlan | None = None,
        mode_switch: FaultPlan | None = None,
        compute_factor: float = 1.0,
        period_factor: float = 0.5,
        seed: int = 0,
    ) -> None:
        """Store the overload / mode-switch sub-plans and their scales."""
        if compute_factor < 0 or period_factor < 0:
            raise ValueError("compute_factor and period_factor must be >= 0")
        super().__init__(seed=seed)
        self.overload = overload or FaultPlan.zero()
        self.mode_switch = mode_switch or FaultPlan.zero()
        self.compute_factor = compute_factor
        self.period_factor = period_factor

    def wrap(self, program: Program) -> Program:
        """Return ``program`` with the fault windows applied (or unchanged)."""
        if combined_is_zero([self.overload, self.mode_switch]):
            return program
        self._armed = True
        return self._wrapped(program)

    def _wrapped(self, program: Program) -> Program:
        """Generator adapter translating instructions inside fault windows."""
        reply = None
        started = False
        while True:
            try:
                instr = program.send(reply) if started else next(program)
                started = True
            except StopIteration:
                return
            now = reply if isinstance(reply, int) else 0
            cls = instr.__class__
            if cls is Compute:
                i = self.overload.intensity_at(now)
                if i > 0.0 and self.compute_factor > 0.0:
                    inflated = int(instr.duration * (1.0 + i * self.compute_factor))
                    if inflated != instr.duration:
                        self._note("overload", now, extra_ns=inflated - instr.duration)
                        instr = Compute(inflated)
            elif cls is Syscall and instr.block is not None:
                i = self.mode_switch.intensity_at(now)
                if i > 0.0 and self.period_factor > 0.0:
                    stretched = self._stretch(instr, now, 1.0 + i * self.period_factor)
                    if stretched is not None:
                        self._note("mode-switch", now)
                        instr = stretched
            reply = yield instr

    @staticmethod
    def _stretch(instr: Syscall, now: int, factor: float) -> Syscall | None:
        """Stretch a blocking sleep by ``factor`` (None = not stretchable)."""
        block = instr.block
        if isinstance(block, SleepUntil):
            if block.wake_at <= now:
                return None
            wake = now + int((block.wake_at - now) * factor)
            new_block: SleepUntil | SleepFor = SleepUntil(wake)
        elif isinstance(block, SleepFor):
            new_block = SleepFor(int(block.duration * factor))
        else:
            return None  # WaitEvent: nothing to stretch
        return Syscall(
            instr.nr, cost=instr.cost, block=new_block, return_cost=instr.return_cost
        )


class ClockCoarsening(FaultInjector):
    """Quantise trace timestamps to a coarse grid (jiffy-class clocksource).

    While a window is active every downloaded event's timestamp is
    floored to a multiple of ``intensity · granularity_ns`` (so higher
    intensity = coarser clock).  Composes with :class:`TraceTamper`
    through the same :attr:`repro.tracer.qtrace.QTracer.tamper` chain.

    Coarsening collapses distinct timestamps onto the same grid point —
    the duplicate-timestamp anomaly the analyser guard must tolerate —
    and widens every spectrum line by the grid spacing.
    """

    kind = "clock"

    def __init__(self, plan: FaultPlan, *, granularity_ns: int = 4 * MS, seed: int = 0) -> None:
        """Configure the full-intensity quantisation step."""
        if granularity_ns <= 0:
            raise ValueError(f"granularity_ns must be positive, got {granularity_ns}")
        super().__init__(seed=seed)
        self.plan = plan
        self.granularity_ns = granularity_ns

    def arm(self, tracer: QTracer) -> ClockCoarsening:
        """Install the quantisation stage on ``tracer`` (no-op when zero)."""
        if self.plan.is_zero:
            return self
        prev = tracer.tamper
        if prev is None:
            tracer.tamper = self._apply
        else:

            def chained(batch: list[TraceEvent], now: int) -> list[TraceEvent]:
                """Run this stage after the previously installed one."""
                return self._apply(prev(batch, now), now)

            tracer.tamper = chained
        self._armed = True
        return self

    def _apply(self, batch: list[TraceEvent], now: int) -> list[TraceEvent]:
        """Quantise one batch (identity outside fault windows)."""
        intensity = self.plan.intensity_at(now)
        # repro: allow[DT004]  -- exact-zero is the transparency gate: 0.0 is representable
        if not batch or intensity == 0.0:
            return batch
        grain = max(1, int(intensity * self.granularity_ns))
        out: list[TraceEvent] = []
        changed = 0
        for ev in batch:
            t = (ev.time // grain) * grain
            if t != ev.time:
                ev = TraceEvent(t, ev.pid, ev.nr, ev.kind)
                changed += 1
            out.append(ev)
        if changed:
            self._note("coarsen", now, events=changed, grain_ns=grain)
        return out


class SupervisorSaturation(FaultInjector):
    """Register greedy bandwidth hogs so Eq. 1 compression squeezes everyone.

    While a window is active, ``n_hogs`` phantom tasks are registered
    against the supervisor and submit requests totalling
    ``intensity · bandwidth`` of the CPU at a high weight.  Real tasks
    get proportionally compressed — and because a task controller sizes
    its next request from what it *consumed* under compression, the
    squeeze is self-reinforcing (the starvation spiral the controller's
    last-good fallback and the supervisor watchdog exist to break).

    Window exits unregister the hogs.  Note the deliberately ugly detail:
    unregistering frees the bandwidth but does **not** push new grants to
    idle tasks — exactly the stale-compression state
    :meth:`repro.core.supervisor.Supervisor.watchdog` repairs.
    """

    kind = "supervisor"

    def __init__(
        self,
        plan: FaultPlan,
        *,
        bandwidth: float = 0.8,
        n_hogs: int = 2,
        hog_period: int = 20 * MS,
        weight: float = 8.0,
        seed: int = 0,
    ) -> None:
        """Configure the hog pool (total bandwidth, count, period, weight)."""
        if not 0.0 < bandwidth <= 1.0:
            raise ValueError(f"bandwidth must be in (0, 1], got {bandwidth}")
        if n_hogs < 1:
            raise ValueError(f"n_hogs must be >= 1, got {n_hogs}")
        super().__init__(seed=seed)
        self.plan = plan
        self.bandwidth = bandwidth
        self.n_hogs = n_hogs
        self.hog_period = hog_period
        self.weight = weight
        self._supervisor: Supervisor | None = None
        self._keys: list[int] = []

    def arm(self, supervisor: Supervisor, kernel: Kernel) -> SupervisorSaturation:
        """Schedule hog registration at the plan's edges (no-op when zero)."""
        if self.plan.is_zero:
            return self
        self._supervisor = supervisor
        for edge in self.plan.edges():
            if edge >= kernel.clock:
                kernel.at(edge, self._on_edge)
        self._on_edge(kernel.clock)
        self._armed = True
        return self

    def _on_edge(self, now: int) -> None:
        """Register, rescale or unregister the hogs per the current intensity."""
        from repro.core.lfspp import BandwidthRequest

        supervisor = self._supervisor
        assert supervisor is not None
        intensity = self.plan.intensity_at(now)
        if intensity > 0.0:
            if not self._keys:
                for _ in range(self.n_hogs):
                    self._keys.append(supervisor.register(u_min=0.0, weight=self.weight))
                self._window_begin(
                    "saturate", now, hogs=self.n_hogs, bandwidth=self.bandwidth * intensity
                )
            share = self.bandwidth * intensity / self.n_hogs
            budget = max(1, int(share * self.hog_period))
            for key in self._keys:
                supervisor.submit(key, BandwidthRequest(budget=budget, period=self.hog_period))
        elif self._keys:
            for key in self._keys:
                supervisor.unregister(key)
            self._keys.clear()
            self._window_end(now)
