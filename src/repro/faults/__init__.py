"""``repro.faults`` — deterministic fault injection for the tuning loop.

The paper's architecture is sold on graceful degradation: §4.1's trace
buffer loses events by design, §4.2's spectrum estimate is explicitly a
heuristic, and §3's supervisor must keep the system schedulable whatever
the task controllers ask for.  This package stresses those promises.  It
provides:

- :mod:`~repro.faults.plan` — :class:`FaultPlan`, piecewise-constant
  fault-intensity schedules over virtual time;
- :mod:`~repro.faults.injectors` — the catalogue: trace tampering, ring
  pressure, workload overload/mode switches, clock coarsening,
  supervisor saturation;
- :mod:`~repro.faults.harness` — :class:`FaultHarness`, composing
  injectors into one campaign with shared telemetry;
- :mod:`~repro.faults.scenarios` — ready-made faulted playbacks behind
  ``repro-exp faults <scenario>``.

Everything is seeded and deterministic, and a zero-intensity plan is
bit-identical to no injection (see ``docs/fault-injection.md``).
"""

from repro.faults.base import FaultInjector
from repro.faults.harness import FaultHarness
from repro.faults.injectors import (
    ClockCoarsening,
    RingPressure,
    SupervisorSaturation,
    TraceTamper,
    WorkloadFaults,
)
from repro.faults.plan import (
    NAMED_PLANS,
    FaultPlan,
    FaultWindow,
    combined_is_zero,
    plan_from_name,
)

__all__ = [
    "ClockCoarsening",
    "FaultHarness",
    "FaultInjector",
    "FaultPlan",
    "FaultWindow",
    "NAMED_PLANS",
    "RingPressure",
    "SupervisorSaturation",
    "TraceTamper",
    "WorkloadFaults",
    "combined_is_zero",
    "plan_from_name",
]
