"""Virtual-time fault schedules (:class:`FaultPlan`).

The paper's self-tuning loop is built to survive imperfect observation:
§4.1's trace buffer *overwrites oldest events by design*, and §3's
supervisor must keep legacy tasks schedulable when the §4.2/§4.3 spectrum
estimate is noisy.  A :class:`FaultPlan` is the schedule half of that
stress story: a piecewise-constant intensity signal over virtual time
that every injector in :mod:`repro.faults.injectors` consults to decide
*when* and *how hard* to misbehave.

Intensity is a dimensionless knob in ``[0, 1]``; each injector documents
how it maps intensity onto its own physical fault (drop probability,
buffer-shrink fraction, compute inflation, ...).

The load-bearing contract is **zero-intensity transparency**: a plan
whose every window has intensity ``0.0`` (:attr:`FaultPlan.is_zero`)
must be indistinguishable from no plan at all — injectors armed with it
install no hooks, post no calendar events, and draw no random numbers,
so the run is *bit-identical* to an uninjected one
(``tests/faults/test_zero_identity.py`` asserts this against the same
digest machinery as :mod:`repro.bench.golden`).

>>> from repro.faults import FaultPlan
>>> plan = FaultPlan.steps([(0, None, 0.2), (4, 8, 0.9)])
>>> [plan.intensity_at(t) for t in (0, 4, 7, 8)]  # last window wins
[0.2, 0.9, 0.9, 0.2]
>>> plan.edges()
[0, 4, 8]
>>> plan.scaled(0.0).is_zero  # scaled to nothing == never armed
True
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence


@dataclass(frozen=True)
class FaultWindow:
    """One constant-intensity interval ``[start, end)`` of virtual time.

    ``end is None`` means the window stays open until the end of the run.
    """

    #: window start, ns (inclusive)
    start: int
    #: window end, ns (exclusive); None = open-ended
    end: int | None
    #: fault intensity in [0, 1] while the window is active
    intensity: float

    def __post_init__(self) -> None:
        """Validate the window bounds and the intensity range."""
        if self.start < 0:
            raise ValueError(f"window start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(f"window end must exceed start, got [{self.start}, {self.end})")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError(f"intensity must be in [0, 1], got {self.intensity}")

    def active_at(self, t: int) -> bool:
        """Whether the window covers virtual time ``t``."""
        return t >= self.start and (self.end is None or t < self.end)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault intensity over virtual time.

    Windows are evaluated in order and the *last* matching window wins,
    so later entries refine earlier ones (e.g. a constant background
    intensity overridden by a stronger burst).  Outside every window the
    intensity is ``0.0``.
    """

    #: the schedule; empty = never inject
    windows: tuple[FaultWindow, ...] = ()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> FaultPlan:
        """The do-nothing plan (no windows; identical to no injection)."""
        return FaultPlan()

    @staticmethod
    def constant(intensity: float, *, start: int = 0) -> FaultPlan:
        """Intensity ``intensity`` from ``start`` until the end of the run."""
        # repro: allow[DT004]  -- exact-zero is the transparency gate: 0.0 is representable
        if intensity == 0.0:
            return FaultPlan()
        return FaultPlan((FaultWindow(start, None, intensity),))

    @staticmethod
    def burst(start: int, end: int, intensity: float) -> FaultPlan:
        """One finite window of the given intensity."""
        # repro: allow[DT004]  -- exact-zero is the transparency gate: 0.0 is representable
        if intensity == 0.0:
            return FaultPlan()
        return FaultPlan((FaultWindow(start, end, intensity),))

    @staticmethod
    def steps(steps: Iterable[tuple[int, int | None, float]]) -> FaultPlan:
        """Build a plan from ``(start, end, intensity)`` triples."""
        return FaultPlan(tuple(FaultWindow(s, e, i) for s, e, i in steps))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def intensity_at(self, t: int) -> float:
        """Intensity in effect at virtual time ``t`` (last window wins)."""
        value = 0.0
        for w in self.windows:
            if w.active_at(t):
                value = w.intensity
        return value

    @property
    def is_zero(self) -> bool:
        """True when no window can ever produce a non-zero intensity.

        This is the zero-intensity transparency gate: injectors armed
        with a zero plan must not install hooks or post calendar events.
        """
        # repro: allow[DT004]  -- exact-zero is the transparency gate: 0.0 is representable
        return all(w.intensity == 0.0 for w in self.windows)

    def edges(self) -> list[int]:
        """Sorted distinct times at which the intensity may change.

        Injectors that maintain *state* (a shrunk buffer, registered
        bandwidth hogs) schedule one calendar callback per edge instead
        of polling.
        """
        times: set[int] = set()
        for w in self.windows:
            times.add(w.start)
            if w.end is not None:
                times.add(w.end)
        return sorted(times)

    def scaled(self, factor: float) -> FaultPlan:
        """A copy with every intensity multiplied by ``factor`` (clamped to 1).

        The ``robustness`` experiment sweeps a scenario by scaling one
        reference plan rather than rebuilding schedules per point.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return FaultPlan(
            tuple(
                FaultWindow(w.start, w.end, min(1.0, w.intensity * factor))
                for w in self.windows
            )
        )


def combined_is_zero(plans: Sequence[FaultPlan | None]) -> bool:
    """True when every plan in ``plans`` is absent or zero."""
    return all(p is None or p.is_zero for p in plans)


_SEC = 1_000_000_000

#: the named plan catalogue: reference schedules addressable from the
#: fleet scenario DSL (``[fault] plan = "mid-burst"``) and anywhere else a
#: plan must travel as a string (CLI flags, JSON configs)
NAMED_PLANS: dict[str, FaultPlan] = {
    # never injects — composes with the zero-intensity transparency gate
    "zero": FaultPlan.zero(),
    # constant background stress from t=0
    "steady-low": FaultPlan.constant(0.2),
    "steady-high": FaultPlan.constant(0.6),
    # one hard burst in the second simulated second
    "mid-burst": FaultPlan.burst(1 * _SEC, 2 * _SEC, 0.8),
    # a load cliff: mild stress that jumps and stays high after 2 s
    "cliff": FaultPlan.steps([(0, 2 * _SEC, 0.1), (2 * _SEC, None, 0.9)]),
    # staircase ramp, one step per simulated second
    "ramp": FaultPlan.steps(
        [(i * _SEC, (i + 1) * _SEC, 0.1 + 0.2 * i) for i in range(4)]
        + [(4 * _SEC, None, 0.9)]
    ),
}


def plan_from_name(name: str, *, scale: float = 1.0) -> FaultPlan:
    """Resolve a :data:`NAMED_PLANS` entry, scaled by ``scale``.

    >>> plan_from_name("mid-burst").intensity_at(1_500_000_000)
    0.8
    >>> plan_from_name("steady-high", scale=0.0).is_zero
    True
    """
    try:
        plan = NAMED_PLANS[name]
    except KeyError:
        raise KeyError(f"unknown fault plan {name!r}; known: {sorted(NAMED_PLANS)}") from None
    return plan.scaled(scale)
