"""repro.tune — auto-tuning search over the controller parameter space.

The paper hand-picks the LFS++ knobs (spread ``x``, predictor window
``N``, quantile ``p``, sampling period ``S``) once, for one machine.
This package turns that manual step into a service: a seeded,
deterministic global search (:mod:`repro.tune.search`) over a declared
:class:`~repro.tune.space.ParamSpace`, scored by running each candidate
configuration through the fleet engine against a catalogue of workload
classes (:mod:`repro.tune.classes`), with every simulation result
deduplicated in the on-disk experiment cache
(:mod:`repro.tune.evaluate`).  :mod:`repro.tune.service` orchestrates a
whole tuning run from a TOML spec and :mod:`repro.tune.report` renders
the ``TUNE_*.json`` artefact — best configuration per workload class,
the convergence trace and a per-parameter sensitivity ranking.

Same seed + same space ⇒ byte-identical report, regardless of
``--jobs``.
"""

from repro.tune.classes import WORKLOAD_CLASSES, WorkloadClass
from repro.tune.evaluate import Evaluator, Objective
from repro.tune.report import rank_importance, tune_payload, write_tune_json
from repro.tune.search import SearchResult, run_search
from repro.tune.service import TuneReport, TuneSpec, run_tune, tune_spec_from_toml
from repro.tune.space import ParamSpace, ParamSpec, default_space

__all__ = [
    "WORKLOAD_CLASSES",
    "WorkloadClass",
    "Evaluator",
    "Objective",
    "rank_importance",
    "tune_payload",
    "write_tune_json",
    "SearchResult",
    "run_search",
    "TuneReport",
    "TuneSpec",
    "run_tune",
    "tune_spec_from_toml",
    "ParamSpace",
    "ParamSpec",
    "default_space",
]
