"""Seeded, deterministic search over the unit cube.

Two phases, as in classic auto-tuning practice:

1. a **global** phase explores the whole space — latin-hypercube or
   plain random sampling, or a dependency-free (μ/μ_w, λ) CMA-ES
   (numpy only, seeded) — and produces an incumbent;
2. a **local** phase runs per-parameter 1-D coordinate descent from the
   incumbent with a halving bracket, which both polishes the optimum
   and yields the per-parameter *sensitivity* ranking (the score range
   each axis induced while the others were pinned at the incumbent).

Every candidate goes through a caller-supplied ``evaluate_batch``
callback (one call per generation, so the evaluation backend can batch
all misses into a single fleet run).  All randomness flows from
``random.Random(seed)`` / ``numpy.random.default_rng(seed)``; no
wall-clock, no host state — same seed + same space ⇒ the same candidate
stream, bit for bit.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.tune.space import ParamSpace

#: accepted global-phase methods
SEARCH_METHODS = ("lhs", "random", "cmaes")

#: fraction of the evaluation budget spent on the global phase
GLOBAL_FRACTION = 0.6

#: points per axis in one coordinate-descent sweep
DESCENT_POINTS = 3

#: initial half-width of the descent bracket (unit-cube units)
DESCENT_RADIUS = 0.25

#: type of the batched evaluation callback: configs -> scores (lower wins)
EvaluateBatch = Callable[[list[dict[str, Any]]], list[float]]


@dataclass
class SearchResult:
    """Everything a tuning run reports for one workload class."""

    best_config: dict[str, Any]
    best_score: float
    #: total candidate evaluations issued (including memoised repeats)
    evaluations: int
    #: [{"index", "phase", "config", "score", "best_score"}] in order
    trace: list[dict[str, Any]] = field(default_factory=list)
    #: axis name -> score range observed while sweeping only that axis
    sensitivity: dict[str, float] = field(default_factory=dict)


def sample_lhs(dim: int, n: int, rng: random.Random) -> list[list[float]]:
    """Latin-hypercube sample: ``n`` points stratified per dimension."""
    columns = []
    for _ in range(dim):
        strata = list(range(n))
        rng.shuffle(strata)
        columns.append([(k + rng.random()) / n for k in strata])
    return [[columns[d][i] for d in range(dim)] for i in range(n)]


def sample_random(dim: int, n: int, rng: random.Random) -> list[list[float]]:
    """Plain uniform sample of ``n`` unit-cube points."""
    return [[rng.random() for _ in range(dim)] for _ in range(n)]


class _Tracker:
    """Shared bookkeeping: issue batches, keep the trace and the best."""

    def __init__(self, space: ParamSpace, evaluate_batch: EvaluateBatch, budget: int) -> None:
        self.space = space
        self.evaluate_batch = evaluate_batch
        self.budget = budget
        self.evaluations = 0
        self.trace: list[dict[str, Any]] = []
        self.best_unit: list[float] | None = None
        self.best_score = math.inf

    @property
    def remaining(self) -> int:
        return self.budget - self.evaluations

    def run(self, phase: str, units: list[list[float]]) -> list[float]:
        """Evaluate a batch of unit points (truncated to the budget)."""
        units = units[: max(self.remaining, 0)]
        if not units:
            return []
        configs = [self.space.config(u) for u in units]
        scores = self.evaluate_batch(configs)
        for u, config, score in zip(units, configs, scores, strict=True):
            if score < self.best_score:
                self.best_score = score
                self.best_unit = list(u)
            self.trace.append(
                {
                    "index": self.evaluations,
                    "phase": phase,
                    "config": config,
                    "score": score,
                    "best_score": self.best_score,
                }
            )
            self.evaluations += 1
        return scores


def _cmaes(tracker: _Tracker, dim: int, seed: int, budget: int) -> None:
    """Minimal (μ/μ_w, λ) CMA-ES in the clipped unit cube (numpy only)."""
    rng = np.random.default_rng(seed)
    lam = 4 + int(3 * math.log(dim)) if dim > 1 else 6
    mu = lam // 2
    raw = np.log(mu + 0.5) - np.log(np.arange(1, mu + 1))
    weights = raw / raw.sum()
    mu_eff = 1.0 / float(np.square(weights).sum())
    cc = (4 + mu_eff / dim) / (dim + 4 + 2 * mu_eff / dim)
    cs = (mu_eff + 2) / (dim + mu_eff + 5)
    c1 = 2 / ((dim + 1.3) ** 2 + mu_eff)
    cmu = min(1 - c1, 2 * (mu_eff - 2 + 1 / mu_eff) / ((dim + 2) ** 2 + mu_eff))
    damps = 1 + 2 * max(0.0, math.sqrt((mu_eff - 1) / (dim + 1)) - 1) + cs
    chi_n = math.sqrt(dim) * (1 - 1 / (4 * dim) + 1 / (21 * dim * dim))

    mean = np.full(dim, 0.5)
    sigma = 0.25
    cov = np.eye(dim)
    p_sigma = np.zeros(dim)
    p_c = np.zeros(dim)
    spent = 0
    while spent < budget and tracker.remaining > 0:
        eigvals, eigvecs = np.linalg.eigh(cov)
        eigvals = np.maximum(eigvals, 1e-20)
        scale = eigvecs @ np.diag(np.sqrt(eigvals))
        inv_sqrt = eigvecs @ np.diag(1.0 / np.sqrt(eigvals)) @ eigvecs.T
        z = rng.standard_normal((lam, dim))
        xs = np.clip(mean + sigma * (z @ scale.T), 0.0, 1.0)
        scores = tracker.run("cmaes", [list(map(float, x)) for x in xs])
        if not scores:
            return
        spent += len(scores)
        order = np.argsort(np.asarray(scores), kind="stable")[:mu]
        selected = xs[order]
        old_mean = mean
        mean = weights @ selected
        step = (mean - old_mean) / sigma
        p_sigma = (1 - cs) * p_sigma + math.sqrt(cs * (2 - cs) * mu_eff) * (inv_sqrt @ step)
        ps_norm = float(np.linalg.norm(p_sigma))
        h_sigma = 1.0 if ps_norm / math.sqrt(1 - (1 - cs) ** (2 * (spent // lam + 1))) < (
            1.4 + 2 / (dim + 1)
        ) * chi_n else 0.0
        p_c = (1 - cc) * p_c + h_sigma * math.sqrt(cc * (2 - cc) * mu_eff) * step
        deltas = (selected - old_mean) / sigma
        rank_mu = (weights[:, None, None] * (deltas[:, :, None] @ deltas[:, None, :])).sum(axis=0)
        cov = (
            (1 - c1 - cmu) * cov
            + c1 * (np.outer(p_c, p_c) + (1 - h_sigma) * cc * (2 - cc) * cov)
            + cmu * rank_mu
        )
        cov = (cov + cov.T) / 2.0
        sigma *= math.exp((cs / damps) * (ps_norm / chi_n - 1))
        sigma = min(max(sigma, 1e-8), 1.0)


def _descend(tracker: _Tracker, seed: int) -> dict[str, float]:
    """Per-parameter 1-D coordinate descent from the incumbent.

    Sweeps each axis in turn over a bracket centred on the incumbent,
    halving the bracket every full pass; moves the incumbent whenever a
    sweep improves it.  Returns the sensitivity map (per-axis score
    range across its sweeps, incumbent point included).
    """
    space = tracker.space
    sensitivity = {name: 0.0 for name in space.names}
    if tracker.best_unit is None or tracker.remaining <= 0:
        return sensitivity
    lo_seen = {name: tracker.best_score for name in space.names}
    hi_seen = {name: tracker.best_score for name in space.names}
    radius = DESCENT_RADIUS
    while tracker.remaining > 0 and radius > 1e-3:
        for axis, name in enumerate(space.names):
            if tracker.remaining <= 0:
                break
            centre = tracker.best_unit[axis]
            offsets = [
                centre + radius * (2.0 * k / (DESCENT_POINTS - 1) - 1.0)
                for k in range(DESCENT_POINTS)
            ]
            units = []
            for u in offsets:
                point = list(tracker.best_unit)
                point[axis] = min(max(u, 0.0), 1.0)
                units.append(point)
            scores = tracker.run("descent", units)
            for score in scores:
                lo_seen[name] = min(lo_seen[name], score)
                hi_seen[name] = max(hi_seen[name], score)
            sensitivity[name] = hi_seen[name] - lo_seen[name]
        radius /= 2.0
    return sensitivity


def run_search(
    space: ParamSpace,
    evaluate_batch: EvaluateBatch,
    *,
    budget: int,
    seed: int,
    method: str = "lhs",
    initial: dict[str, Any] | None = None,
) -> SearchResult:
    """Global phase + local descent; deterministic in ``seed``.

    ``budget`` bounds the number of candidate evaluations;
    ``method`` selects the global phase (one of
    :data:`SEARCH_METHODS`).  Scores are minimised.  ``initial``
    warm-starts the search with a known configuration (the paper
    defaults) so the reported best can never be worse than it.
    """
    if method not in SEARCH_METHODS:
        raise ValueError(f"method must be one of {list(SEARCH_METHODS)}, got {method!r}")
    if budget < 2:
        raise ValueError(f"budget must be >= 2, got {budget}")
    tracker = _Tracker(space, evaluate_batch, budget)
    if initial is not None:
        tracker.run("initial", [space.unit(initial)])
    # leave the local phase at least one full pass over every axis
    full_pass = space.dim * DESCENT_POINTS
    global_budget = max(1, min(int(budget * GLOBAL_FRACTION), tracker.remaining - full_pass))
    if method == "cmaes":
        _cmaes(tracker, space.dim, seed, global_budget)
    else:
        rng = random.Random(seed)
        sampler = sample_lhs if method == "lhs" else sample_random
        units = sampler(space.dim, global_budget, rng)
        tracker.run(method, units)
    sensitivity = _descend(tracker, seed)
    assert tracker.best_unit is not None
    return SearchResult(
        best_config=space.config(tracker.best_unit),
        best_score=tracker.best_score,
        evaluations=tracker.evaluations,
        trace=tracker.trace,
        sensitivity=sensitivity,
    )
