"""The searchable controller parameter space.

A :class:`ParamSpace` is an ordered tuple of :class:`ParamSpec` axes,
each a closed numeric interval over one controller knob.  The optimiser
(:mod:`repro.tune.search`) works exclusively in the unit cube
``[0, 1]^d``; :meth:`ParamSpace.config` maps a unit vector to a concrete
configuration dict (rounding integer axes), so every search algorithm is
bounds-respecting by construction.

The default space is **derived from** :data:`repro.core.knobs
.CONTROLLER_KNOBS` — the same registry the runtime constructors validate
against — so widening a knob's ``tune_lo``/``tune_hi`` there widens the
search here with no second edit site.  A space can also be declared
explicitly in a tune spec's ``[[param]]`` tables (see
:mod:`repro.tune.service`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.knobs import CONTROLLER_KNOBS

#: knobs included in the knob-derived default space, in search order
DEFAULT_SPACE_KNOBS = ("spread", "window", "quantile", "sampling_period")

#: the event-trigger knobs, for ``default_space(EVENT_SPACE_KNOBS)``;
#: searching these implies ``trigger = "event"`` (see
#: :func:`repro.tune.classes.controller_from_config`)
EVENT_SPACE_KNOBS = ("burst_threshold", "burst_window", "refractory", "fallback_floor")

#: parameter kinds a space axis may take
PARAM_KINDS = ("float", "int")


class SpaceError(ValueError):
    """A parameter-space declaration is malformed."""


@dataclass(frozen=True)
class ParamSpec:
    """One search axis: a closed interval over a numeric knob."""

    name: str
    #: "float" or "int"
    kind: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        """Reject malformed axes early, with the axis name in the message."""
        if not self.name:
            raise SpaceError("param: 'name' must be a non-empty string")
        if self.kind not in PARAM_KINDS:
            raise SpaceError(
                f"param {self.name!r}: kind must be one of {list(PARAM_KINDS)}, "
                f"got {self.kind!r}"
            )
        if not self.lo < self.hi:
            raise SpaceError(
                f"param {self.name!r}: need lo < hi, got [{self.lo}, {self.hi}]"
            )
        if self.kind == "int" and (int(self.lo) != self.lo or int(self.hi) != self.hi):
            raise SpaceError(
                f"param {self.name!r}: integer axis needs integer bounds, "
                f"got [{self.lo}, {self.hi}]"
            )

    def value(self, u: float) -> float | int:
        """Map a unit-cube coordinate to a concrete knob value."""
        u = min(max(u, 0.0), 1.0)
        raw = self.lo + u * (self.hi - self.lo)
        if self.kind == "int":
            return min(max(int(round(raw)), int(self.lo)), int(self.hi))
        return raw

    def unit(self, value: float) -> float:
        """Inverse of :meth:`value` (clipped to the cube)."""
        u = (float(value) - self.lo) / (self.hi - self.lo)
        return min(max(u, 0.0), 1.0)

    def to_jsonable(self) -> dict[str, Any]:
        """Stable JSON form for the report artefact."""
        return {"name": self.name, "kind": self.kind, "lo": self.lo, "hi": self.hi}


@dataclass(frozen=True)
class ParamSpace:
    """An ordered, immutable collection of search axes."""

    params: tuple[ParamSpec, ...]

    def __post_init__(self) -> None:
        """A space needs at least one axis and unique names."""
        if not self.params:
            raise SpaceError("parameter space must declare at least one param")
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate param names in space: {names}")

    @property
    def dim(self) -> int:
        """Number of search axes."""
        return len(self.params)

    @property
    def names(self) -> tuple[str, ...]:
        """Axis names, in search order."""
        return tuple(p.name for p in self.params)

    def config(self, unit: list[float] | tuple[float, ...]) -> dict[str, float | int]:
        """Map a unit-cube point to a concrete configuration dict."""
        if len(unit) != self.dim:
            raise SpaceError(f"unit vector has {len(unit)} coords, space has {self.dim}")
        return {p.name: p.value(u) for p, u in zip(self.params, unit, strict=True)}

    def unit(self, config: dict[str, float | int]) -> list[float]:
        """Map a configuration dict back into the unit cube."""
        return [p.unit(config[p.name]) for p in self.params]

    def to_jsonable(self) -> list[dict[str, Any]]:
        """Stable JSON form for the report artefact."""
        return [p.to_jsonable() for p in self.params]


def default_space(names: tuple[str, ...] = DEFAULT_SPACE_KNOBS) -> ParamSpace:
    """The knob-derived search space (single source of truth: the registry).

    >>> space = default_space()
    >>> space.names
    ('spread', 'window', 'quantile', 'sampling_period')
    >>> space.config([0.0] * space.dim)['window']
    4
    """
    params = []
    for name in names:
        knob = CONTROLLER_KNOBS[name]
        if knob.kind == "cat" or knob.tune_lo is None or knob.tune_hi is None:
            raise SpaceError(f"knob {name!r} declares no search range")
        params.append(
            ParamSpec(name=name, kind=knob.kind, lo=float(knob.tune_lo), hi=float(knob.tune_hi))
        )
    return ParamSpace(params=tuple(params))


def default_config(space: ParamSpace) -> dict[str, float | int]:
    """The paper-default configuration restricted to the space's axes.

    Axis values come from the knob registry defaults (clipped into the
    axis interval); axes with no registered knob fall back to the
    interval midpoint.
    """
    config: dict[str, float | int] = {}
    for p in space.params:
        knob = CONTROLLER_KNOBS.get(p.name)
        if knob is not None and knob.default is not None:
            config[p.name] = p.value(p.unit(knob.default))
        else:
            config[p.name] = p.value(0.5)
    return config


def space_from_tables(tables: list[dict[str, Any]]) -> ParamSpace:
    """Build a space from parsed ``[[param]]`` TOML tables.

    Each table either names a registered knob (``knob = "spread"``,
    optionally overriding ``lo``/``hi``) or declares a free axis in full
    (``name``/``kind``/``lo``/``hi``).
    """
    params: list[ParamSpec] = []
    for i, table in enumerate(tables):
        if not isinstance(table, dict):
            raise SpaceError(f"param #{i}: must be a table")
        unknown = sorted(set(table) - {"knob", "name", "kind", "lo", "hi"})
        if unknown:
            raise SpaceError(f"param #{i}: unknown keys {unknown}")
        knob_name = table.get("knob")
        if knob_name is not None:
            knob = CONTROLLER_KNOBS.get(str(knob_name))
            if knob is None:
                raise SpaceError(
                    f"param #{i}: unknown knob {knob_name!r}; registered knobs: "
                    f"{sorted(CONTROLLER_KNOBS)}"
                )
            if knob.kind == "cat":
                raise SpaceError(f"param #{i}: categorical knob {knob_name!r} is not searchable")
            lo = float(table.get("lo", knob.tune_lo))
            hi = float(table.get("hi", knob.tune_hi))
            params.append(ParamSpec(name=knob.name, kind=knob.kind, lo=lo, hi=hi))
            continue
        for key in ("name", "kind", "lo", "hi"):
            if key not in table:
                raise SpaceError(f"param #{i}: missing {key!r} (or use knob = \"...\")")
        params.append(
            ParamSpec(
                name=str(table["name"]),
                kind=str(table["kind"]),
                lo=float(table["lo"]),
                hi=float(table["hi"]),
            )
        )
    return ParamSpace(params=tuple(params))
