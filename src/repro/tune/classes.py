"""Workload classes the tuner scores candidate configurations against.

The paper tunes its controller against *one* machine's workload; a
fleet deploys the same controller against many qualitatively different
mixes.  Each :class:`WorkloadClass` here is a parameterised scenario
factory — a representative mix of adaptive (controller-driven) and
fixed-reservation load — that turns one candidate configuration into a
concrete :class:`~repro.fleet.spec.ScenarioSpec` runnable by the fleet
engine.  The catalogue deliberately spans the regimes where the paper's
hand-picked defaults behave differently:

- ``video-desktop`` — a vlc session (decoder + output threads sharing
  one reservation, §3.2) over a reserved periodic background: the
  benign regime the defaults were picked for;
- ``audio-burst`` — an mplayer pipeline with heavy per-frame cost
  jitter next to reserved interference: under-provisioning shows up
  immediately as deadline misses, so the spread/quantile trade-off
  dominates;
- ``periodic-mix`` — two adaptive periodic tasks at different rates
  plus a static reservation: cross-rate sharing through the supervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.knobs import CONTROLLER_KNOBS
from repro.fleet.spec import ControllerSpec, ScenarioSpec, SchedulerSpec, WorkloadSpec
from repro.sim.time import MS


def controller_from_config(config: dict[str, Any]) -> ControllerSpec:
    """Build the :class:`ControllerSpec` a candidate configuration denotes.

    Recognised keys are the registered knob names (``spread``,
    ``window``, ``quantile``, ``sampling_period``, ``boost``, plus the
    event-trigger knobs ``burst_threshold``, ``burst_window``,
    ``refractory`` and ``fallback_floor``); anything the configuration
    leaves out keeps the spec default.  Values are validated by
    ``ControllerSpec`` itself against the knob registry.

    Searching over any event-trigger knob implies the event-driven
    activation mode: the presence of one of those keys flips the spec
    to ``trigger="event"``, so a tuning space over e.g.
    ``burst_threshold`` compares event-mode candidates against each
    other rather than silently tuning a knob the periodic loop ignores.
    """
    kwargs: dict[str, Any] = {}
    if "spread" in config:
        kwargs["spread"] = float(config["spread"])
    if "window" in config:
        kwargs["window"] = int(config["window"])
    if "quantile" in config:
        kwargs["quantile"] = float(config["quantile"])
    if "sampling_period" in config:
        kwargs["sampling_period_ns"] = int(config["sampling_period"])
    if "boost" in config:
        kwargs["boost"] = float(config["boost"])
    event_knobs = False
    if "burst_threshold" in config:
        kwargs["burst_threshold"] = int(config["burst_threshold"])
        event_knobs = True
    if "burst_window" in config:
        kwargs["burst_window_ns"] = int(config["burst_window"])
        event_knobs = True
    if "refractory" in config:
        kwargs["refractory_ns"] = int(config["refractory"])
        event_knobs = True
    if "fallback_floor" in config:
        kwargs["fallback_floor_ns"] = int(config["fallback_floor"])
        event_knobs = True
    if event_knobs:
        kwargs["trigger"] = "event"
        # the search box is a product of per-knob intervals, but the spec
        # requires refractory <= fallback_floor; clamp rather than raise so
        # every unit-cube point stays a feasible candidate
        floor = kwargs.get(
            "fallback_floor_ns", CONTROLLER_KNOBS["fallback_floor"].default
        )
        if kwargs.get("refractory_ns", 0) > floor:
            kwargs["refractory_ns"] = floor
    return ControllerSpec(**kwargs)


@dataclass(frozen=True)
class WorkloadClass:
    """One named scenario factory in the tuning catalogue."""

    name: str
    doc: str
    #: (controller, name, seed, horizon_ns) -> concrete scenario
    _build: Callable[[ControllerSpec, str, int, int], ScenarioSpec]

    def scenario(
        self,
        config: dict[str, Any],
        *,
        group: str,
        seed: int,
        horizon_ns: int,
    ) -> ScenarioSpec:
        """Instantiate the class for one candidate configuration.

        ``group`` doubles as the scenario name and the fleet group key,
        so the evaluator can read each candidate's metrics back from the
        per-group sub-aggregate.
        """
        spec = self._build(controller_from_config(config), group, seed, horizon_ns)
        return spec


def _video_desktop(c: ControllerSpec, name: str, seed: int, horizon_ns: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        seed=seed,
        horizon_ns=horizon_ns,
        miss_threshold_ns=5 * MS,
        scheduler=SchedulerSpec(kind="cbs", policy="hard"),
        workloads=(
            WorkloadSpec(
                kind="vlc", name="vlc", seed=seed, jitter=0.18, adaptive=True
            ),
            WorkloadSpec(
                kind="periodic",
                name="bg",
                seed=seed + 1,
                period_ns=10 * MS,
                cost_ns=2 * MS,
                budget_ns=2_500_000,
            ),
        ),
        controller=c,
        group=name,
    )


def _audio_burst(c: ControllerSpec, name: str, seed: int, horizon_ns: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        seed=seed,
        horizon_ns=horizon_ns,
        miss_threshold_ns=2 * MS,
        scheduler=SchedulerSpec(kind="cbs", policy="hard"),
        workloads=(
            WorkloadSpec(
                kind="mplayer", name="mp3", seed=seed, jitter=0.45, adaptive=True
            ),
            WorkloadSpec(
                kind="periodic",
                name="rt",
                seed=seed + 1,
                period_ns=20 * MS,
                cost_ns=8 * MS,
                budget_ns=9 * MS,
            ),
        ),
        controller=c,
        group=name,
    )


def _periodic_mix(c: ControllerSpec, name: str, seed: int, horizon_ns: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        seed=seed,
        horizon_ns=horizon_ns,
        miss_threshold_ns=4 * MS,
        scheduler=SchedulerSpec(kind="cbs", policy="hard"),
        workloads=(
            WorkloadSpec(
                kind="periodic",
                name="fast",
                seed=seed,
                period_ns=20 * MS,
                cost_ns=3 * MS,
                jitter=0.30,
                adaptive=True,
            ),
            WorkloadSpec(
                kind="periodic",
                name="slow",
                seed=seed + 1,
                period_ns=50 * MS,
                cost_ns=12 * MS,
                jitter=0.20,
                adaptive=True,
            ),
            WorkloadSpec(
                kind="periodic",
                name="bg",
                seed=seed + 2,
                period_ns=10 * MS,
                cost_ns=1 * MS,
                budget_ns=1_500_000,
            ),
        ),
        controller=c,
        group=name,
    )


#: the built-in catalogue, keyed by class name
WORKLOAD_CLASSES: dict[str, WorkloadClass] = {
    "video-desktop": WorkloadClass(
        name="video-desktop",
        doc="vlc (two threads, one reservation) over a reserved periodic background",
        _build=_video_desktop,
    ),
    "audio-burst": WorkloadClass(
        name="audio-burst",
        doc="high-jitter mplayer next to a heavy static reservation",
        _build=_audio_burst,
    ),
    "periodic-mix": WorkloadClass(
        name="periodic-mix",
        doc="two adaptive periodic rates sharing the supervisor with static load",
        _build=_periodic_mix,
    ),
}
