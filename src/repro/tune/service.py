"""Orchestration: a TOML tune spec in, a ``TUNE_*.json`` report out.

A tune spec declares what to search (``[[param]]`` axes, default: the
knob-derived space), what to optimise (``[objective]`` weights), and
where (``classes`` from the catalogue)::

    [tune]
    name = "controller-demo"
    seed = 7
    budget = 24
    method = "lhs"          # or "random" / "cmaes"
    classes = ["audio-burst"]
    horizon_ms = 4000.0

    [objective]
    miss_weight = 1000.0

    [[param]]
    knob = "spread"

    [[param]]
    knob = "quantile"

:func:`run_tune` tunes every class independently — global search, then
per-parameter descent — and also scores the paper-default configuration
so the report can state the improvement.  All candidate evaluations are
deduplicated through the experiment cache; a warm rerun executes zero
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.cache import ResultCache
from repro.fleet._toml import load_toml
from repro.fleet.spec import SpecError, _int_field, _ms_to_ns, _reject_unknown
from repro.sim.time import MS
from repro.tune.classes import WORKLOAD_CLASSES
from repro.tune.evaluate import Evaluator, Objective
from repro.tune.report import class_payload, tune_payload
from repro.tune.search import SEARCH_METHODS, run_search
from repro.tune.space import ParamSpace, default_config, default_space, space_from_tables

_TUNE_KEYS = ("name", "seed", "budget", "method", "classes", "horizon_ms")
_OBJECTIVE_KEYS = ("miss_weight", "latency_weight", "p99_weight")
_TOP_KEYS = ("tune", "objective", "param")


@dataclass(frozen=True)
class TuneSpec:
    """One fully parsed tuning run."""

    name: str
    seed: int = 0
    #: candidate evaluations per workload class
    budget: int = 24
    method: str = "lhs"
    classes: tuple[str, ...] = ("audio-burst",)
    #: per-candidate simulation horizon; must span many controller
    #: sampling periods or every candidate scores its startup transient
    horizon_ns: int = 4000 * MS
    space: ParamSpace = field(default_factory=default_space)
    objective: Objective = field(default_factory=Objective)

    def __post_init__(self) -> None:
        """Validate everything a typo could corrupt silently."""
        if not self.name:
            raise SpecError("tune: 'name' must be a non-empty string")
        if self.budget < 2:
            raise SpecError(f"tune: 'budget' must be >= 2, got {self.budget}")
        if self.method not in SEARCH_METHODS:
            raise SpecError(
                f"tune: unknown method {self.method!r}; accepted methods are "
                f"{list(SEARCH_METHODS)}"
            )
        if not self.classes:
            raise SpecError("tune: 'classes' must name at least one workload class")
        for key in self.classes:
            if key not in WORKLOAD_CLASSES:
                raise SpecError(
                    f"tune: unknown workload class {key!r}; catalogue: "
                    f"{sorted(WORKLOAD_CLASSES)}"
                )
        if self.horizon_ns <= 0:
            raise SpecError(f"tune: 'horizon_ms' must be > 0, got {self.horizon_ns} ns")


def tune_spec_from_toml(text: str) -> TuneSpec:
    """Parse a tune spec document (strict keys throughout)."""
    doc = load_toml(text)
    _reject_unknown(doc, _TOP_KEYS, "tune document")
    meta = doc.get("tune", {})
    if not isinstance(meta, dict):
        raise SpecError("tune document: [tune] must be a table")
    _reject_unknown(meta, _TUNE_KEYS, "tune")
    classes_raw = meta.get("classes", ["audio-burst"])
    if not isinstance(classes_raw, list) or not all(isinstance(c, str) for c in classes_raw):
        raise SpecError(f"tune: 'classes' must be an array of strings, got {classes_raw!r}")

    objective_raw = doc.get("objective", {})
    if not isinstance(objective_raw, dict):
        raise SpecError("tune document: [objective] must be a table")
    _reject_unknown(objective_raw, _OBJECTIVE_KEYS, "objective")
    weights = {}
    for key in _OBJECTIVE_KEYS:
        if key in objective_raw:
            value = objective_raw[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(f"objective: {key!r} must be a number, got {value!r}")
            weights[key] = float(value)
    try:
        objective = Objective(**weights)
    except ValueError as exc:
        raise SpecError(f"objective: {exc}") from None

    params_raw = doc.get("param", [])
    if not isinstance(params_raw, list):
        raise SpecError("tune document: [[param]] must be an array of tables")
    space = space_from_tables(params_raw) if params_raw else default_space()

    return TuneSpec(
        name=str(meta.get("name", "")),
        seed=_int_field(meta, "seed", 0, "tune"),
        budget=_int_field(meta, "budget", 24, "tune"),
        method=str(meta.get("method", "lhs")),
        classes=tuple(classes_raw),
        horizon_ns=_ms_to_ns(meta.get("horizon_ms", 4000.0), "horizon_ms", "tune"),
        space=space,
        objective=objective,
    )


def load_tune_spec(path: str | Path) -> TuneSpec:
    """Load a tune spec from a ``.toml`` file."""
    return tune_spec_from_toml(Path(path).read_text())


@dataclass
class TuneReport:
    """The report payload plus the run statistics the CLI prints.

    Only ``payload`` lands in the JSON artefact; the counters are
    run-dependent (a warm cache changes them) and stay on stdout.
    """

    payload: dict[str, Any]
    evaluations: int = 0
    cache_hits: int = 0
    sims_run: int = 0


def run_tune(
    spec: TuneSpec, *, jobs: int = 1, cache: ResultCache | None = None
) -> TuneReport:
    """Tune every workload class of ``spec``; deterministic in its seed."""
    base_config = default_config(spec.space)
    classes: dict[str, dict[str, Any]] = {}
    evaluations = cache_hits = sims_run = 0
    for offset, key in enumerate(spec.classes):
        evaluator = Evaluator(
            WORKLOAD_CLASSES[key],
            spec.objective,
            seed=spec.seed,
            horizon_ns=spec.horizon_ns,
            cache=cache,
            jobs=jobs,
        )
        default_score = evaluator.evaluate_batch([dict(base_config)])[0]
        result = run_search(
            spec.space,
            evaluator.evaluate_batch,
            budget=spec.budget,
            seed=spec.seed + offset,
            method=spec.method,
            initial=dict(base_config),
        )
        classes[key] = class_payload(
            result, default_config=base_config, default_score=default_score
        )
        evaluations += evaluator.evaluations
        cache_hits += evaluator.cache_hits
        sims_run += evaluator.sims_run
    payload = tune_payload(
        name=spec.name,
        seed=spec.seed,
        budget=spec.budget,
        method=spec.method,
        space=spec.space,
        objective=spec.objective,
        horizon_ns=spec.horizon_ns,
        classes=classes,
    )
    return TuneReport(
        payload=payload,
        evaluations=evaluations,
        cache_hits=cache_hits,
        sims_run=sims_run,
    )
