"""Candidate evaluation: map configurations onto fleet runs, with caching.

One candidate = one concrete scenario (the workload class instantiated
with the candidate's controller parameters) = one simulation.  The
evaluator batches every cache-missing candidate of a generation into a
**single** :func:`~repro.fleet.engine.run_fleet` call — the search
algorithms hand over whole generations, so ``--jobs N`` parallelism
applies across candidates — and reads each candidate's metrics back
from its per-group sub-aggregate, which folds exactly one sim and is
therefore independent of worker scheduling.

Every scored candidate is stored in the
:class:`~repro.experiments.cache.ResultCache` under a canonical,
bit-stable key (class + seed + horizon + objective + configuration +
whole-``repro``-tree code digest), so re-running the same tuning spec
replays entirely from disk: zero new simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.experiments.base import ExperimentResult
from repro.experiments.cache import ResultCache, canonical_kwargs, package_digest
from repro.fleet.engine import run_fleet
from repro.fleet.summary import FleetAggregate
from repro.tune.classes import WorkloadClass

#: experiment name tune evaluations are cached under
CACHE_EXPERIMENT = "tune-eval"


@dataclass(frozen=True)
class Objective:
    """The scalar score a candidate minimises (lower is better).

    A weighted sum of the fleet metrics that matter for a legacy
    real-time mix: the deadline-miss rate (dominant by default — a
    thousand-fold weight makes any miss-rate difference decisive), the
    mean scheduling latency and the p99 tail, both in milliseconds.
    """

    miss_weight: float = 1000.0
    latency_weight: float = 1.0
    p99_weight: float = 0.25

    def __post_init__(self) -> None:
        """All weights must be finite and non-negative."""
        for label, w in (
            ("miss_weight", self.miss_weight),
            ("latency_weight", self.latency_weight),
            ("p99_weight", self.p99_weight),
        ):
            if not math.isfinite(w) or w < 0:
                raise ValueError(f"{label} must be finite and >= 0, got {w}")

    def score(self, agg: FleetAggregate) -> float:
        """Collapse one candidate's sub-aggregate into the scalar score."""
        lat_mean_ms = agg.lat_mean / 1e6
        p99_ms = agg.quantile(0.99) / 1e6
        return (
            self.miss_weight * agg.miss_rate
            + self.latency_weight * lat_mean_ms
            + self.p99_weight * p99_ms
        )

    def to_jsonable(self) -> dict[str, float]:
        """Stable JSON form (also feeds the cache key)."""
        return {
            "miss_weight": self.miss_weight,
            "latency_weight": self.latency_weight,
            "p99_weight": self.p99_weight,
        }


class Evaluator:
    """Batched, cached scorer for one workload class.

    The callable interface (:meth:`evaluate_batch`) is what
    :func:`repro.tune.search.run_search` expects.  Instances keep three
    counters the CLI reports: ``evaluations`` (configs scored),
    ``cache_hits`` (served from disk or the in-run memo) and
    ``sims_run`` (simulations actually executed).
    """

    def __init__(
        self,
        workload_class: WorkloadClass,
        objective: Objective,
        *,
        seed: int,
        horizon_ns: int,
        cache: ResultCache | None = None,
        jobs: int = 1,
    ) -> None:
        self.workload_class = workload_class
        self.objective = objective
        self.seed = seed
        self.horizon_ns = horizon_ns
        self.cache = cache
        self.jobs = jobs
        self.evaluations = 0
        self.cache_hits = 0
        self.sims_run = 0
        #: canonical config -> metrics, for repeats within one run
        self._memo: dict[str, dict[str, float]] = {}

    # -- keys ---------------------------------------------------------

    def _kwargs(self, config: dict[str, Any]) -> dict[str, Any]:
        """The full provenance of one evaluation (the cache-key payload)."""
        return {
            "class": self.workload_class.name,
            "seed": self.seed,
            "horizon_ns": self.horizon_ns,
            "objective": self.objective.to_jsonable(),
            "config": dict(config),
        }

    def _disk_key(self, config: dict[str, Any]) -> str | None:
        if self.cache is None:
            return None
        return self.cache.key(CACHE_EXPERIMENT, self._kwargs(config), package_digest())

    # -- evaluation ---------------------------------------------------

    def evaluate_batch(self, configs: list[dict[str, Any]]) -> list[float]:
        """Score every configuration, running only the cache misses."""
        metrics = [self._lookup(config) for config in configs]
        misses = [i for i, m in enumerate(metrics) if m is None]
        if misses:
            fresh = self._run_misses([configs[i] for i in misses])
            for i, m in zip(misses, fresh, strict=True):
                metrics[i] = m
        self.evaluations += len(configs)
        scores = []
        for config, m in zip(configs, metrics, strict=True):
            assert m is not None
            self._memo[canonical_kwargs({"config": dict(config)})] = m
            scores.append(m["score"])
        return scores

    def _lookup(self, config: dict[str, Any]) -> dict[str, float] | None:
        """In-run memo first, then the on-disk cache."""
        memo_key = canonical_kwargs({"config": dict(config)})
        hit = self._memo.get(memo_key)
        if hit is not None:
            self.cache_hits += 1
            return hit
        key = self._disk_key(config)
        if key is None or self.cache is None:
            return None
        entry = self.cache.get(CACHE_EXPERIMENT, key)
        if entry is None or not entry.result.rows:
            return None
        row = entry.result.rows[0]
        self.cache_hits += 1
        return {k: float(v) for k, v in row.items() if isinstance(v, (int, float))}

    def _run_misses(self, configs: list[dict[str, Any]]) -> list[dict[str, float]]:
        """One fleet run covering every miss; store each result on disk."""
        base = self.sims_run
        pairs = []
        for offset, config in enumerate(configs):
            group = f"tune/{self.workload_class.name}/c{base + offset:05d}"
            spec = self.workload_class.scenario(
                config, group=group, seed=self.seed, horizon_ns=self.horizon_ns
            )
            pairs.append((group, spec))
        aggregate = run_fleet([spec for _, spec in pairs], jobs=self.jobs)
        self.sims_run += len(pairs)
        out: list[dict[str, float]] = []
        for (group, _), config in zip(pairs, configs, strict=True):
            sub = aggregate.groups[group]
            m = {
                "score": self.objective.score(sub),
                "miss_rate": sub.miss_rate,
                "lat_mean_ms": sub.lat_mean / 1e6,
                "p99_ms": sub.quantile(0.99) / 1e6,
            }
            self._store(config, m)
            out.append(m)
        return out

    def _store(self, config: dict[str, Any], metrics: dict[str, float]) -> None:
        if self.cache is None:
            return
        key = self._disk_key(config)
        assert key is not None
        result = ExperimentResult(
            experiment=CACHE_EXPERIMENT,
            title=f"tune evaluation: {self.workload_class.name}",
        )
        result.add_row(**metrics)
        self.cache.put(CACHE_EXPERIMENT, key, result, kwargs=self._kwargs(config))
