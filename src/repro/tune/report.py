"""The ``TUNE_*.json`` artefact: best configs, traces, sensitivities.

The payload is a pure function of the tuning inputs — no timestamps, no
host state, keys sorted — so the byte-identity acceptance check
(``--jobs N`` == ``--jobs 1``, warm rerun == cold run) can compare
files directly.

:func:`rank_importance` is the shared "aumai-style" importance ranking:
given a baseline score and a set of variant scores (a parameter swept,
a component ablated), it orders the variants by how much they move the
objective — reused by both the tune sensitivity report and the
``abl-importance`` experiment.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.tune.evaluate import Objective
from repro.tune.search import SearchResult
from repro.tune.space import ParamSpace

#: schema tag stamped into every tune report
SCHEMA = "repro-tune/1"


def rank_importance(
    baseline_score: float, scores: dict[str, float]
) -> list[dict[str, Any]]:
    """Rank variants by impact on a lower-is-better objective.

    ``delta = variant - baseline``: positive means the variant *worsens*
    the objective relative to the baseline (for an ablation: the removed
    component was pulling its weight — important); negative means the
    variant improves on the baseline (the component was harmful, or the
    swept parameter value beats the incumbent).  Sorted by ``|delta|``
    descending (most impactful first), then by name for a stable order.

    >>> ranked = rank_importance(10.0, {"a": 14.0, "b": 9.0, "c": 10.0})
    >>> [(r["name"], r["harmful"]) for r in ranked]
    [('a', False), ('b', True), ('c', False)]
    """
    records = []
    for name in sorted(scores):
        delta = scores[name] - baseline_score
        records.append(
            {
                "name": name,
                "score": scores[name],
                "delta": delta,
                "harmful": delta < 0,
            }
        )
    records.sort(key=lambda r: (-abs(r["delta"]), r["name"]))
    return records


def class_payload(
    result: SearchResult,
    *,
    default_config: dict[str, Any],
    default_score: float,
) -> dict[str, Any]:
    """One workload class's section of the report."""
    sensitivity = [
        {"name": name, "range": result.sensitivity[name]}
        for name in sorted(
            result.sensitivity, key=lambda n: (-result.sensitivity[n], n)
        )
    ]
    return {
        "best_config": dict(result.best_config),
        "best_score": result.best_score,
        "default_config": dict(default_config),
        "default_score": default_score,
        "improvement": default_score - result.best_score,
        "evaluations": result.evaluations,
        "trace": list(result.trace),
        "sensitivity": sensitivity,
    }


def tune_payload(
    *,
    name: str,
    seed: int,
    budget: int,
    method: str,
    space: ParamSpace,
    objective: Objective,
    horizon_ns: int,
    classes: dict[str, dict[str, Any]],
) -> dict[str, Any]:
    """Assemble the full report document (classes in sorted order)."""
    return {
        "schema": SCHEMA,
        "name": name,
        "seed": seed,
        "budget": budget,
        "method": method,
        "horizon_ns": horizon_ns,
        "space": space.to_jsonable(),
        "objective": objective.to_jsonable(),
        "classes": {key: classes[key] for key in sorted(classes)},
    }


def write_tune_json(path: str | Path, payload: dict[str, Any]) -> None:
    """Write the canonical report file (sorted keys, strict JSON)."""
    blob = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    Path(path).write_text(blob + "\n", encoding="utf-8")
