"""Golden-trace digests: the simulator's bit-identity contract.

A digest is the SHA-256 over everything an optimisation PR must not
change about a run of a :mod:`repro.bench.scenarios` scenario:

- the full ``(pid, time)`` context-switch trace (via
  :attr:`repro.sim.kernel.Kernel.switch_hook`),
- the final virtual clock,
- per-process ``cpu_time`` / ``exit_time`` / ``syscall_count`` / state,
- the aggregate :class:`~repro.sim.kernel.KernelStats` counters.

:data:`GOLDEN_DIGESTS` pins the values produced by the pre-optimisation
simulator; ``tests/sim/test_golden_traces.py`` asserts them on every CI
run, so a hot-path change that perturbs even one context switch by one
nanosecond fails the build.
"""

from __future__ import annotations

import hashlib

from repro.bench.scenarios import GOLDEN_DURATION_NS, build_scenario


def attach_digest(kernel):
    """Install a switch-trace digest recorder on ``kernel``.

    Returns a ``finalize()`` callable: run the kernel (directly or
    through any wrapper such as ``SelfTuningRuntime.run``), then call it
    to fold the final clock, per-process state, and aggregate stats into
    the SHA-256 and get the hex digest.  This is the digest machinery
    behind :func:`golden_digest`, exposed so other bit-identity contracts
    (e.g. :mod:`repro.faults` zero-intensity transparency) can assert
    against the exact same fingerprint.
    """
    sha = hashlib.sha256()
    update = sha.update

    def record(proc, now: int) -> None:
        update(b"%d:%d;" % (proc.pid, now))

    kernel.switch_hook = record

    def finalize() -> str:
        update(b"|clock=%d" % kernel.clock)
        for pid in sorted(kernel.processes):
            p = kernel.processes[pid]
            exit_time = -1 if p.exit_time is None else p.exit_time
            update(
                b"|%d:%d:%d:%d:%s"
                % (pid, p.cpu_time, exit_time, p.syscall_count, p.state.value.encode())
            )
        s = kernel.stats
        update(
            b"|cs=%d,idle=%d,busy=%d,sys=%d,ev=%d"
            % (s.context_switches, s.idle_time, s.busy_time, s.syscalls, s.dispatched_events)
        )
        return sha.hexdigest()

    return finalize


def equivalence_digest(
    name: str, duration_ns: int = GOLDEN_DURATION_NS, *, fast_forward: bool = False
):
    """Run scenario ``name`` and digest trace + final state + metrics.

    Extends :func:`attach_digest` with per-process latency accumulators
    (count, total, max, and the exact float mean/std reprs) and the
    scheduler's monotone cycle counters (CBS consumed/exhaustions), so the
    fast-forward extrapolation of :mod:`repro.sim.cycles` is held to the
    same bit-identity bar as the stepped simulation.

    Returns ``(digest, report)``; ``report`` is the
    :class:`repro.sim.cycles.FastForwardReport` when ``fast_forward`` is
    set, else ``None``.
    """
    kernel = build_scenario(name)
    finalize = attach_digest(kernel)
    report = None
    if fast_forward:
        from repro.sim.cycles import run_fast_forward

        report = run_fast_forward(kernel, duration_ns)
    else:
        kernel.run(duration_ns)
    sha = hashlib.sha256(finalize().encode())
    for pid in sorted(kernel.processes):
        lat = kernel.processes[pid].sched_latency
        sha.update(
            f"|lat:{pid}:{lat.n}:{lat.total}:{lat.max}:{lat.mean!r}:{lat.std!r}".encode()
        )
    counters = kernel.scheduler.cycle_counters()
    for key in sorted(counters):
        sha.update(f"|ctr:{key}={counters[key]}".encode())
    return sha.hexdigest(), report


def golden_digest(
    name: str, duration_ns: int = GOLDEN_DURATION_NS, *, telemetry: bool = False
) -> str:
    """Run scenario ``name`` and digest its trace and final state.

    ``telemetry=True`` attaches a :mod:`repro.obs` hub before the run;
    the digest must come out identical either way (the observability
    layer's read-only contract — asserted by the golden-trace tests).
    """
    kernel = build_scenario(name)
    if telemetry:
        from repro.obs.instrument import instrument_kernel

        instrument_kernel(kernel)
    finalize = attach_digest(kernel)
    kernel.run(duration_ns)
    return finalize()


#: digests recorded on the pre-optimisation simulator (the PR 1 tree);
#: regenerate ONLY for a change that intentionally alters simulation
#: results, and say so loudly in the PR description
GOLDEN_DIGESTS: dict[str, str] = {
    "cbs-hard": "0e37411658d0b696d0f93592a69a8b9577340e0b9ec43a978271a332ea047620",
    "cbs-soft": "7af1f4e809663cba37ba026dc9839384e3a70a6d38ac2c51885363e5dd6f8647",
    "cbs-background": "2a9500f40c0f0bd8c62ebe003cf6bd140d5e727b3ba333af9e2ba4434864457a",
    "edf": "64a64363f9ec2583678ae1ab38e1c11da4209f0aac6ef339fcea0a2d839883bb",
    "fp": "483abf53714f0d4ba4d74f8e2b51037ece3860746c13c4fca6345ac2de7b4faa",
    "stride": "0fdaa9967c60d47a5c41fcd11f4ce671dccb3e760e834d2c76dd0b33df7b656a",
    "rr": "f922c81fda9fe90a5435f3cd3cff19901dfacd322470bed2fc3b8ee80c7c4989",
}
