"""Canonical deterministic scenarios for digests and throughput benchmarks.

Every scenario is a fixed mix — a seeded :class:`~repro.workloads.mplayer.
AudioPlayer` (the paper's mp3 workload), a tightly reserved synthetic
periodic task whose cost jitter forces budget exhaustions, and a
best-effort periodic disturbance — dispatched by one of the five
schedulers under test.  Given the same name, :func:`build_scenario`
produces bit-identical runs on every host and Python version, which is
what lets :mod:`repro.bench.golden` pin SHA-256 digests across PRs and
:mod:`repro.bench.micro` compare simulated-ns/sec before and after an
optimisation.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sched import (
    CbsScheduler,
    EdfScheduler,
    FixedPriorityScheduler,
    RoundRobinScheduler,
    ServerParams,
    StrideScheduler,
)
from repro.sim import Kernel, MS, SEC
from repro.sim.time import US
from repro.workloads import AudioPlayer, PeriodicTaskConfig, periodic_task
from repro.workloads.mplayer import AudioPlayerConfig

#: simulated duration every golden scenario runs for, ns
GOLDEN_DURATION_NS = 2 * SEC

#: plenty of frames for the whole window (~65 periods fit in 2 s)
_N_FRAMES = 200

#: the reserved disturbance: 4 ms nominal cost every 20 ms, with enough
#: jitter that a Q=4 ms reservation exhausts on the heavy jobs
_RT_TASK = PeriodicTaskConfig(cost=4 * MS, period=20 * MS, cost_jitter=0.15, seed=5)

#: best-effort disturbance competing in the background class
_BG_TASK = PeriodicTaskConfig(cost=3 * MS, period=15 * MS, phase=2 * MS, seed=9)


def _spawn_mix(kernel: Kernel):
    """The fixed mplayer + disturbance mix shared by every scheduler."""
    player = AudioPlayer(AudioPlayerConfig(seed=3))
    mp3 = kernel.spawn("mp3", player.program(_N_FRAMES))
    rt = kernel.spawn("rt", periodic_task(_RT_TASK, n_jobs=95))
    bg = kernel.spawn("bg", periodic_task(_BG_TASK, n_jobs=130))
    return mp3, rt, bg


def _cbs(policy: str) -> Kernel:
    scheduler = CbsScheduler()
    kernel = Kernel(scheduler)
    mp3, rt, _bg = _spawn_mix(kernel)
    # budgets sized to the mean demand, so jitter spills over the edge and
    # all three exhaustion policies actually branch
    srv_mp3 = scheduler.create_server(
        ServerParams(budget=2500 * US, period=30_769 * US, policy=policy), "mp3"
    )
    scheduler.attach(mp3, srv_mp3)
    srv_rt = scheduler.create_server(
        ServerParams(budget=4 * MS, period=20 * MS, policy=policy), "rt"
    )
    scheduler.attach(rt, srv_rt)
    return kernel


def _edf() -> Kernel:
    scheduler = EdfScheduler()
    kernel = Kernel(scheduler)
    mp3, rt, _bg = _spawn_mix(kernel)
    # mp3 gets a deadline tighter than its period, so the EDF order often
    # inverts the rate-monotonic one and the schedule diverges from _fp's
    scheduler.attach(mp3, 12 * MS)
    scheduler.attach(rt, 20 * MS)
    return kernel


def _fp() -> Kernel:
    scheduler = FixedPriorityScheduler()
    kernel = Kernel(scheduler)
    mp3, rt, bg = _spawn_mix(kernel)
    # rate monotonic: rt (20 ms) above mp3 (30.77 ms) above bg (15 ms
    # would rank first, but it is the best-effort stand-in: bottom)
    scheduler.attach(rt, 0)
    scheduler.attach(mp3, 1)
    scheduler.attach(bg, 2)
    return kernel


def _stride() -> Kernel:
    scheduler = StrideScheduler()
    kernel = Kernel(scheduler)
    mp3, rt, bg = _spawn_mix(kernel)
    scheduler.attach(mp3, 3)
    scheduler.attach(rt, 4)
    scheduler.attach(bg, 1)
    return kernel


def _rr() -> Kernel:
    kernel = Kernel(RoundRobinScheduler())
    _spawn_mix(kernel)
    return kernel


#: the scenarios the golden digests pin: CBS under all three exhaustion
#: policies, plus the four non-reservation schedulers
GOLDEN_SCENARIOS: dict[str, Callable[[], Kernel]] = {
    "cbs-hard": lambda: _cbs("hard"),
    "cbs-soft": lambda: _cbs("soft"),
    "cbs-background": lambda: _cbs("background"),
    "edf": _edf,
    "fp": _fp,
    "stride": _stride,
    "rr": _rr,
}


# ----------------------------------------------------------------------
# purely periodic scenarios (the fast-forwardable steady-state mixes)
# ----------------------------------------------------------------------
#: three infinite zero-jitter tasks with commensurate periods: hyperperiod
#: 32 ms, so :mod:`repro.sim.cycles` detects the steady-state cycle within
#: a handful of boundaries
_PERIODIC_TASKS = (
    PeriodicTaskConfig(cost=2 * MS, period=8 * MS, seed=21),
    PeriodicTaskConfig(cost=3 * MS, period=16 * MS, phase=1 * MS, seed=22),
    PeriodicTaskConfig(cost=4 * MS, period=32 * MS, phase=3 * MS, seed=23),
)


def _spawn_periodic(kernel: Kernel):
    """The fixed purely periodic mix shared by every scheduler."""
    t1 = kernel.spawn("p8", periodic_task(_PERIODIC_TASKS[0]))
    t2 = kernel.spawn("p16", periodic_task(_PERIODIC_TASKS[1]))
    t3 = kernel.spawn("p32", periodic_task(_PERIODIC_TASKS[2]))
    return t1, t2, t3


def _periodic_cbs(policy: str) -> Kernel:
    scheduler = CbsScheduler()
    kernel = Kernel(scheduler)
    t1, t2, t3 = _spawn_periodic(kernel)
    srv1 = scheduler.create_server(
        ServerParams(budget=2500 * US, period=8 * MS, policy=policy), "p8"
    )
    scheduler.attach(t1, srv1)
    # "background" gets a budget below the 3 ms job cost so the exhaustion
    # path fires every job yet the schedule stays cyclic (the task finishes
    # in the best-effort class before its next release); hard/soft get a
    # feasible budget — an under-provisioned hard/soft server would lag
    # further behind every period and never reach a steady state
    t2_budget = 2500 * US if policy == "background" else 3500 * US
    srv2 = scheduler.create_server(
        ServerParams(budget=t2_budget, period=16 * MS, policy=policy), "p16"
    )
    scheduler.attach(t2, srv2)
    # t3 stays in the best-effort background class
    return kernel


def _periodic_edf() -> Kernel:
    scheduler = EdfScheduler()
    kernel = Kernel(scheduler)
    t1, t2, _t3 = _spawn_periodic(kernel)
    scheduler.attach(t1, 8 * MS)
    scheduler.attach(t2, 16 * MS)
    return kernel


def _periodic_fp() -> Kernel:
    scheduler = FixedPriorityScheduler()
    kernel = Kernel(scheduler)
    t1, t2, t3 = _spawn_periodic(kernel)
    scheduler.attach(t1, 0)
    scheduler.attach(t2, 1)
    scheduler.attach(t3, 2)
    return kernel


def _periodic_stride() -> Kernel:
    scheduler = StrideScheduler()
    kernel = Kernel(scheduler)
    t1, t2, t3 = _spawn_periodic(kernel)
    scheduler.attach(t1, 4)
    scheduler.attach(t2, 2)
    scheduler.attach(t3, 1)
    return kernel


def _periodic_rr() -> Kernel:
    kernel = Kernel(RoundRobinScheduler())
    _spawn_periodic(kernel)
    return kernel


#: the eligible fast-forward scenarios: same policy spread as the golden
#: set, over the purely periodic mix
PERIODIC_SCENARIOS: dict[str, Callable[[], Kernel]] = {
    "periodic-cbs-hard": lambda: _periodic_cbs("hard"),
    "periodic-cbs-soft": lambda: _periodic_cbs("soft"),
    "periodic-cbs-background": lambda: _periodic_cbs("background"),
    "periodic-edf": _periodic_edf,
    "periodic-fp": _periodic_fp,
    "periodic-stride": _periodic_stride,
    "periodic-rr": _periodic_rr,
}

#: every canonical scenario (golden digests + periodic fast-forward mixes)
ALL_SCENARIOS: dict[str, Callable[[], Kernel]] = {**GOLDEN_SCENARIOS, **PERIODIC_SCENARIOS}


def build_scenario(name: str) -> Kernel:
    """Fresh kernel for canonical scenario ``name`` (see :data:`ALL_SCENARIOS`)."""
    try:
        return ALL_SCENARIOS[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(ALL_SCENARIOS)}"
        ) from None
