"""Single-run performance layer: canonical scenarios, golden digests, microbenchmarks.

PR 1 made the experiment suite cheap *across* runs (process fan-out +
result caching); this package makes the cost of one run a first-class,
tracked quantity:

- :mod:`.scenarios` — deterministic scheduler scenarios (a seeded
  mplayer-class player plus synthetic disturbance) shared by the golden
  digests and the throughput benchmarks;
- :mod:`.golden` — SHA-256 digests over the full context-switch trace and
  final kernel state of each scenario, pinning the simulator's results
  bit-for-bit across optimisation PRs;
- :mod:`.micro` — the microbenchmarks behind ``repro-exp bench --micro``:
  calendar ops/sec, simulated-ns/sec, spectrum events/sec and detector
  pairs/sec, emitted into ``BENCH_*.json``.
"""

from repro.bench.golden import GOLDEN_DIGESTS, golden_digest
from repro.bench.micro import MICRO_REGISTRY, MicroResult, run_micro
from repro.bench.scenarios import GOLDEN_SCENARIOS, build_scenario

__all__ = [
    "GOLDEN_DIGESTS",
    "GOLDEN_SCENARIOS",
    "MICRO_REGISTRY",
    "MicroResult",
    "build_scenario",
    "golden_digest",
    "run_micro",
]
