"""Microbenchmarks of the simulator and analyser hot paths.

Eight throughput metrics, one per hot path the profile concentrates in:

- ``calendar`` — :class:`repro.sim.engine.EventQueue` push/peek/cancel/pop
  operations per second on a deterministic mixed workload;
- ``sim`` — simulated nanoseconds per wall-clock second on the canonical
  mplayer + disturbance mix (the ``cbs-background`` golden scenario);
- ``spectrum`` — events folded per second through
  :meth:`repro.core.spectrum.Spectrum.add_events` with periodic
  :meth:`~repro.core.spectrum.Spectrum.slide_to` retirement;
- ``detector`` — pairwise intervals examined per second by
  :meth:`repro.core.autocorr.IntervalHistogramDetector.interval_histogram`;
- ``sim-obs`` — the ``sim`` scenario with a :mod:`repro.obs` telemetry
  hub attached, tracking the recording overhead against the bare run;
- ``fastforward`` — simulated-ns/sec through the schedule-cycle
  fast-forward of :mod:`repro.sim.cycles` on a long periodic horizon,
  with the full-run baseline and the wall-clock speedup in ``extra``;
- ``fleet`` — sims/sec through the batched :mod:`repro.fleet` engine on
  a 12-sim periodic template, against the naive one-sim-per-task
  full-stepping baseline (equivalence-checked), with the speedup and a
  parent peak-memory flatness spot-check in ``extra``;
- ``tune`` — candidate evaluations/sec through the :mod:`repro.tune`
  search service on a small one-class spec, with the warm-rerun
  result-cache speedup (cold/warm wall clock; the warm run must execute
  zero new simulations) in ``extra``.

``repro-exp bench --micro`` runs them and emits the numbers into the
``BENCH_*.json`` report (schema ``repro-bench/1``, ``micro`` key), so the
single-run performance trajectory is tracked PR over PR alongside the
experiment wall-clock sweep.  The workloads are seeded and fixed; only
the wall-clock denominator varies between hosts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.sim.time import SEC


@dataclass
class MicroResult:
    """Outcome of one microbenchmark run."""

    name: str
    #: headline throughput (work units per wall-clock second)
    value: float
    #: unit of ``value``, e.g. ``"ops/s"``
    unit: str
    #: wall-clock duration of the timed section, seconds
    elapsed_s: float
    #: total work units performed in the timed section
    work: int
    #: benchmark parameters (for the JSON report)
    params: dict = field(default_factory=dict)
    #: auxiliary measurements (counters, cross-checks)
    extra: dict = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        """Strict-JSON-friendly record for the bench report."""
        return {
            "name": self.name,
            "value": self.value,
            "unit": self.unit,
            "elapsed_s": round(self.elapsed_s, 6),
            "work": self.work,
            "params": dict(self.params),
            "extra": dict(self.extra),
        }


def bench_calendar(n_rounds: int = 60_000) -> MicroResult:
    """EventQueue throughput on a mixed push/peek/cancel/pop workload.

    Each round pushes three events at pseudorandom times (deterministic
    LCG), cancels one, peeks, and pops one — so the heap carries a
    steady ~50% tombstone load, the worst case the calendar's lazy
    cancellation must absorb.  One round = 6 queue operations.
    """
    from repro.sim.engine import EventQueue

    q = EventQueue()
    sink = []

    def cb(now, payload):  # pragma: no cover - never fired
        sink.append(now)

    x = 123456789
    t0 = time.perf_counter()
    for _ in range(n_rounds):
        x = (1103515245 * x + 12345) % (1 << 31)
        a = q.push(x, cb)
        x = (1103515245 * x + 12345) % (1 << 31)
        q.push(x, cb)
        x = (1103515245 * x + 12345) % (1 << 31)
        q.push(x, cb)
        a.cancel()
        q.peek_time()
        q.pop()
    elapsed = time.perf_counter() - t0
    ops = n_rounds * 6
    return MicroResult(
        name="calendar",
        value=ops / elapsed,
        unit="ops/s",
        elapsed_s=elapsed,
        work=ops,
        params={"n_rounds": n_rounds},
        extra={"leftover": len(q)},
    )


def bench_sim(duration_s: float = 2.0, repeats: int = 4) -> MicroResult:
    """Simulated-ns/sec on the canonical mplayer + disturbance mix.

    Runs the ``cbs-background`` golden scenario (AudioPlayer under a
    tight CBS reservation, jittery reserved periodic task, best-effort
    disturbance) for ``duration_s`` simulated seconds, ``repeats`` times
    over fresh kernels (one run is only tens of wall milliseconds; the
    repeats push the timed section out of timer-noise territory).
    """
    from repro.bench.scenarios import build_scenario

    duration_ns = int(duration_s * SEC)
    kernel = None
    t0 = time.perf_counter()
    for _ in range(max(repeats, 1)):
        kernel = build_scenario("cbs-background")
        kernel.run(duration_ns)
    elapsed = time.perf_counter() - t0
    total_ns = duration_ns * max(repeats, 1)
    return MicroResult(
        name="sim",
        value=total_ns / elapsed,
        unit="sim-ns/s",
        elapsed_s=elapsed,
        work=total_ns,
        params={"scenario": "cbs-background", "duration_s": duration_s, "repeats": repeats},
        extra={
            "context_switches": kernel.stats.context_switches,
            "dispatched_events": kernel.stats.dispatched_events,
            "syscalls": kernel.stats.syscalls,
        },
    )


def bench_spectrum(n_events: int = 12_000, batch: int = 200) -> MicroResult:
    """Events/sec folded into the incremental sparse spectrum.

    Feeds a jittered 32.5 Hz event train (plus the 3-per-period device
    grid, like the mp3 workload) through ``add_events`` in download-agent
    sized batches, sliding a 2 s window as it goes — the exact access
    pattern of the online analyser.
    """
    import numpy as np

    from repro.core.spectrum import Spectrum, SpectrumConfig

    rng = np.random.default_rng(42)
    period = round(1e9 / 32.5)
    base = np.arange(n_events, dtype=np.int64) * (period // 3)
    times = base + rng.integers(0, 200_000, size=n_events)
    spec = Spectrum(SpectrumConfig(f_min=30.0, f_max=100.0, df=0.1), horizon_ns=2 * SEC)
    t0 = time.perf_counter()
    for start in range(0, n_events, batch):
        chunk = times[start : start + batch]
        spec.add_events(chunk)
        spec.slide_to(int(chunk[-1]))
    amplitude_peak = float(spec.amplitude().max())
    elapsed = time.perf_counter() - t0
    return MicroResult(
        name="spectrum",
        value=n_events / elapsed,
        unit="events/s",
        elapsed_s=elapsed,
        work=n_events,
        params={"n_events": n_events, "batch": batch},
        extra={"operations": spec.operations, "amplitude_peak": amplitude_peak},
    )


def bench_detector(n_events: int = 30_000) -> MicroResult:
    """Pairwise intervals/sec through the time-domain histogram detector."""
    import numpy as np

    from repro.core.autocorr import IntervalDetectorConfig, IntervalHistogramDetector

    rng = np.random.default_rng(7)
    period = 30_770_000
    times = np.arange(n_events, dtype=np.int64) * (period // 3)
    times = times + rng.integers(0, 500_000, size=n_events)
    det = IntervalHistogramDetector(IntervalDetectorConfig())
    t0 = time.perf_counter()
    _lags, counts, pairs = det.interval_histogram(times)
    elapsed = time.perf_counter() - t0
    return MicroResult(
        name="detector",
        value=pairs / elapsed,
        unit="pairs/s",
        elapsed_s=elapsed,
        work=pairs,
        params={"n_events": n_events},
        extra={"histogram_mass": int(counts.sum())},
    )


def bench_sim_obs(duration_s: float = 2.0, repeats: int = 4) -> MicroResult:
    """Instrumented sim throughput, with the telemetry-off cross-check.

    Runs the same ``cbs-background`` mix as ``sim`` twice per repeat —
    once bare, once with a :mod:`repro.obs` hub attached — and reports
    the instrumented throughput; ``extra`` carries the bare throughput
    and the on/off wall-clock ratio, so the recording overhead (and the
    cost of the disabled fast path) is tracked PR over PR.
    """
    from repro.bench.scenarios import build_scenario
    from repro.obs.instrument import instrument_kernel

    duration_ns = int(duration_s * SEC)
    reps = max(repeats, 1)
    t0 = time.perf_counter()
    for _ in range(reps):
        kernel = build_scenario("cbs-background")
        kernel.run(duration_ns)
    off_elapsed = time.perf_counter() - t0
    hub = None
    t0 = time.perf_counter()
    for _ in range(reps):
        kernel = build_scenario("cbs-background")
        hub = instrument_kernel(kernel)
        kernel.run(duration_ns)
    on_elapsed = time.perf_counter() - t0
    total_ns = duration_ns * reps
    return MicroResult(
        name="sim-obs",
        value=total_ns / on_elapsed,
        unit="sim-ns/s",
        elapsed_s=off_elapsed + on_elapsed,
        work=total_ns,
        params={"scenario": "cbs-background", "duration_s": duration_s, "repeats": repeats},
        extra={
            "off_value": total_ns / off_elapsed,
            "overhead_ratio": on_elapsed / off_elapsed,
            "spans": len(hub.spans),
            "instants": len(hub.instants),
            "metric_series": len(hub.metrics),
        },
    )


def bench_fastforward(duration_s: float = 60.0) -> MicroResult:
    """Fast-forward speedup on a long purely-periodic horizon.

    Runs the ``periodic-cbs-background`` scenario (commensurate periods,
    exhaustions every job — the busiest eligible mix) for ``duration_s``
    simulated seconds twice: stepped in full, then through
    :func:`repro.sim.cycles.run_fast_forward`.  The headline value is the
    fast-forwarded simulated-ns/sec; ``extra`` carries the full-run
    throughput and the wall-clock speedup the regression gate guards
    (the ISSUE bar is >= 10x).
    """
    from repro.bench.scenarios import build_scenario
    from repro.sim.cycles import run_fast_forward

    scenario = "periodic-cbs-background"
    duration_ns = int(duration_s * SEC)
    t0 = time.perf_counter()
    kernel_full = build_scenario(scenario)
    kernel_full.run(duration_ns)
    full_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    kernel_ff = build_scenario(scenario)
    report = run_fast_forward(kernel_ff, duration_ns)
    ff_elapsed = time.perf_counter() - t0
    if kernel_ff.stats.context_switches != kernel_full.stats.context_switches:
        raise AssertionError("fast-forward diverged from the full run")
    return MicroResult(
        name="fastforward",
        value=duration_ns / ff_elapsed,
        unit="sim-ns/s",
        elapsed_s=full_elapsed + ff_elapsed,
        work=duration_ns,
        params={"scenario": scenario, "duration_s": duration_s},
        extra={
            "speedup": full_elapsed / ff_elapsed,
            "full_value": duration_ns / full_elapsed,
            "detected": report.detected,
            "cycles_skipped": report.cycles_skipped,
            "skipped_ns": report.skipped_ns,
            "hyperperiod": report.hyperperiod,
        },
    )


#: the fleet microbenchmark's inline template: purely periodic CBS nodes
#: (fast-forward eligible), a 2-policy grid x 6 nodes = 12 sims
_FLEET_TEMPLATE = """
[template]
name = "fleet-micro"
nodes = 6
seed = 4242

[scenario]
horizon_ms = 8000.0
miss_threshold_ms = 10.0

[scheduler]
kind = "cbs"
policy = "hard"

[[workload]]
kind = "periodic"
name = "p8"
count = 2
period_ms = 8.0
cost_ms = 0.4
budget_ms = 2.5
server_period_ms = 8.0

[[workload]]
kind = "periodic"
name = "p16"
count = 2
period_ms = 16.0
cost_ms = 1.0
budget_ms = 3.5
server_period_ms = 16.0

[grid]
"scheduler.policy" = ["hard", "soft"]
"""


def _strip_ff_accounting(doc: dict) -> dict:
    """An aggregate's JSON form minus the fast-forward bookkeeping.

    Fast-forward changes *how* a sim ran, never what it computed; the
    equivalence check between the naive and batched legs must therefore
    ignore the ``ff_*``/``*_skipped`` counters while comparing every
    latency, miss and kernel number bit for bit.
    """
    out = {k: v for k, v in doc.items() if k not in ("ff_detected", "cycles_skipped", "skipped_ns")}
    if "groups" in out:
        out["groups"] = {k: _strip_ff_accounting(v) for k, v in out["groups"].items()}
    return out


def bench_fleet() -> MicroResult:
    """Batched fleet engine vs naive per-sim execution.

    Expands the inline 12-sim purely-periodic template twice: the naive
    leg runs every sim individually with full stepping (one sim per
    chunk, no fast-forward — what a pre-fleet driver loop would do), the
    batched leg runs the production configuration (packed chunks +
    schedule-cycle fast-forward).  Both legs must agree on every
    non-fast-forward aggregate field, or this raises.  The headline value
    is the batched leg's sims/s; ``extra`` carries the >= 5x speedup the
    regression gate guards and a tracemalloc spot-check showing parent
    peak memory is flat in fleet size (full vs half fleet).
    """
    import tracemalloc

    from repro.fleet import expand_template, parse_template, run_fleet

    template = parse_template(_FLEET_TEMPLATE)
    sims = template.size
    t0 = time.perf_counter()
    naive = run_fleet(expand_template(template), jobs=1, chunksize=1, fast_forward=False)
    naive_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = run_fleet(expand_template(template), jobs=1, chunksize=8, fast_forward=True)
    fast_elapsed = time.perf_counter() - t0
    if _strip_ff_accounting(naive.to_jsonable()) != _strip_ff_accounting(fast.to_jsonable()):
        raise AssertionError("batched fleet run diverged from naive per-sim execution")

    def _fold_peak(limit: int) -> int:
        import itertools

        specs = itertools.islice(expand_template(template), limit)
        tracemalloc.start()
        run_fleet(specs, jobs=1, chunksize=8, fast_forward=True)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    peak_half = _fold_peak(sims // 2)
    peak_full = _fold_peak(sims)
    return MicroResult(
        name="fleet",
        value=sims / fast_elapsed,
        unit="sims/s",
        elapsed_s=naive_elapsed + fast_elapsed,
        work=sims,
        params={"sims": sims, "chunksize": 8, "horizon_s": 8.0},
        extra={
            "speedup": naive_elapsed / fast_elapsed,
            "naive_value": sims / naive_elapsed,
            "simulated_ns_per_s": fast.simulated_ns / fast_elapsed,
            "ff_detected": fast.ff_detected,
            "misses": fast.misses,
            "digest": fast.digest(),
            "peak_rss_ratio": peak_full / peak_half if peak_half else 0.0,
        },
    )


def bench_tune() -> MicroResult:
    """Auto-tuner throughput plus the result-cache replay speedup.

    Runs one small tuning spec twice against a private cache directory:
    cold (every candidate simulated) and warm (every candidate replayed
    from the on-disk :class:`~repro.experiments.cache.ResultCache`).
    The headline value is cold candidate evaluations per second;
    ``extra.cache_speedup`` is the cold/warm wall-clock ratio the bench
    regression gate floors, and the warm run is asserted to execute
    **zero** new simulations and produce a byte-identical payload.
    """
    import json
    import tempfile

    from repro.experiments.cache import ResultCache
    from repro.tune import run_tune, tune_spec_from_toml

    spec = tune_spec_from_toml(
        """
        [tune]
        name = "bench"
        seed = 11
        budget = 14
        method = "lhs"
        classes = ["periodic-mix"]
        horizon_ms = 3000.0

        [[param]]
        knob = "spread"

        [[param]]
        knob = "quantile"
        """
    )
    with tempfile.TemporaryDirectory() as root:
        t0 = time.perf_counter()
        cold = run_tune(spec, jobs=1, cache=ResultCache(root))
        cold_elapsed = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_tune(spec, jobs=1, cache=ResultCache(root))
        warm_elapsed = time.perf_counter() - t0
    if warm.sims_run != 0:
        raise AssertionError(f"warm tune rerun executed {warm.sims_run} sims, expected 0")
    cold_blob = json.dumps(cold.payload, sort_keys=True)
    if cold_blob != json.dumps(warm.payload, sort_keys=True):
        raise AssertionError("warm tune rerun diverged from the cold payload")
    best = cold.payload["classes"]["periodic-mix"]["best_score"]
    return MicroResult(
        name="tune",
        value=cold.evaluations / cold_elapsed,
        unit="evals/s",
        elapsed_s=cold_elapsed + warm_elapsed,
        work=cold.evaluations,
        params={"budget": 14, "classes": 1, "horizon_s": 3.0},
        extra={
            "cache_speedup": cold_elapsed / warm_elapsed,
            "sims_cold": cold.sims_run,
            "sims_warm": warm.sims_run,
            "best_score": best,
            "improvement": cold.payload["classes"]["periodic-mix"]["improvement"],
        },
    )


def bench_lint() -> MicroResult:
    """Linter throughput plus the incremental-cache warm speedup.

    Lints the installed ``repro`` package twice against a private cache
    directory: cold (every file parsed, facts extracted, rules run) and
    warm (facts and reports both served from the cache).  The headline
    value is cold files per second; ``extra.cache_speedup`` is the
    cold/warm wall-clock ratio the bench regression gate floors, and the
    warm run is asserted to re-analyse **zero** files with an identical
    diagnostic set.
    """
    import tempfile

    import repro
    from repro.analysis.lint.cache import AnalysisCache
    from repro.analysis.lint.engine import lint_paths

    roots = list(repro.__path__)
    with tempfile.TemporaryDirectory() as root:
        t0 = time.perf_counter()
        cold = lint_paths(roots, cache=AnalysisCache(root))
        cold_elapsed = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = lint_paths(roots, cache=AnalysisCache(root))
        warm_elapsed = time.perf_counter() - t0
    if warm.analysed != 0:
        raise AssertionError(f"warm lint rerun analysed {warm.analysed} files, expected 0")
    cold_diags = [d.to_json() for d in cold.diagnostics]
    if cold_diags != [d.to_json() for d in warm.diagnostics]:
        raise AssertionError("warm lint rerun diverged from the cold diagnostics")
    return MicroResult(
        name="lint",
        value=cold.files / cold_elapsed,
        unit="files/s",
        elapsed_s=cold_elapsed + warm_elapsed,
        work=cold.files,
        params={"files": cold.files},
        extra={
            "cache_speedup": cold_elapsed / warm_elapsed,
            "analysed_cold": cold.analysed,
            "analysed_warm": warm.analysed,
            "cached_warm": warm.cached,
            "diagnostics": len(cold.diagnostics),
            "waived": len(cold.waived),
        },
    )


#: name -> zero-argument benchmark callable (defaults are the canonical
#: sizes the trajectory is tracked at)
MICRO_REGISTRY: dict[str, Callable[[], MicroResult]] = {
    "calendar": bench_calendar,
    "sim": bench_sim,
    "spectrum": bench_spectrum,
    "detector": bench_detector,
    "sim-obs": bench_sim_obs,
    "fastforward": bench_fastforward,
    "fleet": bench_fleet,
    "tune": bench_tune,
    "lint": bench_lint,
}


def run_micro(names: list[str] | None = None) -> list[MicroResult]:
    """Run the selected microbenchmarks (default: all, registry order)."""
    selected = list(MICRO_REGISTRY) if not names else list(names)
    for name in selected:
        if name not in MICRO_REGISTRY:
            raise KeyError(f"unknown microbenchmark {name!r}; known: {sorted(MICRO_REGISTRY)}")
    return [MICRO_REGISTRY[name]() for name in selected]
