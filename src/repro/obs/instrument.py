"""Attach a :class:`~repro.obs.telemetry.Telemetry` hub to a running stack.

Instrumented classes (``Kernel``, ``CbsScheduler``, ``TaskController``,
``Supervisor``, ``QTracer``, ``SelfTuningRuntime``, ``SelfTuningDaemon``)
all carry a class-level ``_obs = None``; their hook sites are no-ops until
one of the functions here overwrites the default with an instance
attribute pointing at a hub.  Detaching is the reverse: delete the
instance attribute and the class default takes over again.

All three entry points are additive and idempotent — instrumenting twice
with the same hub is harmless; instrumenting with a new hub redirects the
recording.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.telemetry import Telemetry, TelemetryConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.daemon import SelfTuningDaemon
    from repro.core.runtime import SelfTuningRuntime
    from repro.sim.kernel import Kernel


def instrument_kernel(
    kernel: Kernel,
    telemetry: Telemetry | None = None,
    *,
    config: TelemetryConfig | None = None,
) -> Telemetry:
    """Instrument a bare kernel + its scheduler + its installed tracers.

    Covers the substrate layer: CPU slices per context switch, CBS server
    lifecycles, and qtrace downloads.  Returns the hub (created on demand
    when ``telemetry`` is None).
    """
    hub = telemetry if telemetry is not None else Telemetry(config)
    hub.bind_kernel(kernel)
    kernel._obs = hub
    scheduler = kernel.scheduler
    if hasattr(type(scheduler), "_obs"):
        scheduler._obs = hub
    for tracer in kernel.tracers:
        if hasattr(type(tracer), "_obs"):
            tracer._obs = hub
    return hub


def instrument_runtime(
    runtime: SelfTuningRuntime,
    telemetry: Telemetry | None = None,
    *,
    config: TelemetryConfig | None = None,
) -> Telemetry:
    """Instrument a :class:`~repro.core.runtime.SelfTuningRuntime`.

    On top of :func:`instrument_kernel` this wires the supervisor, the
    runtime's tracer, every already-adopted task's controller, and the
    runtime itself — so controllers created by *future* ``adopt()`` calls
    inherit the hub too.
    """
    hub = instrument_kernel(runtime.kernel, telemetry, config=config)
    runtime._obs = hub
    runtime.supervisor._obs = hub
    runtime.tracer._obs = hub
    seen = set()
    for task in runtime.tasks.values():
        if id(task.controller) not in seen:
            seen.add(id(task.controller))
            task.controller._obs = hub
            # event-driven activation: the timer slot holds an
            # EventDrivenLoop, which reports its trigger decisions
            if hasattr(type(task.timer), "_obs"):
                task.timer._obs = hub
    return hub


def instrument_daemon(
    daemon: SelfTuningDaemon,
    telemetry: Telemetry | None = None,
    *,
    config: TelemetryConfig | None = None,
) -> Telemetry:
    """Instrument a daemon and the runtime underneath it."""
    hub = instrument_runtime(daemon.runtime, telemetry, config=config)
    daemon._obs = hub
    return hub


def detach(obj: object) -> None:
    """Remove instrumentation from one object (its class default returns)."""
    if "_obs" in vars(obj):
        del obj.__dict__["_obs"]
