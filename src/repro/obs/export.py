"""Exporters: Chrome/Perfetto ``trace_event`` JSON, CSV, text summary.

The JSON artifact follows the Chrome Trace Event format (the "JSON Array
with metadata" flavour: an object with a ``traceEvents`` list), which
`ui.perfetto.dev <https://ui.perfetto.dev>`_ and ``chrome://tracing``
both open directly:

- every span track becomes a named thread of pid 1 ("repro virtual
  machine"); spans are ``"X"`` (complete) events, instants are ``"i"``;
- every metric series becomes a counter track (``"C"`` events named
  ``"<track>.<name>"``);
- timestamps are microseconds (the format's unit), converted from the
  simulator's integer nanoseconds — sub-microsecond instants keep their
  fractional part.

The CSV view is a flat ``kind,track,name,t_ns,value`` table of every
metric point (one row per sample), trivially loadable into pandas or a
spreadsheet.  The text summary is a terminal-friendly digest: span counts
per category, per-series statistics.
"""

from __future__ import annotations

import csv
import io
import json

from repro.obs.telemetry import Telemetry

#: pid used for every track of the single simulated machine
TRACE_PID = 1


def _track_ids(telemetry: Telemetry) -> dict[str, int]:
    """Stable track -> tid mapping (first-appearance order)."""
    tids: dict[str, int] = {}
    for span in telemetry.spans:
        if span.track not in tids:
            tids[span.track] = len(tids) + 1
    for inst in telemetry.instants:
        if inst.track not in tids:
            tids[inst.track] = len(tids) + 1
    return tids


def _json_args(args: dict) -> dict:
    """Drop non-JSON-serialisable arg values instead of crashing."""
    out = {}
    for k, v in args.items():
        if v is None or isinstance(v, (bool, int, float, str)):
            out[k] = v
        else:
            out[k] = str(v)
    return out


def chrome_trace(telemetry: Telemetry) -> dict:
    """Render the telemetry as a Chrome ``trace_event`` document."""
    events: list[dict] = []
    tids = _track_ids(telemetry)
    events.append(
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro virtual machine"},
        }
    )
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for span in telemetry.spans:
        events.append(
            {
                "ph": "X",
                "pid": TRACE_PID,
                "tid": tids[span.track],
                "ts": span.start / 1e3,
                "dur": (span.end - span.start) / 1e3,
                "cat": span.cat,
                "name": span.name,
                "args": _json_args(span.args),
            }
        )
    for inst in telemetry.instants:
        events.append(
            {
                "ph": "i",
                "pid": TRACE_PID,
                "tid": tids[inst.track],
                "ts": inst.time / 1e3,
                "s": "t",
                "cat": inst.cat,
                "name": inst.name,
                "args": _json_args(inst.args),
            }
        )
    for series in telemetry.metrics.values():
        counter_name = f"{series.track}.{series.name}"
        for t, v in zip(series.times, series.values, strict=True):
            events.append(
                {
                    "ph": "C",
                    "pid": TRACE_PID,
                    "ts": t / 1e3,
                    "name": counter_name,
                    "args": {series.name: v},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "virtual-ns",
            "spans": len(telemetry.spans),
            "instants": len(telemetry.instants),
            "metric_series": len(telemetry.metrics),
        },
    }


def write_chrome_trace(telemetry: Telemetry, path: str) -> dict:
    """Write the JSON artifact to ``path``; returns the document."""
    doc = chrome_trace(telemetry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, allow_nan=False)
    return doc


def timeseries_csv(telemetry: Telemetry) -> str:
    """Every metric point as ``kind,track,name,t_ns,value`` rows."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kind", "track", "name", "t_ns", "value"])
    for series in telemetry.metrics.values():
        for t, v in zip(series.times, series.values, strict=True):
            writer.writerow([series.kind, series.track, series.name, t, v])
    return buf.getvalue()


def summary_text(telemetry: Telemetry) -> str:
    """Terminal-friendly digest of what the run recorded."""
    out = ["== repro.obs summary =="]
    by_cat: dict[str, int] = {}
    busy: dict[str, int] = {}
    for span in telemetry.spans:
        by_cat[span.cat] = by_cat.get(span.cat, 0) + 1
        key = f"{span.cat}:{span.name}@{span.track}"
        busy[key] = busy.get(key, 0) + span.duration
    for inst in telemetry.instants:
        by_cat[inst.cat] = by_cat.get(inst.cat, 0) + 1
    out.append(f"spans: {len(telemetry.spans)}  instants: {len(telemetry.instants)}")
    for cat in sorted(by_cat):
        out.append(f"  [{cat}] {by_cat[cat]} events")
    if busy:
        out.append("-- span time (virtual ms, top 12)")
        top = sorted(busy.items(), key=lambda kv: -kv[1])[:12]
        for key, total in top:
            out.append(f"  {key:48s} {total / 1e6:12.3f}")
    if telemetry.metrics:
        out.append("-- metric series")
        for (track, name), series in sorted(telemetry.metrics.items()):
            s = series.summary()
            stats = (
                f"n={s['n']}"
                if s["n"] == 0
                else f"n={s['n']} min={s['min']:.4g} mean={s['mean']:.4g} "
                f"max={s['max']:.4g} last={s['last']:.4g}"
            )
            out.append(f"  {series.kind:9s} {track}.{name:28s} {stats}")
    return "\n".join(out)
