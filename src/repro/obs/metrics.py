"""Metric timeseries in virtual time: counters, gauges, histograms.

Every metric is a named series on a named track (the pair ``(track,
name)`` identifies it), holding ``(t_ns, value)`` points.  The three kinds
differ only in recording discipline and summary statistics:

- **counter** — cumulative, expected monotone (ring-buffer drops, budget
  exhaustions, consumed CPU);
- **gauge** — a level sampled at interesting instants (remaining budget,
  compression factor, ring occupancy, period estimate);
- **histogram** — a value distribution; the points keep the raw
  observations so quantiles can be computed exactly at export time.

Virtual timestamps are integers (ns); values may be int or float.  The
series is append-only and in recording order, which for a
single-clock simulation is also time order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: allowed values of :attr:`MetricSeries.kind`
METRIC_KINDS = ("counter", "gauge", "histogram")


@dataclass
class MetricSeries:
    """One named timeseries of ``(t_ns, value)`` points."""

    track: str
    name: str
    kind: str
    times: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            raise ValueError(f"kind must be one of {METRIC_KINDS}, got {self.kind!r}")

    def record(self, t: int, value: float) -> None:
        """Append one point."""
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float | None:
        """Most recent value (None when empty)."""
        return self.values[-1] if self.values else None

    def summary(self) -> dict:
        """Count/min/mean/max (plus p50/p95 for histograms)."""
        if not self.values:
            return {"n": 0}
        vals = self.values
        out = {
            "n": len(vals),
            "min": min(vals),
            "max": max(vals),
            "mean": sum(vals) / len(vals),
            "last": vals[-1],
        }
        if self.kind == "histogram":
            out["p50"] = _quantile(vals, 0.50)
            out["p95"] = _quantile(vals, 0.95)
        return out


def _quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile over a copy of ``values`` (no numpy needed)."""
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]
