"""``repro.obs`` — virtual-time telemetry: spans, metrics, trace export.

The observability subsystem.  A :class:`~repro.obs.telemetry.Telemetry`
hub attached to a kernel (via :mod:`repro.obs.instrument`) records what
the CBS servers, the feedback controllers, the supervisor, the tracer and
the scheduler did at each instant of **virtual time** — spans and metric
timeseries — without perturbing the simulation (golden traces stay
bit-identical with telemetry on or off).  Exporters render the recording
as a Chrome/Perfetto ``trace_event`` JSON, a CSV timeseries dump, or a
text summary; ``repro-exp trace <scenario>`` does all three in one go.

See ``docs/observability.md`` for the walkthrough.
"""

from repro.obs.export import chrome_trace, summary_text, timeseries_csv, write_chrome_trace
from repro.obs.instrument import (
    detach,
    instrument_daemon,
    instrument_kernel,
    instrument_runtime,
)
from repro.obs.metrics import MetricSeries
from repro.obs.schema import TraceSchemaError, validate_chrome_trace
from repro.obs.spans import Instant, OpenSpan, Span
from repro.obs.telemetry import Telemetry, TelemetryConfig

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "Span",
    "Instant",
    "OpenSpan",
    "MetricSeries",
    "instrument_kernel",
    "instrument_runtime",
    "instrument_daemon",
    "detach",
    "chrome_trace",
    "write_chrome_trace",
    "timeseries_csv",
    "summary_text",
    "validate_chrome_trace",
    "TraceSchemaError",
]
