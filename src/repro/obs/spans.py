"""Span records: intervals and instants on named tracks of virtual time.

A *span* is a closed interval ``[start, end]`` of virtual time on a named
track, tagged with a category (``"server"``, ``"controller"``,
``"tracer"``, ``"kernel"``, ``"daemon"``) and free-form ``args``.  An
*instant* is a zero-duration marker.  Both map 1:1 onto the Chrome
``trace_event`` phases ``"X"`` (complete) and ``"i"`` (instant), which is
what :mod:`repro.obs.export` emits.

Spans are plain immutable records; the mutable in-flight state lives in
:class:`OpenSpan`, which :meth:`repro.obs.telemetry.Telemetry.begin`
returns and :meth:`~repro.obs.telemetry.Telemetry.end` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One finished interval of virtual time on a track."""

    cat: str
    name: str
    track: str
    start: int
    end: int
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Span length in virtual ns."""
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker on a track."""

    cat: str
    name: str
    track: str
    time: int
    args: dict = field(default_factory=dict)


@dataclass
class OpenSpan:
    """An interval whose end has not been observed yet.

    Handles are returned by :meth:`repro.obs.telemetry.Telemetry.begin`;
    pass them back to :meth:`~repro.obs.telemetry.Telemetry.end`.  A handle
    may be ended at most once (ending twice is ignored, so callers on
    teardown paths need no bookkeeping).
    """

    cat: str
    name: str
    track: str
    start: int
    args: dict = field(default_factory=dict)
    closed: bool = False
