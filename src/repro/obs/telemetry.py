"""The telemetry hub: spans + metric timeseries over one kernel's clock.

A :class:`Telemetry` instance collects everything observable about a run —
spans (:mod:`repro.obs.spans`) and metric timeseries
(:mod:`repro.obs.metrics`) stamped in **virtual time** — and hands it to
the exporters in :mod:`repro.obs.export`.

Design constraints (see ``docs/observability.md``):

- **read-only**: the hub never touches simulation state, posts no
  calendar events and draws no random numbers, so a run is bit-identical
  with telemetry attached or not (``tests/sim/test_golden_traces.py``
  asserts this);
- **dead cheap when absent**: instrumented classes carry a class-level
  ``_obs = None`` attribute; every hook site is guarded by
  ``if self._obs is not None`` — one attribute load and an identity test
  on the disabled path, no call, no allocation.  Attaching is done by
  :mod:`repro.obs.instrument`, which overwrites the class default with an
  instance attribute.

The hub offers a generic recording API (:meth:`span`, :meth:`begin` /
:meth:`end`, :meth:`instant`, :meth:`counter`, :meth:`gauge`,
:meth:`histogram`) plus the domain helpers the instrumentation sites call
(:meth:`kernel_switch`, :meth:`server_exhausted`, :meth:`controller_epoch`
…), which encode the repo's track/category naming in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricSeries
from repro.obs.spans import Instant, OpenSpan, Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.cbs import Server
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process


@dataclass
class TelemetryConfig:
    """What the hub records.

    Everything defaults on; the switches exist for runs where one signal
    would dominate the artifact (per-switch CPU slices are by far the
    densest stream).
    """

    #: record a CPU slice per context switch (the scheduler track)
    record_switches: bool = True
    #: record per-download ring-buffer occupancy / drop counters
    record_tracer_counters: bool = True


class Telemetry:
    """Collects spans and metrics for one simulated machine."""

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self.kernel: Kernel | None = None
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: (track, name) -> series
        self.metrics: dict[tuple[str, str], MetricSeries] = {}
        #: open CPU slice of the scheduler track: (proc, start)
        self._cpu_open: tuple[Process, int] | None = None
        #: open throttle span per server id
        self._throttle_open: dict[int, OpenSpan] = {}

    def bind_kernel(self, kernel: Kernel) -> None:
        """Associate the hub with ``kernel`` (source of default timestamps)."""
        self.kernel = kernel

    def now(self) -> int:
        """Current virtual time (0 before a kernel is bound)."""
        return self.kernel.clock if self.kernel is not None else 0

    # ------------------------------------------------------------------
    # generic span API
    # ------------------------------------------------------------------
    def span(self, cat: str, name: str, track: str, start: int, end: int, **args) -> Span:
        """Record a finished interval ``[start, end]``."""
        s = Span(cat, name, track, start, end, args)
        self.spans.append(s)
        return s

    def begin(
        self, cat: str, name: str, track: str, start: int | None = None, **args
    ) -> OpenSpan:
        """Open an interval; close it with :meth:`end`."""
        return OpenSpan(cat, name, track, self.now() if start is None else start, args)

    def end(self, handle: OpenSpan, end: int | None = None, **args) -> Span | None:
        """Close an interval opened with :meth:`begin` (idempotent)."""
        if handle.closed:
            return None
        handle.closed = True
        merged = {**handle.args, **args}
        return self.span(
            handle.cat,
            handle.name,
            handle.track,
            handle.start,
            self.now() if end is None else end,
            **merged,
        )

    def instant(self, cat: str, name: str, track: str, t: int | None = None, **args) -> None:
        """Record a zero-duration marker."""
        self.instants.append(Instant(cat, name, track, self.now() if t is None else t, args))

    # ------------------------------------------------------------------
    # generic metric API
    # ------------------------------------------------------------------
    def _series(self, track: str, name: str, kind: str) -> MetricSeries:
        key = (track, name)
        series = self.metrics.get(key)
        if series is None:
            series = self.metrics[key] = MetricSeries(track, name, kind)
        return series

    def counter(self, track: str, name: str, value: float, t: int | None = None) -> None:
        """Record a cumulative counter sample."""
        self._series(track, name, "counter").record(self.now() if t is None else t, value)

    def gauge(self, track: str, name: str, value: float, t: int | None = None) -> None:
        """Record a level sample."""
        self._series(track, name, "gauge").record(self.now() if t is None else t, value)

    def histogram(self, track: str, name: str, value: float, t: int | None = None) -> None:
        """Record one observation of a distribution."""
        self._series(track, name, "histogram").record(self.now() if t is None else t, value)

    def series(self, track: str, name: str) -> MetricSeries | None:
        """Look up a series (None if never recorded)."""
        return self.metrics.get((track, name))

    # ------------------------------------------------------------------
    # kernel: the scheduler track (one CPU slice per context switch)
    # ------------------------------------------------------------------
    def kernel_switch(self, proc: Process, now: int) -> None:
        """A context switch completed; ``proc`` occupies the CPU."""
        if not self.config.record_switches:
            return
        open_ = self._cpu_open
        if open_ is not None:
            prev, start = open_
            if now > start:
                self.span("kernel", prev.name, "cpu", start, now, pid=prev.pid)
        self._cpu_open = (proc, now)

    def kernel_idle(self, now: int) -> None:
        """The CPU went idle at ``now``; close the open slice."""
        open_ = self._cpu_open
        if open_ is not None:
            prev, start = open_
            if now > start:
                self.span("kernel", prev.name, "cpu", start, now, pid=prev.pid)
            self._cpu_open = None

    def kernel_exit(self, proc: Process, now: int) -> None:
        """``proc`` exited; close its slice and mark the event."""
        open_ = self._cpu_open
        if open_ is not None and open_[0] is proc:
            self.kernel_idle(now)
        self.instant("kernel", f"exit:{proc.name}", "cpu", now, pid=proc.pid)

    # ------------------------------------------------------------------
    # CBS servers
    # ------------------------------------------------------------------
    @staticmethod
    def _srv_track(server: Server) -> str:
        return f"srv/{server.name}"

    def server_created(self, server: Server, now: int) -> None:
        track = self._srv_track(server)
        p = server.params
        self.instant(
            "server",
            "create",
            track,
            now,
            sid=server.sid,
            budget_ns=p.budget,
            period_ns=p.period,
            policy=p.policy,
        )
        self.gauge(track, "bandwidth", p.bandwidth, now)

    def server_destroyed(self, server: Server, now: int) -> None:
        handle = self._throttle_open.pop(server.sid, None)
        if handle is not None:
            self.end(handle, now)
        self.instant("server", "destroy", self._srv_track(server), now, sid=server.sid)

    def server_params_changed(self, server: Server, now: int) -> None:
        track = self._srv_track(server)
        p = server.params
        self.instant(
            "server", "set-params", track, now, budget_ns=p.budget, period_ns=p.period
        )
        self.gauge(track, "bandwidth", p.bandwidth, now)

    def server_exhausted(self, server: Server, now: int) -> None:
        track = self._srv_track(server)
        self.counter(track, "exhaustions", server.exhaustions, now)
        self.gauge(track, "budget_left_ns", 0, now)
        policy = server.params.policy
        if policy == "soft":
            self.instant("server", "recharge", track, now, postponed=True)
            return
        if policy == "background":
            self.instant("server", "policy-drop", track, now, members=len(server.ready))
        handle = self._throttle_open.get(server.sid)
        if handle is None or handle.closed:
            self._throttle_open[server.sid] = self.begin(
                "server", "throttled", track, now, policy=policy
            )

    def server_replenished(self, server: Server, now: int) -> None:
        track = self._srv_track(server)
        handle = self._throttle_open.pop(server.sid, None)
        if handle is not None:
            self.end(handle, now)
        self.instant("server", "recharge", track, now)
        self.gauge(track, "budget_left_ns", server.q, now)

    # ------------------------------------------------------------------
    # controller epochs
    # ------------------------------------------------------------------
    def controller_epoch(
        self,
        name: str,
        start: int,
        end: int,
        *,
        consumed: int,
        exhaustions: int,
        period_ns: int | None,
        requested_bw: float,
        granted_bw: float,
    ) -> None:
        """One sample→analyse→predict→actuate activation.

        The span covers the sampling window the activation analysed
        (``[previous activation, now]``); the counters track the actuated
        trajectory.
        """
        track = f"ctl/{name}"
        self.span(
            "controller",
            "epoch",
            track,
            max(start, 0),
            end,
            consumed_ns=consumed,
            exhaustions=exhaustions,
            period_est_ns=period_ns,
            requested_bw=round(requested_bw, 6),
            granted_bw=round(granted_bw, 6),
        )
        self.counter(track, "consumed_ns", consumed, end)
        self.gauge(track, "granted_bw", granted_bw, end)
        if period_ns is not None:
            self.gauge(track, "period_est_ms", period_ns / 1e6, end)
            self.gauge(track, "freq_est_hz", 1e9 / period_ns if period_ns else 0.0, end)
        if requested_bw > 0:
            self.histogram(track, "compression", granted_bw / requested_bw, end)

    # ------------------------------------------------------------------
    # event-driven activation (:mod:`repro.core.events`)
    # ------------------------------------------------------------------
    def controller_trigger(
        self, name: str, now: int, causes: tuple[str, ...], recomputes: int
    ) -> None:
        """One event-driven controller recompute and why it fired.

        Instants land on the shared ``controller.trigger`` track (one
        marker per recompute, named by the merged cause tuple) so a
        Perfetto view lines the *why* up against the ``ctl/<name>``
        epochs; the per-controller recompute counter sits next to them.
        """
        track = "controller.trigger"
        self.instant("trigger", "+".join(causes), track, now, controller=name)
        self.counter(track, f"{name}.recomputes", recomputes, now)

    def supervisor_trigger(self, now: int, causes: tuple[str, ...], repairs: int) -> None:
        """One event-driven supervisor watchdog run and why it fired."""
        track = "supervisor.trigger"
        self.instant("trigger", "+".join(causes), track, now)
        self.counter(track, "repairs", repairs, now)

    # ------------------------------------------------------------------
    # supervisor
    # ------------------------------------------------------------------
    def supervisor_recompute(self, requested_bw: float, granted_bw: float) -> None:
        now = self.now()
        self.gauge("supervisor", "requested_bw", requested_bw, now)
        self.gauge("supervisor", "granted_bw", granted_bw, now)
        factor = granted_bw / requested_bw if requested_bw > 0 else 1.0
        self.gauge("supervisor", "compression", min(factor, 1.0), now)

    # ------------------------------------------------------------------
    # tracer
    # ------------------------------------------------------------------
    def tracer_download(
        self,
        start: int,
        end: int,
        *,
        batch: int,
        occupancy: int,
        dropped: int,
        overrun: int = 0,
        cost_ns: int = 0,
    ) -> None:
        """One buffer download (direct drain or agent ioctl).

        ``dropped`` is the ring's lifetime overwrite count; ``overrun``
        is the per-download delta (events lost since the previous
        download), surfaced as its own counter so overrun bursts are
        visible without differencing.
        """
        self.span(
            "tracer", "download", "qtrace", start, end, batch=batch, cost_ns=cost_ns,
            overrun=overrun,
        )
        if self.config.record_tracer_counters:
            self.gauge("qtrace", "occupancy", occupancy, start)
            self.gauge("qtrace", "occupancy", 0, end)
            self.counter("qtrace", "dropped", dropped, end)
            self.histogram("qtrace", "batch_size", batch, end)
            if overrun:
                self.counter("qtrace", "overrun", dropped, end)

    # ------------------------------------------------------------------
    # fault injection (:mod:`repro.faults`)
    # ------------------------------------------------------------------
    def fault_injected(self, kind: str, event: str, now: int, *, total: int, **args) -> None:
        """One injected fault (instant + running counter on ``faults/<kind>``)."""
        track = f"faults/{kind}"
        self.instant("fault", event, track, now, **args)
        self.counter(track, "injected", total, now)

    def fault_window_begin(self, kind: str, event: str, now: int, **args) -> OpenSpan:
        """Open the span covering one active fault window."""
        return self.begin("fault", event, f"faults/{kind}", now, **args)

    # ------------------------------------------------------------------
    # daemon
    # ------------------------------------------------------------------
    def daemon_probe_started(self, proc: Process, now: int) -> OpenSpan:
        return self.begin("daemon", "probe", f"daemon/{proc.name}", now, pid=proc.pid)

    def daemon_probe_ended(self, handle: OpenSpan, now: int, verdict: str) -> None:
        self.end(handle, now, verdict=verdict)

    def daemon_adopted(self, proc: Process, period_ns: int, now: int) -> None:
        self.instant(
            "daemon", "adopt", f"daemon/{proc.name}", now, pid=proc.pid, period_ns=period_ns
        )

    # ------------------------------------------------------------------
    # introspection helpers (used by exporters and tests)
    # ------------------------------------------------------------------
    def close_open_spans(self, now: int | None = None) -> None:
        """Close the scheduler slice and any open throttle spans.

        Call once at end of run so the artifact has no dangling state;
        safe to call repeatedly.
        """
        t = self.now() if now is None else now
        self.kernel_idle(t)
        for handle in list(self._throttle_open.values()):
            self.end(handle, t)
        self._throttle_open.clear()

    def span_categories(self) -> set[str]:
        """Distinct categories across spans and instants."""
        cats = {s.cat for s in self.spans}
        cats.update(i.cat for i in self.instants)
        return cats

    def counter_tracks(self) -> set[tuple[str, str]]:
        """Distinct (track, name) metric series recorded."""
        return set(self.metrics)
