"""Structural validation of Chrome ``trace_event`` documents.

A dependency-free checker for the subset of the Trace Event format the
exporter emits (and that Perfetto's legacy-JSON importer requires):
``M`` metadata, ``X`` complete spans, ``i`` instants and ``C`` counters.
Used by ``tests/obs/`` and by the CI trace-smoke step to prove the
artifact ``repro-exp trace`` writes is loadable, without a browser in the
loop.

:func:`validate_chrome_trace` raises :class:`TraceSchemaError` listing
every violation, and on success returns a stats dict used by the
acceptance checks::

    {"events": 812, "spans": 211, "instants": 40, "counters": 530,
     "categories": {"server", "controller", ...},
     "counter_tracks": {"ctl/mplayer.granted_bw", ...},
     "tracks": {"cpu", "srv/srv-mplayer", ...}}
"""

from __future__ import annotations

#: phases the exporter may emit
KNOWN_PHASES = {"M", "X", "i", "C"}


class TraceSchemaError(ValueError):
    """The document violates the trace_event structure."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = problems
        preview = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        super().__init__(f"{len(problems)} trace_event violations: {preview}{more}")


def _check_event(ev: object, idx: int, problems: list[str]) -> dict | None:
    where = f"traceEvents[{idx}]"
    if not isinstance(ev, dict):
        problems.append(f"{where}: not an object")
        return None
    ph = ev.get("ph")
    if ph not in KNOWN_PHASES:
        problems.append(f"{where}: unknown phase {ph!r}")
        return None
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        problems.append(f"{where}: missing/empty name")
    if not isinstance(ev.get("pid"), int):
        problems.append(f"{where}: missing integer pid")
    if ph in ("X", "i", "C"):
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")
    if ph in ("X", "i") and not isinstance(ev.get("tid"), int):
        problems.append(f"{where}: span/instant needs an integer tid")
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
            problems.append(f"{where}: X event needs non-negative dur, got {dur!r}")
    if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
        problems.append(f"{where}: instant scope must be t/p/g, got {ev.get('s')!r}")
    if ph in ("M", "C") and not isinstance(ev.get("args"), dict):
        problems.append(f"{where}: {ph} event needs an args object")
    if ph == "C":
        for k, v in (ev.get("args") or {}).items():
            if not isinstance(v, (int, float)) or v != v:
                problems.append(f"{where}: counter arg {k!r} must be finite number")
    return ev


def validate_chrome_trace(doc: object) -> dict:
    """Validate ``doc``; raise :class:`TraceSchemaError` or return stats."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        raise TraceSchemaError(["document is not a JSON object"])
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise TraceSchemaError(["traceEvents must be a non-empty list"])
    stats = {
        "events": len(events),
        "spans": 0,
        "instants": 0,
        "counters": 0,
        "categories": set(),
        "counter_tracks": set(),
        "tracks": set(),
    }
    thread_names: dict[int, str] = {}
    for idx, raw in enumerate(events):
        ev = _check_event(raw, idx, problems)
        if ev is None:
            continue
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "thread_name":
            name = (ev.get("args") or {}).get("name")
            if isinstance(name, str) and isinstance(ev.get("tid"), int):
                thread_names[ev["tid"]] = name
        elif ph == "X":
            stats["spans"] += 1
            if isinstance(ev.get("cat"), str):
                stats["categories"].add(ev["cat"])
        elif ph == "i":
            stats["instants"] += 1
            if isinstance(ev.get("cat"), str):
                stats["categories"].add(ev["cat"])
        elif ph == "C":
            stats["counters"] += 1
            stats["counter_tracks"].add(ev["name"])
    for idx, raw in enumerate(events):
        if isinstance(raw, dict) and raw.get("ph") in ("X", "i"):
            tid = raw.get("tid")
            if isinstance(tid, int):
                track = thread_names.get(tid)
                if track is None:
                    problems.append(
                        f"traceEvents[{idx}]: tid {tid} has no thread_name metadata"
                    )
                else:
                    stats["tracks"].add(track)
    if problems:
        raise TraceSchemaError(problems)
    return stats
