"""Traceable scenarios for ``repro-exp trace``.

Each entry builds a workload, attaches a telemetry hub, runs the
simulation and returns the hub — ready for the exporters.  The registry
keys are what the CLI accepts::

    repro-exp trace fig13                # LFS++ adopting mplayer (Fig. 13)
    repro-exp trace fig13-lfs            # same video under original LFS
    repro-exp trace daemon               # autonomous adoption end to end
    repro-exp trace qtrace-agent         # tracer download agent at work

Scenario parameters accept ``key=value`` overrides like experiment
parameters do (``repro-exp trace fig13 n_frames=120 seed=7``).  Defaults
are sized for an artifact that opens snappily in Perfetto (a few seconds
of virtual time, thousands — not millions — of events).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.obs.instrument import instrument_kernel, instrument_runtime
from repro.obs.telemetry import Telemetry, TelemetryConfig


def trace_fig13(*, n_frames: int = 250, seed: int = 13, law: str = "lfs++") -> Telemetry:
    """The Figure 13 mplayer playback under adaptive reservations."""
    from repro.core import Lfs, LfsPlusPlus, SelfTuningRuntime
    from repro.core.analyser import AnalyserConfig
    from repro.core.controller import TaskControllerConfig
    from repro.experiments.fig13 import VIDEO_SPECTRUM
    from repro.sim.time import MS, SEC
    from repro.workloads import VideoPlayer
    from repro.workloads.desktop import desktop_load, desktop_suite
    from repro.workloads.mplayer import VideoPlayerConfig

    rt = SelfTuningRuntime()
    telemetry = instrument_runtime(rt)
    player = VideoPlayer(VideoPlayerConfig(seed=seed))
    proc = rt.spawn("mplayer", player.program(n_frames))
    for i, cfg in enumerate(desktop_suite(seed + 40)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))

    if law == "lfs":
        feedback = Lfs()
        controller_config = TaskControllerConfig(
            sampling_period=40 * MS, use_period_estimate=False
        )
        analyser_config = None
    elif law == "lfs++":
        feedback = LfsPlusPlus()
        controller_config = TaskControllerConfig(sampling_period=100 * MS)
        analyser_config = AnalyserConfig(spectrum=VIDEO_SPECTRUM, horizon_ns=2 * SEC)
    else:
        raise ValueError(f"unknown law {law!r}; use 'lfs' or 'lfs++'")
    rt.adopt(
        proc,
        feedback=feedback,
        controller_config=controller_config,
        analyser_config=analyser_config,
    )
    rt.run((n_frames * 40 + 2000) * MS)
    telemetry.close_open_spans()
    return telemetry


def trace_fig13_lfs(*, n_frames: int = 250, seed: int = 13) -> Telemetry:
    """The same playback under the original LFS feedback law."""
    return trace_fig13(n_frames=n_frames, seed=seed, law="lfs")


def trace_daemon(*, duration_s: float = 12.0, seed: int = 21, n_frames: int = 280) -> Telemetry:
    """Autonomous adoption: the daemon probes, rejects and adopts."""
    from repro.core import SelfTuningRuntime
    from repro.core.analyser import AnalyserConfig
    from repro.core.controller import TaskControllerConfig
    from repro.core.daemon import SelfTuningDaemon
    from repro.core.spectrum import SpectrumConfig
    from repro.obs.instrument import instrument_daemon
    from repro.sim.time import MS, SEC
    from repro.workloads import FfmpegConfig, VideoPlayer, ffmpeg_transcode
    from repro.workloads.desktop import desktop_load, desktop_suite
    from repro.workloads.mplayer import VideoPlayerConfig

    rt = SelfTuningRuntime()
    player = VideoPlayer(VideoPlayerConfig(seed=seed))
    rt.spawn("mplayer", player.program(n_frames))
    rt.spawn("ffmpeg", ffmpeg_transcode(FfmpegConfig(n_frames=4000, seed=5)))
    for i, cfg in enumerate(desktop_suite(seed + 56)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))
    daemon = SelfTuningDaemon(
        rt,
        analyser_config=AnalyserConfig(
            spectrum=SpectrumConfig(f_min=20.0, f_max=100.0, df=0.1), horizon_ns=2 * SEC
        ),
        controller_config=TaskControllerConfig(sampling_period=100 * MS),
    )
    telemetry = instrument_daemon(daemon)
    daemon.start()
    rt.run(int(duration_s * SEC))
    telemetry.close_open_spans()
    return telemetry


def trace_qtrace_agent(*, duration_s: float = 4.0, seed: int = 3) -> Telemetry:
    """The qtrace download agent draining a traced audio player."""
    from repro.sched import CbsScheduler, ServerParams
    from repro.sim import Kernel, MS, SEC
    from repro.sim.time import US
    from repro.tracer.qtrace import QTracer
    from repro.workloads import AudioPlayer
    from repro.workloads.mplayer import AudioPlayerConfig

    scheduler = CbsScheduler()
    kernel = Kernel(scheduler)
    tracer = QTracer()
    kernel.add_tracer(tracer)
    telemetry = instrument_kernel(kernel, Telemetry(TelemetryConfig()))
    player = AudioPlayer(AudioPlayerConfig(seed=seed))
    n_frames = int(duration_s * SEC / player.config.period) + 2
    mp3 = kernel.spawn("mp3", player.program(n_frames))
    server = scheduler.create_server(
        ServerParams(budget=2500 * US, period=30_769 * US, policy="background"), "mp3"
    )
    scheduler.attach(mp3, server)
    tracer.trace_pid(mp3.pid)
    tracer.spawn_download_agent(kernel, period=100 * MS)
    kernel.run(int(duration_s * SEC))
    telemetry.close_open_spans()
    return telemetry


#: name -> zero-config scenario callable (kwargs are CLI overrides)
TRACE_SCENARIOS: dict[str, Callable[..., Telemetry]] = {
    "fig13": trace_fig13,
    "fig13-lfs": trace_fig13_lfs,
    "daemon": trace_daemon,
    "qtrace-agent": trace_qtrace_agent,
}


def run_trace_scenario(name: str, overrides: dict | None = None) -> Telemetry:
    """Build and run scenario ``name`` with ``overrides``."""
    try:
        fn = TRACE_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace scenario {name!r}; known: {sorted(TRACE_SCENARIOS)}"
        ) from None
    return fn(**(overrides or {}))
