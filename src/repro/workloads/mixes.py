"""Canonical system-call mixes.

Figure 4 of the paper shows the call statistics of a three-minute mplayer
run: the trace is dominated by ``ioctl`` (the ALSA audio path through
libasound), followed by time queries and file I/O.  ``MPLAYER_CALL_MIX``
encodes those proportions; the player models sample from it so a simulated
trace reproduces the same histogram shape.
"""

from __future__ import annotations

import numpy as np

from repro.sim.syscalls import SyscallNr

#: Relative frequency of each call in an mplayer audio-playback trace.
#: Dominated by ioctl per Figure 4; proportions are approximate (read off
#: the published histogram) and normalised at import time.
MPLAYER_CALL_MIX: dict[SyscallNr, float] = {
    SyscallNr.IOCTL: 0.62,
    SyscallNr.GETTIMEOFDAY: 0.10,
    SyscallNr.CLOCK_GETTIME: 0.07,
    SyscallNr.READ: 0.08,
    SyscallNr.WRITE: 0.05,
    SyscallNr.SELECT: 0.03,
    SyscallNr.FUTEX: 0.02,
    SyscallNr.LSEEK: 0.02,
    SyscallNr.MUNMAP: 0.01,
}

_total = sum(MPLAYER_CALL_MIX.values())
MPLAYER_CALL_MIX = {k: v / _total for k, v in MPLAYER_CALL_MIX.items()}

_CALLS = list(MPLAYER_CALL_MIX.keys())
_WEIGHTS = np.array([MPLAYER_CALL_MIX[c] for c in _CALLS])

#: precomputed inverse-cdf table, mirroring what ``Generator.choice(p=...)``
#: builds per call (cumsum then normalise by the last entry).  Sampling
#: through it consumes exactly the same ``rng.random`` variates as
#: ``rng.choice(len(_CALLS), size=n, p=_WEIGHTS)``, so the draws are
#: bit-identical to the original implementation — just without numpy's
#: per-call validation of ``p``, which dominated the cost of short bursts.
_CDF = _WEIGHTS.cumsum()
_CDF /= _CDF[-1]


def sample_call(rng: np.random.Generator) -> SyscallNr:
    """Draw one system call according to the mplayer mix."""
    return _CALLS[int(_CDF.searchsorted(rng.random(), side="right"))]


def sample_burst(rng: np.random.Generator, n: int) -> list[SyscallNr]:
    """Draw a burst of ``n`` calls according to the mplayer mix."""
    idx = _CDF.searchsorted(rng.random(n), side="right")
    calls = _CALLS
    return [calls[i] for i in idx]
