"""A multi-threaded media player (the "vlc" validation case).

The paper validated period extraction "also on various other players …
including vlc".  Unlike the single-threaded mplayer models, this player
splits the pipeline into two threads, as real players do:

- a **decoder thread** that reads, decodes and hands frames over through
  a bounded queue;
- an **output thread** that waits for a decoded frame, blits it on the
  25 fps grid, and emits the ``frame_displayed`` label.

The threads communicate through the kernel's event mechanism (a condition
variable in real life).  Adopt the pair with
:meth:`repro.core.runtime.SelfTuningRuntime.adopt_group`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sim.cycles import GridIndex, ProgramCycleInfo, register_cycle_adapter
from repro.sim.instructions import Compute, Fire, Label, SleepUntil, Syscall, WaitEvent
from repro.sim.process import Program
from repro.sim.syscalls import SyscallNr
from repro.sim.time import MS, US


@dataclass
class VlcConfig:
    """Two-thread 25 fps playback parameters."""

    period: int = 40 * MS
    #: decode cost per frame (flatter than the mplayer GOP model: a
    #: pipelined decoder amortises I-frame peaks across the queue)
    decode_cost: int = 9 * MS
    decode_jitter: float = 0.12
    #: output-thread blit cost per frame
    blit_cost: int = 1 * MS
    #: decoded-frame queue capacity
    queue_depth: int = 4
    #: syscalls around each decoded frame (reads, seeks)
    decode_burst: int = 4
    #: syscalls around each blit (Xv/ALSA pokes)
    blit_burst: int = 3
    intra_burst_gap: int = 30 * US
    phase: int = 0
    seed: int = 9
    display_label: str = "frame_displayed"

    def __post_init__(self) -> None:
        if self.period <= 0 or self.queue_depth < 1:
            raise ValueError("period must be positive and queue_depth >= 1")

    @property
    def utilisation(self) -> float:
        """Combined CPU fraction of both threads."""
        return (self.decode_cost + self.blit_cost) / self.period


#: per-process player counter: event keys must be unique per player within
#: a kernel (``id(self)`` could collide after the allocator reuses memory,
#: cross-waking unrelated players) and stable across identical runs
_PLAYER_SEQ = itertools.count()


class VlcPlayer:
    """Decoder + output threads around a bounded frame queue."""

    def __init__(self, config: VlcConfig | None = None) -> None:
        self.config = config or VlcConfig()
        self.frames_decoded = 0
        self.frames_displayed = 0
        self._queue: deque[int] = deque()
        self._seq = next(_PLAYER_SEQ)

    @property
    def _frame_ready(self) -> str:
        return f"vlc:{self._seq}:frame"

    @property
    def _slot_free(self) -> str:
        return f"vlc:{self._seq}:slot"

    def decoder_program(self, n_frames: int | None = None) -> Program:
        """The decoder thread: fill the queue, block when it is full."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        grid = GridIndex()

        def body() -> Program:
            while n_frames is None or grid.index < n_frames:
                while len(self._queue) >= cfg.queue_depth:
                    yield Syscall(SyscallNr.FUTEX, block=WaitEvent(self._slot_free))
                for _ in range(cfg.decode_burst):
                    yield Compute(cfg.intra_burst_gap)
                    yield Syscall(SyscallNr.READ)
                if cfg.decode_jitter > 0:
                    cost = max(1, int(rng.normal(cfg.decode_cost, cfg.decode_jitter * cfg.decode_cost)))
                else:
                    cost = cfg.decode_cost
                yield Compute(cost)
                self._queue.append(grid.index)
                grid.index += 1
                self.frames_decoded += 1
                yield Fire(self._frame_ready)
            # guard against a lost wake-up racing the very last frame
            yield Fire(self._frame_ready)

        def _advance(frames: int) -> None:
            grid.advance(frames)
            self.frames_decoded += frames

        return register_cycle_adapter(
            body(),
            ProgramCycleInfo(
                # the decoder is paced by the output thread's grid through
                # the bounded queue, so it shares the playback period
                period=cfg.period,
                get_index=lambda: grid.index,
                advance=_advance,
                jobs_total=n_frames,
                rng=rng,
                extra_state=lambda: (len(self._queue),),
            ),
        )

    def output_program(self, n_frames: int | None = None) -> Program:
        """The output thread: blit one frame per 40 ms grid slot."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        grid = GridIndex()

        def body() -> Program:
            while n_frames is None or grid.index < n_frames:
                target = cfg.phase + grid.index * cfg.period
                yield Syscall(SyscallNr.CLOCK_NANOSLEEP, block=SleepUntil(target))
                while not self._queue:
                    yield Syscall(SyscallNr.FUTEX, block=WaitEvent(self._frame_ready))
                self._queue.popleft()
                yield Fire(self._slot_free)
                for _ in range(cfg.blit_burst):
                    yield Compute(cfg.intra_burst_gap)
                    yield Syscall(SyscallNr.IOCTL)
                yield Compute(cfg.blit_cost)
                yield Label(cfg.display_label, {"frame": grid.index})
                grid.index += 1
                self.frames_displayed += 1

        def _advance(frames: int) -> None:
            grid.advance(frames)
            self.frames_displayed += frames

        return register_cycle_adapter(
            body(),
            ProgramCycleInfo(
                period=cfg.period,
                get_index=lambda: grid.index,
                advance=_advance,
                jobs_total=n_frames,
                rng=rng,
            ),
        )
