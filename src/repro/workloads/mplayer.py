"""Generative mplayer models.

§4.2's founding assumption: "the real-time application generates periodic
bursts of system calls and ... the bursts are mostly concentrated at the
beginning and at the end of the period to perform the I/O operations."
Both models below produce exactly that structure:

- :class:`AudioPlayer` — mp3 playback.  Every ~30.77 ms (32.5 Hz, the
  frequency the paper's analyser detects for its mp3 runs) the player
  wakes, issues a burst of reads/ioctls, decodes the frame, issues a burst
  of ALSA ``ioctl`` writes, and blocks until the next period.

- :class:`VideoPlayer` — 25 fps playback.  Same shape at 40 ms, with the
  decode cost following a configurable MPEG GOP pattern (expensive
  I-frames, mid P-frames, cheap B-frames — §4.4's remark 1 discusses why
  this pattern stresses a purely average-based controller).  Each
  displayed frame emits a ``"frame_displayed"`` label the metrics layer
  timestamps into the paper's inter-frame-time series.

Programs self-pace against an absolute release grid, as a real player
does when it syncs to the audio clock: if decoding falls behind, the
player skips the sleep and decodes back-to-back until it catches up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cycles import GridIndex, ProgramCycleInfo, register_cycle_adapter
from repro.sim.instructions import Compute, Label, SleepUntil, Syscall
from repro.sim.process import Program
from repro.sim.syscalls import SyscallNr
from repro.sim.time import MS, US
from repro.workloads.mixes import MPLAYER_CALL_MIX, sample_burst

#: 32.5 Hz — the fundamental the paper repeatedly detects for mp3 playback
AUDIO_PERIOD_NS = round(1e9 / 32.5)

#: default MPEG group-of-pictures structure
DEFAULT_GOP = "IBBPBBPBBPBB"


@dataclass
class AudioPlayerConfig:
    """Parameters of the mp3-playback model.

    One mp3 frame (~30.77 ms) is decoded per period, but the decoded
    samples are pushed to ALSA in ``writes_per_period`` device-sized
    chunks (real players write one ALSA period at a time, a fraction of an
    mp3 frame).  The spectrum of the resulting event train therefore shows
    a strong line at ``writes_per_period × 32.5 Hz`` *in addition to* the
    32.5 Hz fundamental carried by the once-per-period input/decode burst
    — exactly the 32.5 / 65 / 97.5 Hz peak family of the paper's
    Figure 10.  When interference smears the decode burst, the fundamental
    collapses while the device-write grid survives, which is how the
    detector starts reporting integer multiples of the true frequency
    (Table 2, Figure 12).
    """

    period: int = AUDIO_PERIOD_NS
    #: mean decode cost per audio frame, ns
    decode_cost: int = 2 * MS
    #: multiplicative jitter on the decode cost (std dev as a fraction)
    decode_jitter: float = 0.15
    #: device writes per period (ALSA chunks per mp3 frame)
    writes_per_period: int = 3
    #: syscalls per device-write burst (ioctl-dominated)
    write_burst: int = 3
    #: syscalls in the once-per-period input/decode burst
    start_burst: int = 6
    #: user-mode compute between consecutive burst calls, ns
    intra_burst_gap: int = 40 * US
    #: release jitter (std dev, ns) of each wake-up instant
    release_jitter: int = 200 * US
    #: playback start offset (phase), ns
    phase: int = 0
    #: refill the input buffer every this many periods (0 disables);
    #: refills block on the :class:`repro.workloads.io.Disk` daemon, whose
    #: latency grows with best-effort contention
    refill_every: int = 8
    #: blocking reads per refill
    refill_reads: int = 2
    seed: int = 1

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.decode_cost < 0 or self.intra_burst_gap < 0:
            raise ValueError("costs must be non-negative")
        if self.writes_per_period < 1 or self.write_burst < 0:
            raise ValueError("writes_per_period must be >= 1 and write_burst >= 0")

    @property
    def frequency(self) -> float:
        """Fundamental frequency of the playback, Hz."""
        return 1e9 / self.period


class AudioPlayer:
    """mp3 playback: periodic syscall bursts around a small decode."""

    def __init__(self, config: AudioPlayerConfig | None = None) -> None:
        self.config = config or AudioPlayerConfig()
        self.frames_played = 0

    def program(self, n_frames: int | None = None, disk=None) -> Program:
        """Generator playing ``n_frames`` audio frames (forever if None).

        With ``disk`` (a :class:`repro.workloads.io.Disk`) the player
        periodically refills its input buffer through blocking reads whose
        latency depends on best-effort contention.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        slot_len = cfg.period // cfg.writes_per_period
        # instructions are immutable to the kernel, so the loop-invariant
        # ones are built once and yielded repeatedly (a Syscall per burst
        # call was the single biggest allocation source of the simulator)
        gap = Compute(cfg.intra_burst_gap)
        ioctl = Syscall(SyscallNr.IOCTL)
        burst_calls = {nr: Syscall(nr) for nr in MPLAYER_CALL_MIX}
        # release-grid position in a holder so fast-forward can relocate
        # the player; the grid index is re-read at every use
        grid = GridIndex()
        slot_pos = GridIndex()

        def body() -> Program:
            while n_frames is None or grid.index < n_frames:
                for s in range(cfg.writes_per_period):
                    slot_pos.index = s
                    slot = cfg.phase + grid.index * cfg.period + s * slot_len
                    if cfg.release_jitter > 0:
                        slot += int(abs(rng.normal(0, cfg.release_jitter)))
                    # block until the device has room for the next chunk
                    yield Syscall(SyscallNr.CLOCK_NANOSLEEP, block=SleepUntil(slot))
                    if s == 0:
                        if disk is not None and cfg.refill_every > 0 and grid.index % cfg.refill_every == 0:
                            for _ in range(cfg.refill_reads):
                                yield disk.read_instruction()
                        # once per period: fetch input, query clocks, decode
                        for nr in sample_burst(rng, cfg.start_burst):
                            yield gap
                            yield burst_calls[nr]
                        cost = max(
                            1, int(rng.normal(cfg.decode_cost, cfg.decode_jitter * cfg.decode_cost))
                        )
                        yield Compute(cost)
                    # push one device chunk (ioctl-heavy ALSA path)
                    for _ in range(cfg.write_burst):
                        yield gap
                        yield ioctl
                grid.index += 1
                self.frames_played += 1

        def _advance(frames: int) -> None:
            grid.advance(frames)
            self.frames_played += frames

        return register_cycle_adapter(
            body(),
            ProgramCycleInfo(
                # disk refills couple the player to best-effort contention,
                # which has no period: mark it un-extrapolatable
                period=cfg.period if disk is None else None,
                get_index=lambda: grid.index,
                advance=_advance,
                jobs_total=n_frames,
                rng=rng,
                extra_state=lambda: (slot_pos.index,),
            ),
        )


@dataclass
class VideoPlayerConfig:
    """Parameters of the 25 fps video-playback model."""

    #: frame period, ns (25 fps)
    period: int = 40 * MS
    #: decode cost of I / P / B frames, ns (≈22% mean utilisation, the
    #: scale of the paper's 800 MHz testbed playing a DVD-class movie)
    i_cost: int = 15 * MS
    p_cost: int = 11 * MS
    b_cost: int = 9 * MS
    #: multiplicative jitter on every frame's decode cost
    decode_jitter: float = 0.08
    #: GOP structure cycled over the stream
    gop: str = DEFAULT_GOP
    start_burst: int = 5
    end_burst: int = 4
    intra_burst_gap: int = 30 * US
    phase: int = 0
    seed: int = 2
    #: payload key emitted with each displayed frame
    display_label: str = "frame_displayed"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not self.gop or any(c not in "IPB" for c in self.gop):
            raise ValueError(f"gop must be a non-empty string over 'IPB', got {self.gop!r}")

    def frame_cost(self, index: int) -> int:
        """Nominal decode cost of frame ``index`` per the GOP pattern."""
        kind = self.gop[index % len(self.gop)]
        return {"I": self.i_cost, "P": self.p_cost, "B": self.b_cost}[kind]

    @property
    def mean_cost(self) -> float:
        """Average decode cost over one GOP, ns."""
        return sum(self.frame_cost(i) for i in range(len(self.gop))) / len(self.gop)

    @property
    def utilisation(self) -> float:
        """Average CPU fraction the playback demands."""
        return self.mean_cost / self.period


class VideoPlayer:
    """25 fps playback with GOP-structured decode costs and IFT labels."""

    def __init__(self, config: VideoPlayerConfig | None = None) -> None:
        self.config = config or VideoPlayerConfig()
        self.frames_played = 0

    def program(self, n_frames: int | None = None) -> Program:
        """Generator decoding and displaying video frames (forever if None)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        grid = GridIndex()
        gop_len = len(cfg.gop)

        def body() -> Program:
            while n_frames is None or grid.index < n_frames:
                target = cfg.phase + grid.index * cfg.period
                # sleep only if we are ahead of the playback grid
                now = yield Syscall(SyscallNr.CLOCK_NANOSLEEP, block=SleepUntil(target))
                for nr in sample_burst(rng, cfg.start_burst):
                    yield Compute(cfg.intra_burst_gap)
                    yield Syscall(nr)
                cost = cfg.frame_cost(grid.index)
                cost = max(1, int(rng.normal(cost, cfg.decode_jitter * cost)))
                yield Compute(cost)
                for nr in sample_burst(rng, cfg.end_burst):
                    yield Compute(cfg.intra_burst_gap)
                    yield Syscall(nr)
                # blit: the instant the user sees the frame
                yield Label(cfg.display_label, {"frame": grid.index})
                grid.index += 1
                self.frames_played += 1

        def _advance(frames: int) -> None:
            grid.advance(frames)
            self.frames_played += frames

        return register_cycle_adapter(
            body(),
            ProgramCycleInfo(
                # the cost pattern repeats per GOP, not per frame
                period=cfg.period * gop_len,
                get_index=lambda: grid.index,
                advance=_advance,
                jobs_total=n_frames,
                rng=rng,
                extra_state=lambda: (grid.index % gop_len,),
            ),
        )
