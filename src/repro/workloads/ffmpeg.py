"""Batch transcoder model (the Table 1 workload).

``ffmpeg`` transcoding a video is CPU-bound with a steady stream of small
file-I/O system calls (read the input, write the output, seek).  There is
no periodic structure and no sleeping: the run's wall-clock time on an
otherwise idle machine equals its CPU demand plus whatever the attached
tracer adds — which is exactly what Table 1 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.instructions import Compute, Syscall
from repro.sim.process import Program
from repro.sim.syscalls import SyscallNr
from repro.sim.time import MS


@dataclass
class FfmpegConfig:
    """Transcode parameters.

    Defaults give a ~21 s CPU-seconds run (7000 frames at 3 ms), matching
    the scale of the paper's baseline (21.09 s NOTRACE).
    """

    n_frames: int = 7000
    #: mean transcode cost per frame, ns
    frame_cost: int = 3 * MS
    #: multiplicative jitter on each frame's cost
    cost_jitter: float = 0.05
    #: syscalls issued per frame (reads + writes + seeks)
    calls_per_frame: int = 8
    seed: int = 3

    def __post_init__(self) -> None:
        if self.n_frames <= 0 or self.frame_cost <= 0:
            raise ValueError("n_frames and frame_cost must be positive")
        if self.calls_per_frame < 0:
            raise ValueError("calls_per_frame must be >= 0")

    @property
    def nominal_cpu(self) -> int:
        """Expected total CPU demand of the run, ns (compute only)."""
        return self.n_frames * self.frame_cost


_IO_CYCLE = [
    SyscallNr.READ,
    SyscallNr.READ,
    SyscallNr.LSEEK,
    SyscallNr.READ,
    SyscallNr.WRITE,
    SyscallNr.WRITE,
    SyscallNr.FSTAT,
    SyscallNr.WRITE,
]


def ffmpeg_transcode(config: FfmpegConfig | None = None) -> Program:
    """Program transcoding per ``config``; exits when the file is done."""
    cfg = config or FfmpegConfig()
    rng = np.random.default_rng(cfg.seed)

    def body() -> Program:
        for _frame in range(cfg.n_frames):
            cost = max(1, int(rng.normal(cfg.frame_cost, cfg.cost_jitter * cfg.frame_cost)))
            # interleave the I/O through the frame's compute
            calls = cfg.calls_per_frame
            slice_cost = cost // max(calls, 1)
            for i in range(calls):
                yield Compute(slice_cost)
                yield Syscall(_IO_CYCLE[i % len(_IO_CYCLE)])
            yield Compute(cost - slice_cost * max(calls, 1))

    return body()
