"""Generative models of the legacy applications used in the evaluation.

These stand in for the real binaries the paper traced:

- :mod:`.mplayer` — the media player: an audio decoder pulsing ALSA
  ``ioctl`` bursts at ~32.5 Hz (the mp3 experiments of Figures 6–12) and a
  25 fps video decoder with GOP-structured frame costs (Figures 13–14,
  Table 3);
- :mod:`.ffmpeg` — a batch transcoder, the workload of the tracer
  overhead study (Table 1);
- :mod:`.periodic` — synthetic periodic real-time tasks, the background
  load generator of Tables 2–3;
- :mod:`.mixes` — canonical system-call mix statistics (Figure 4).

All models draw their randomness from explicit seeds, so every experiment
repetition is reproducible.
"""

from repro.workloads.desktop import DesktopLoadConfig, desktop_load, desktop_suite
from repro.workloads.ffmpeg import FfmpegConfig, ffmpeg_transcode
from repro.workloads.io import Disk, DiskConfig
from repro.workloads.mixes import MPLAYER_CALL_MIX, sample_call
from repro.workloads.mplayer import AudioPlayer, AudioPlayerConfig, VideoPlayer, VideoPlayerConfig
from repro.workloads.periodic import PeriodicTaskConfig, periodic_task
from repro.workloads.vlc import VlcConfig, VlcPlayer

__all__ = [
    "AudioPlayer",
    "AudioPlayerConfig",
    "VideoPlayer",
    "VideoPlayerConfig",
    "FfmpegConfig",
    "ffmpeg_transcode",
    "PeriodicTaskConfig",
    "periodic_task",
    "MPLAYER_CALL_MIX",
    "sample_call",
    "DesktopLoadConfig",
    "desktop_load",
    "desktop_suite",
    "Disk",
    "DiskConfig",
    "VlcConfig",
    "VlcPlayer",
]
