"""Background desktop activity.

The paper's testbed is a desktop Ubuntu machine: besides mplayer and the
synthetic real-time load there is always an X server, a window manager,
the shell and the tracing tool competing in the best-effort class.  That
competition is what turns a modest reserved load into multi-millisecond
scheduling latency for a SCHED_OTHER media player — with an idle desktop
the player is scheduled almost immediately, while at 60% reserved load the
leftover CPU is contended and wake-up-to-run latencies stretch.

:func:`desktop_load` models that activity as a duty-cycled best-effort
spinner: ``chunk`` of CPU, then a sleep sized for the target utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.cycles import ProgramCycleInfo, register_cycle_adapter
from repro.sim.instructions import Compute, SleepFor, Syscall
from repro.sim.process import Program
from repro.sim.syscalls import SyscallNr
from repro.sim.time import MS


@dataclass
class DesktopLoadConfig:
    """Duty-cycled best-effort background activity."""

    #: fraction of the CPU the activity would use on an idle machine
    duty: float = 0.15
    #: median CPU burst length, ns
    chunk: int = 3 * MS
    #: lognormal sigma of the burst length: bursts are heavy-tailed
    #: (an X server mostly paints small damage regions but occasionally
    #: spends tens of milliseconds on a full redraw)
    burst_sigma: float = 1.2
    seed: int = 23

    def __post_init__(self) -> None:
        if not 0.0 < self.duty < 1.0:
            raise ValueError(f"duty must be in (0, 1), got {self.duty}")
        if self.chunk <= 0:
            raise ValueError("chunk must be positive")


def desktop_load(config: DesktopLoadConfig | None = None) -> Program:
    """Endless best-effort program alternating bursts and sleeps."""
    cfg = config or DesktopLoadConfig()
    rng = np.random.default_rng(cfg.seed)

    def body() -> Program:
        while True:
            burst = max(1, int(cfg.chunk * rng.lognormal(0.0, cfg.burst_sigma)))
            yield Compute(burst)
            # sleep sized from the burst actually drawn, preserving duty
            pause = max(1, int(burst * (1.0 - cfg.duty) / cfg.duty))
            yield Syscall(SyscallNr.SELECT, block=SleepFor(pause))

    # aperiodic by construction: registering period=None makes any mix
    # containing desktop interference ineligible for fast-forward
    return register_cycle_adapter(body(), ProgramCycleInfo(period=None, rng=rng))


def desktop_suite(seed: int = 23) -> list[DesktopLoadConfig]:
    """The canonical desktop mix: X server, window manager, shell, misc.

    Four duty-cycled best-effort processes totalling ~20% of an idle CPU.
    On an idle system they barely disturb a player; once reservations
    shrink the best-effort residual, queueing among them is what stretches
    a legacy player's scheduling latency to a sizeable fraction of its
    period — the degradation regime of Table 2 / Figure 12.
    """
    mix = [
        (0.06, 3 * MS),  # X server: larger rendering bursts
        (0.05, 2 * MS),  # window manager / compositor
        (0.04, int(1.5 * MS)),  # shell, terminal
        (0.05, int(2.5 * MS)),  # misc daemons
    ]
    return [
        DesktopLoadConfig(duty=duty, chunk=chunk, seed=seed + i)
        for i, (duty, chunk) in enumerate(mix)
    ]
