"""Block-I/O service with contention-dependent latency.

A media player periodically refills its input buffer through the kernel's
I/O path.  The request itself is cheap, but completion requires kernel
worker threads (block layer, filesystem journal, readahead) to get CPU —
threads that live in the best-effort class.  On an idle system a refill
completes in a few milliseconds; when reservations plus desktop activity
contend for the best-effort residual, the very same refill can stall the
player for several of its periods.

:class:`Disk` models that path: a best-effort daemon process services a
FIFO of requests, charging a fixed CPU cost per request.  Its *latency*
is therefore an emergent property of scheduler contention — exactly the
load-coupling that degrades a legacy player's event-train regularity in
the paper's Table 2 experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sim.instructions import Compute, Fire, Syscall, WaitEvent
from repro.sim.kernel import Kernel
from repro.sim.process import Process, Program
from repro.sim.syscalls import SyscallNr
from repro.sim.time import MS


@dataclass
class DiskConfig:
    """Service parameters of the I/O daemon."""

    #: CPU cost to service one request, ns
    service_cost: int = 4 * MS
    #: multiplicative jitter on the service cost
    jitter: float = 0.4
    seed: int = 31

    def __post_init__(self) -> None:
        if self.service_cost <= 0:
            raise ValueError("service_cost must be positive")


class Disk:
    """FIFO request queue drained by a best-effort daemon process."""

    _WORK_EVENT = "disk:work"

    def __init__(self, kernel: Kernel, config: DiskConfig | None = None, *, name: str = "kblockd") -> None:
        self.kernel = kernel
        self.config = config or DiskConfig()
        self._queue: deque[str] = deque()
        self._rng = np.random.default_rng(self.config.seed)
        self._seq = 0
        #: total requests completed
        self.completed = 0
        self.daemon: Process = kernel.spawn(name, self._daemon())

    def submit(self) -> str:
        """Enqueue a request; returns the completion event key.

        The caller should immediately block on ``WaitEvent(key)`` (see
        :meth:`read_instruction`); on a single CPU no other process can
        run in between, so the completion cannot be lost.
        """
        self._seq += 1
        key = f"disk:done:{self._seq}"
        self._queue.append(key)
        self.kernel.fire_event(self._WORK_EVENT)
        return key

    def read_instruction(self) -> Syscall:
        """A blocking ``read`` bound to a freshly submitted request."""
        return Syscall(SyscallNr.READ, block=WaitEvent(self.submit()))

    def _daemon(self) -> Program:
        cfg = self.config
        while True:
            if not self._queue:
                yield Syscall(SyscallNr.SELECT, block=WaitEvent(self._WORK_EVENT))
                continue
            key = self._queue.popleft()
            cost = max(1, int(self._rng.normal(cfg.service_cost, cfg.jitter * cfg.service_cost)))
            yield Compute(cost)
            self.completed += 1
            yield Fire(key)
