"""repro — reproduction of *Self-tuning Schedulers for Legacy Real-Time
Applications* (Cucinotta, Checconi, Abeni, Palopoli — EuroSys 2010).

The package rebuilds the paper's whole stack on a deterministic
discrete-event simulator:

- :mod:`repro.sim` — the kernel substrate (virtual time, processes,
  system calls);
- :mod:`repro.sched` — CBS/EDF reservations plus baseline schedulers;
- :mod:`repro.tracer` — the qtrace kernel tracer and the ptrace-based
  baselines;
- :mod:`repro.core` — the paper's contribution: the sparse-spectrum
  period analyser, the LFS++ feedback controller, the LFS baseline and
  the bandwidth supervisor;
- :mod:`repro.analysis` — hierarchical schedulability analysis (supply /
  demand bound functions, minimum-budget search);
- :mod:`repro.workloads` — generative models of the legacy applications
  (mplayer, ffmpeg, synthetic periodic load);
- :mod:`repro.metrics` — statistics and the inter-frame-time probe.

Quick start::

    from repro.core import SelfTuningRuntime
    from repro.workloads import VideoPlayer
    from repro.metrics import InterFrameProbe
    from repro.sim.time import SEC

    rt = SelfTuningRuntime()
    player = VideoPlayer()
    proc = rt.spawn("mplayer", player.program(n_frames=500))
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(rt.kernel)
    rt.adopt(proc)
    rt.run(25 * SEC)
    print(f"inter-frame time: {probe.mean_ms:.2f} +/- {probe.std_ms:.2f} ms")
"""

__version__ = "1.0.0"
