"""Parameterised fleet templates → lazy streams of concrete scenarios.

A template is a scenario document plus three extra tables:

- ``[template]`` — fleet shape: ``name``, ``nodes`` (scenarios per grid
  combination) and the master ``seed``;
- ``[grid]`` — value grids addressed by dotted paths (quoted TOML keys),
  e.g. ``"scheduler.policy" = ["hard", "soft"]`` or
  ``"workload.mp3.count" = [100, 150]``; the cross product of all grids,
  in file order, enumerates the combinations;
- ``[jitter]`` — per-node perturbations: each path gets a uniform draw
  in ``[0, amount)`` *added* to its base value, from a
  :class:`random.Random` seeded per node, so every node in a combination
  is slightly different yet the whole fleet is a pure function of the
  template seed.

:func:`expand_template` yields :class:`~repro.fleet.spec.ScenarioSpec`
objects lazily — a million-node fleet costs one node of memory at a
time.  Scenario ``i`` of combination ``c`` is named
``{name}/g{c:04d}/n{i:05d}``, carries ``group = "g{c:04d}"`` and seed
``template.seed + c * nodes + i``, so expansion is deterministic and
order-independent of the host.
"""

from __future__ import annotations

import copy
import itertools
import random
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.fleet._toml import load_toml
from repro.fleet.spec import ScenarioSpec, SpecError, _reject_unknown, scenario_from_dict

_TEMPLATE_TOP_KEYS = (
    "template",
    "scenario",
    "scheduler",
    "workload",
    "fault",
    "controller",
    "grid",
    "jitter",
)


@dataclass
class FleetTemplate:
    """A parsed template: the base document plus grid/jitter tables."""

    name: str
    nodes: int
    seed: int
    #: the scenario document the grid and jitter perturb
    base: dict[str, Any]
    #: dotted path -> list of values (cross product, file order)
    grid: dict[str, list[Any]]
    #: dotted path -> uniform jitter amount added per node
    jitter: dict[str, float]

    @property
    def combos(self) -> int:
        """Number of grid combinations (1 when the grid is empty)."""
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    @property
    def size(self) -> int:
        """Total number of scenarios the template expands to."""
        return self.combos * self.nodes


def parse_template(text: str) -> FleetTemplate:
    """Parse template TOML into a :class:`FleetTemplate` (strict keys)."""
    doc = load_toml(text)
    _reject_unknown(doc, _TEMPLATE_TOP_KEYS, "template document")
    meta = doc.get("template", {})
    if not isinstance(meta, dict):
        raise SpecError("template document: [template] must be a table")
    _reject_unknown(meta, ("name", "nodes", "seed"), "template")
    name = str(meta.get("name", ""))
    if not name:
        raise SpecError("template: 'name' must be a non-empty string")
    nodes = meta.get("nodes", 1)
    if isinstance(nodes, bool) or not isinstance(nodes, int) or nodes < 1:
        raise SpecError(f"template: 'nodes' must be an integer >= 1, got {nodes!r}")
    seed = meta.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise SpecError(f"template: 'seed' must be an integer, got {seed!r}")

    grid_raw = doc.get("grid", {})
    if not isinstance(grid_raw, dict):
        raise SpecError("template document: [grid] must be a table")
    grid: dict[str, list[Any]] = {}
    for path, values in grid_raw.items():
        if not isinstance(values, list) or not values:
            raise SpecError(f"grid: {path!r} must map to a non-empty array of values")
        grid[path] = values

    jitter_raw = doc.get("jitter", {})
    if not isinstance(jitter_raw, dict):
        raise SpecError("template document: [jitter] must be a table")
    jitter: dict[str, float] = {}
    for path, amount in jitter_raw.items():
        if isinstance(amount, bool) or not isinstance(amount, (int, float)) or amount <= 0:
            raise SpecError(f"jitter: {path!r} must map to a positive number, got {amount!r}")
        jitter[path] = float(amount)

    base_keys = ("scenario", "scheduler", "workload", "fault", "controller")
    base = {k: copy.deepcopy(v) for k, v in doc.items() if k in base_keys}
    # fail fast on unresolvable grid/jitter paths (full spec validation
    # happens per expanded scenario, once grid values are applied)
    for path in itertools.chain(grid, jitter):
        _resolve_tables(base, path)
    return FleetTemplate(name=name, nodes=nodes, seed=seed, base=base, grid=grid, jitter=jitter)


def load_template(path: str | Path) -> FleetTemplate:
    """Load a fleet template from a ``.toml`` file."""
    return parse_template(Path(path).read_text())


def _resolve_tables(doc: dict[str, Any], path: str) -> list[tuple[dict[str, Any], str]]:
    """Resolve a dotted path to ``(table, final_key)`` targets.

    ``workload.<name>.<field>`` addresses the ``[[workload]]`` entry with
    that name (``*`` addresses every entry); ``scenario.<field>``,
    ``scheduler.<field>`` and ``fault.<field>`` address those tables.
    """
    parts = path.split(".")
    head = parts[0]
    if head == "workload":
        if len(parts) != 3:
            raise SpecError(
                f"path {path!r}: workload paths take the form 'workload.<name>.<field>'"
            )
        entries = doc.get("workload", [])
        wanted, fld = parts[1], parts[2]
        matches = [w for w in entries if wanted in ("*", w.get("name"))]
        if not matches:
            known = sorted(str(w.get("name")) for w in entries)
            raise SpecError(f"path {path!r}: no workload named {wanted!r}; known: {known}")
        return [(w, fld) for w in matches]
    if head in ("scenario", "scheduler", "fault", "controller"):
        if len(parts) != 2:
            raise SpecError(f"path {path!r}: expected '{head}.<field>'")
        return [(doc.setdefault(head, {}), parts[1])]
    raise SpecError(
        f"path {path!r}: must start with 'scenario', 'scheduler', 'fault', "
        "'controller' or 'workload'"
    )


def _apply(doc: dict[str, Any], path: str, value: Any) -> None:
    """Set ``path`` to ``value`` in a (deep-copied) base document."""
    for table, key in _resolve_tables(doc, path):
        table[key] = value


def _apply_jitter(doc: dict[str, Any], path: str, amount: float, rng: random.Random) -> None:
    """Add a uniform ``[0, amount)`` draw to the value(s) at ``path``."""
    for table, key in _resolve_tables(doc, path):
        base = table.get(key, 0)
        if isinstance(base, bool) or not isinstance(base, (int, float)):
            raise SpecError(f"jitter: {path!r} addresses non-numeric value {base!r}")
        table[key] = base + rng.random() * amount


def expand_template(template: FleetTemplate) -> Iterator[ScenarioSpec]:
    """Lazily yield every concrete scenario of ``template``.

    Iteration order is the grid cross product in file order, then node
    index — the canonical fleet order every aggregate folds in.
    """
    grid_paths = list(template.grid)
    jitter_paths = sorted(template.jitter)
    value_lists = [template.grid[p] for p in grid_paths]
    for combo_idx, combo in enumerate(itertools.product(*value_lists)):
        group = f"g{combo_idx:04d}"
        for node in range(template.nodes):
            doc = copy.deepcopy(template.base)
            for path, value in zip(grid_paths, combo, strict=True):
                _apply(doc, path, value)
            seed = template.seed + combo_idx * template.nodes + node
            rng = random.Random(seed)
            for path in jitter_paths:
                _apply_jitter(doc, path, template.jitter[path], rng)
            doc.setdefault("scenario", {})["seed"] = seed
            doc["scenario"]["name"] = f"{template.name}/{group}/n{node:05d}"
            spec = scenario_from_dict(doc)
            yield ScenarioSpec(
                name=spec.name,
                seed=spec.seed,
                horizon_ns=spec.horizon_ns,
                miss_threshold_ns=spec.miss_threshold_ns,
                scheduler=spec.scheduler,
                workloads=spec.workloads,
                fault=spec.fault,
                controller=spec.controller,
                group=group,
            )
