"""Turn a :class:`~repro.fleet.spec.ScenarioSpec` into a kernel and run it.

This is the worker-side half of the fleet engine: :func:`build_sim`
constructs the kernel (workload programs, scheduler attachments, CBS
servers, fault wrapping) exactly as the hand-written scenario modules
do, and :func:`run_sim` drives it to the horizon — through
:func:`repro.sim.cycles.run_fast_forward` when asked, which silently
falls back to plain stepping for ineligible mixes — and collapses the
result into a :class:`~repro.fleet.summary.SimSummary`.

Instances of a ``count = N`` workload get staggered phases (instance
``i`` shifts by ``i · period / N``) and consecutive seeds, so a
node with hundreds of sessions is not phase-locked yet remains a pure
function of the spec.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.core.controller import FeedbackLaw, TaskControllerConfig
from repro.core.events import EventTriggerConfig
from repro.core.lfs import Lfs, LfsConfig
from repro.core.lfspp import LfsPlusPlus, LfsPlusPlusConfig
from repro.core.runtime import SelfTuningRuntime
from repro.faults import FaultPlan, WorkloadFaults, plan_from_name
from repro.fleet.spec import ControllerSpec, ScenarioSpec, SpecError, WorkloadSpec
from repro.fleet.summary import SimSummary, _SampleStats, summarise_kernel
from repro.sched import (
    CbsScheduler,
    EdfScheduler,
    FixedPriorityScheduler,
    RoundRobinScheduler,
    ServerParams,
    StrideScheduler,
)
from repro.sched.base import Scheduler
from repro.sim.cycles import run_fast_forward
from repro.sim.kernel import Kernel
from repro.sim.process import Program
from repro.workloads import (
    AudioPlayer,
    AudioPlayerConfig,
    PeriodicTaskConfig,
    VideoPlayer,
    VideoPlayerConfig,
    VlcConfig,
    VlcPlayer,
    periodic_task,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Process


def _instance_programs(w: WorkloadSpec, index: int) -> list[tuple[str, Program]]:
    """The named program(s) of instance ``index`` of workload ``w``.

    vlc contributes two programs (decoder + output threads); every other
    kind contributes one.
    """
    seed = w.seed + index
    suffix = f"{w.name}{index}" if w.count > 1 else w.name
    jobs = w.jobs or None
    period = _effective_period(w)
    phase = w.phase_ns + (index * period) // w.count
    if w.kind == "periodic":
        cfg = PeriodicTaskConfig(
            cost=w.cost_ns, period=w.period_ns, cost_jitter=w.jitter, phase=phase, seed=seed
        )
        return [(suffix, periodic_task(cfg, n_jobs=jobs))]
    if w.kind == "mplayer":
        kwargs: dict[str, object] = {"seed": seed, "decode_jitter": w.jitter, "phase": phase}
        if w.period_ns:
            kwargs["period"] = w.period_ns
        if w.cost_ns:
            kwargs["decode_cost"] = w.cost_ns
        audio_cfg = AudioPlayerConfig(**kwargs)  # type: ignore[arg-type]
        return [(suffix, AudioPlayer(audio_cfg).program(jobs))]
    if w.kind == "video":
        vkwargs: dict[str, object] = {"seed": seed, "decode_jitter": w.jitter}
        if w.period_ns:
            vkwargs["period"] = w.period_ns
        if w.cost_ns:
            # keep the GOP's 15:11:9 I/P/B cost ratio, scaled to cost_ns
            vkwargs["i_cost"] = w.cost_ns
            vkwargs["p_cost"] = (w.cost_ns * 11) // 15
            vkwargs["b_cost"] = (w.cost_ns * 9) // 15
        video_cfg = VideoPlayerConfig(**vkwargs)  # type: ignore[arg-type]
        return [(suffix, VideoPlayer(video_cfg).program(jobs))]
    if w.kind == "vlc":
        ckwargs: dict[str, object] = {"seed": seed, "decode_jitter": w.jitter, "phase": phase}
        if w.period_ns:
            ckwargs["period"] = w.period_ns
        if w.cost_ns:
            ckwargs["decode_cost"] = w.cost_ns
        vlc_cfg = VlcConfig(**ckwargs)  # type: ignore[arg-type]
        player = VlcPlayer(vlc_cfg)
        return [
            (f"{suffix}:dec", player.decoder_program(jobs)),
            (f"{suffix}:out", player.output_program(jobs)),
        ]
    raise SpecError(f"workload {w.name!r}: unknown kind {w.kind!r}")  # pragma: no cover


@lru_cache(maxsize=256)
def _resolved_plan(name: str, scale: float) -> FaultPlan:
    """Per-worker construction memo for named fault plans.

    A fleet typically reuses a handful of (plan, scale) points across
    thousands of sims; :class:`~repro.faults.FaultPlan` is frozen, so
    sharing one instance across sims in a worker is safe.
    """
    return plan_from_name(name, scale=scale)


def _effective_period(w: WorkloadSpec) -> int:
    """The workload's activation period for scheduler-attachment defaults."""
    if w.period_ns:
        return w.period_ns
    if w.kind == "mplayer":
        return AudioPlayerConfig().period
    if w.kind in ("video", "vlc"):
        return VideoPlayerConfig().period
    return 0  # pragma: no cover - periodic validates period_ns > 0


def _make_feedback(c: ControllerSpec, period_ns: int) -> FeedbackLaw:
    """Instantiate the spec's feedback law, pinned to ``period_ns``.

    With rate detection off (the fleet default) the law never sees a
    period estimate, so the reservation period must be carried by the
    law's own default — ``period_hint`` alone only seeds the adoption
    request.
    """
    if c.law == "lfs":
        return Lfs(LfsConfig(period=period_ns, max_bandwidth=c.u_lub))
    return LfsPlusPlus(
        LfsPlusPlusConfig(
            spread=c.spread,
            predictor_window=c.window,
            quantile=c.quantile,
            default_period=period_ns,
            exhaustion_rate_threshold=(c.boost_threshold if c.boost_threshold >= 0 else None),
            exhaustion_boost=c.boost,
        )
    )


def _build_adaptive(spec: ScenarioSpec) -> Kernel:
    """Construct the closed-loop kernel for a spec with a ``[controller]``.

    Adaptive workloads are adopted into :class:`SelfTuningRuntime` — one
    CBS server + task controller per instance (vlc instances share one
    server across their two threads, per §3.2's multi-task reservation) —
    while fixed-``budget_ms`` workloads become static reservations
    admitted through the same supervisor.  Budget-less, non-adaptive
    workloads stay best-effort.
    """
    c = spec.controller
    assert c is not None
    runtime = SelfTuningRuntime(u_lub=c.u_lub, reservation_policy=spec.scheduler.policy)
    kernel = runtime.kernel

    fault = spec.fault
    injector: WorkloadFaults | None = None
    if not fault.is_zero:
        plan = _resolved_plan(fault.plan, fault.scale)
        if fault.kind == "overload":
            injector = WorkloadFaults(overload=plan, seed=fault.seed)
        else:
            injector = WorkloadFaults(mode_switch=plan, seed=fault.seed)
        kernel.fault_plan = plan

    controller_config = TaskControllerConfig(
        sampling_period=c.sampling_period_ns,
        use_period_estimate=c.rate_detection,
        trigger=c.trigger,
        events=(
            EventTriggerConfig(
                burst_threshold=c.burst_threshold,
                burst_window=c.burst_window_ns,
                refractory=c.refractory_ns,
                fallback_floor=c.fallback_floor_ns,
                # the deadline-miss trigger shares the scenario's miss
                # definition: one threshold for metrics and control alike
                miss_threshold=spec.miss_threshold_ns,
            )
            if c.trigger == "event"
            else None
        ),
    )
    for w in spec.workloads:
        period = _effective_period(w)
        for index in range(w.count):
            procs: list[Process] = []
            for name, program in _instance_programs(w, index):
                if injector is not None and w.name.startswith(fault.target):
                    program = injector.wrap(program)
                procs.append(kernel.spawn(name, program))
            if w.adaptive:
                if len(procs) > 1:
                    runtime.adopt_group(
                        procs,
                        name=f"grp-{procs[0].name}",
                        feedback=_make_feedback(c, period),
                        controller_config=controller_config,
                        period_hint=period,
                    )
                else:
                    runtime.adopt(
                        procs[0],
                        feedback=_make_feedback(c, period),
                        controller_config=controller_config,
                        period_hint=period,
                    )
            elif w.budget_ns:
                for proc in procs:
                    runtime.add_static_reservation(
                        proc, w.budget_ns, w.server_period_ns or period
                    )
    for pid in sorted(kernel.processes):
        kernel.processes[pid].sched_latency = _SampleStats(spec.miss_threshold_ns)
    return kernel


def build_sim(spec: ScenarioSpec) -> Kernel:
    """Construct the kernel for ``spec`` (not yet run)."""
    if spec.controller is not None:
        return _build_adaptive(spec)
    scheduler: Scheduler
    kind = spec.scheduler.kind
    if kind == "cbs":
        scheduler = CbsScheduler()
    elif kind == "edf":
        scheduler = EdfScheduler()
    elif kind == "fp":
        scheduler = FixedPriorityScheduler()
    elif kind == "stride":
        scheduler = StrideScheduler()
    else:
        scheduler = RoundRobinScheduler()
    kernel = Kernel(scheduler)

    fault = spec.fault
    injector: WorkloadFaults | None = None
    if not fault.is_zero:
        plan = _resolved_plan(fault.plan, fault.scale)
        if fault.kind == "overload":
            injector = WorkloadFaults(overload=plan, seed=fault.seed)
        else:
            injector = WorkloadFaults(mode_switch=plan, seed=fault.seed)
        # any non-zero plan disarms fast-forward for the whole kernel
        kernel.fault_plan = plan

    for w_index, w in enumerate(spec.workloads):
        procs: list[Process] = []
        for index in range(w.count):
            for name, program in _instance_programs(w, index):
                if injector is not None and w.name.startswith(fault.target):
                    program = injector.wrap(program)
                procs.append(kernel.spawn(name, program))
        _attach(scheduler, spec, w, w_index, procs)
    for pid in sorted(kernel.processes):
        kernel.processes[pid].sched_latency = _SampleStats(spec.miss_threshold_ns)
    return kernel


def _attach(
    scheduler: object, spec: ScenarioSpec, w: WorkloadSpec, w_index: int, procs: list[Process]
) -> None:
    """Apply the spec's scheduler-attachment fields to one workload."""
    kind = spec.scheduler.kind
    if kind == "cbs":
        assert isinstance(scheduler, CbsScheduler)
        if w.budget_ns:
            params = ServerParams(
                budget=w.budget_ns,
                period=w.server_period_ns or _effective_period(w),
                policy=spec.scheduler.policy,
            )
            server = scheduler.create_server(params, w.name)
            for proc in procs:
                scheduler.attach(proc, server)
        # budget-less workloads stay in the best-effort background class
    elif kind == "edf":
        assert isinstance(scheduler, EdfScheduler)
        deadline = w.deadline_ns or _effective_period(w)
        for proc in procs:
            scheduler.attach(proc, deadline)
    elif kind == "fp":
        assert isinstance(scheduler, FixedPriorityScheduler)
        priority = w.priority if w.priority >= 0 else w_index
        for proc in procs:
            scheduler.attach(proc, priority)
    elif kind == "stride":
        assert isinstance(scheduler, StrideScheduler)
        for proc in procs:
            scheduler.attach(proc, w.tickets)
    # rr needs no attachment


def run_sim(spec: ScenarioSpec, *, fast_forward: bool = True) -> SimSummary:
    """Build, run to the horizon and summarise one scenario.

    ``fast_forward`` routes through :func:`run_fast_forward`, which is
    bit-identical to plain stepping and falls back by itself when the
    mix is ineligible (jittered costs, players with RNG state, armed
    fault plans).
    """
    kernel = build_sim(spec)
    horizon = spec.horizon_ns
    if spec.controller is not None:
        # the closed loop re-tunes (Q, T) every sampling period, so the
        # schedule never settles into a repeatable cycle — always step
        fast_forward = False
    if fast_forward:
        report = run_fast_forward(kernel, horizon)
    else:
        report = None
        kernel.run(horizon)
    return summarise_kernel(kernel, spec, report)
