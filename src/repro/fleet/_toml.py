"""Minimal TOML loading for the fleet scenario DSL.

Python 3.11+ ships :mod:`tomllib`; the CI matrix still runs 3.10, and the
project deliberately takes no third-party dependencies, so this module
carries a small fallback parser for the subset of TOML the scenario specs
use: tables, arrays of tables, bare/quoted (possibly dotted) keys, basic
and literal strings, integers, floats, booleans, arrays and inline
tables.  :func:`load_toml` prefers the stdlib parser when present, so the
fallback only ever runs on 3.10 — but it is tested against ``tomllib``
output on newer interpreters to stay honest.
"""

from __future__ import annotations

from typing import Any

try:  # pragma: no cover - presence depends on the interpreter version
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - Python 3.10
    _tomllib = None


class TomlError(ValueError):
    """A malformed document (either parser), with a line number."""


def load_toml(text: str, *, force_fallback: bool = False) -> dict[str, Any]:
    """Parse ``text`` into a plain dict (stdlib ``tomllib`` when available).

    ``force_fallback`` exercises the bundled subset parser regardless of
    the interpreter, which is how the test suite proves the two agree.
    """
    if _tomllib is not None and not force_fallback:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise TomlError(str(exc)) from None
    return _parse_document(text)


# ----------------------------------------------------------------------
# fallback subset parser
# ----------------------------------------------------------------------
def _parse_document(text: str) -> dict[str, Any]:
    root: dict[str, Any] = {}
    current = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip_comment(lines[i])
        i += 1
        if not line:
            continue
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise TomlError(f"line {i}: malformed array-of-tables header {line!r}")
            keys = _split_header(line[2:-2], i)
            parent = _descend(root, keys[:-1], i)
            arr = parent.setdefault(keys[-1], [])
            if not isinstance(arr, list):
                raise TomlError(f"line {i}: {'.'.join(keys)!r} is not an array of tables")
            entry: dict[str, Any] = {}
            arr.append(entry)
            current = entry
        elif line.startswith("["):
            if not line.endswith("]"):
                raise TomlError(f"line {i}: malformed table header {line!r}")
            keys = _split_header(line[1:-1], i)
            current = _descend(root, keys, i)
        else:
            # key = value; arrays may continue over following lines
            if "=" not in line:
                raise TomlError(f"line {i}: expected 'key = value', got {line!r}")
            key_part, _, value_part = line.partition("=")
            keys = _split_header(key_part.strip(), i)
            value_src = value_part.strip()
            while not _value_complete(value_src):
                if i >= len(lines):
                    raise TomlError(f"line {i}: unterminated value {value_src!r}")
                value_src += " " + _strip_comment(lines[i])
                i += 1
            value, rest = _parse_value(value_src, i)
            if rest.strip():
                raise TomlError(f"line {i}: trailing characters {rest.strip()!r}")
            target = _descend(current, keys[:-1], i)
            if keys[-1] in target:
                raise TomlError(f"line {i}: duplicate key {keys[-1]!r}")
            target[keys[-1]] = value
    return root


def _strip_comment(line: str) -> str:
    out: list[str] = []
    quote: str | None = None
    j = 0
    while j < len(line):
        ch = line[j]
        if quote is not None:
            out.append(ch)
            if ch == "\\" and quote == '"' and j + 1 < len(line):
                out.append(line[j + 1])
                j += 2
                continue
            if ch == quote:
                quote = None
        elif ch in ('"', "'"):
            quote = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
        j += 1
    return "".join(out).strip()


def _split_header(raw: str, lineno: int) -> list[str]:
    """Split a (possibly dotted) key: quoted segments keep their dots."""
    keys: list[str] = []
    j = 0
    raw = raw.strip()
    while j < len(raw):
        ch = raw[j]
        if ch in ('"', "'"):
            end = raw.find(ch, j + 1)
            if end < 0:
                raise TomlError(f"line {lineno}: unterminated quoted key in {raw!r}")
            keys.append(raw[j + 1 : end])
            j = end + 1
        else:
            end = raw.find(".", j)
            if end < 0:
                end = len(raw)
            part = raw[j:end].strip()
            if not part:
                raise TomlError(f"line {lineno}: empty key segment in {raw!r}")
            keys.append(part)
            j = end
        if j < len(raw):
            if raw[j].strip() and raw[j] != ".":
                raise TomlError(f"line {lineno}: malformed key {raw!r}")
            j += 1
            while j < len(raw) and raw[j] == " ":
                j += 1
    if not keys:
        raise TomlError(f"line {lineno}: empty key in {raw!r}")
    return keys


def _descend(root: dict[str, Any], keys: list[str], lineno: int) -> dict[str, Any]:
    node: Any = root
    for key in keys:
        if isinstance(node, list):
            node = node[-1]
        nxt = node.setdefault(key, {})
        if isinstance(nxt, list):
            nxt = nxt[-1]
        if not isinstance(nxt, dict):
            raise TomlError(f"line {lineno}: key {key!r} is not a table")
        node = nxt
    if isinstance(node, list):
        node = node[-1]
    return node


def _value_complete(src: str) -> bool:
    depth = 0
    quote: str | None = None
    j = 0
    while j < len(src):
        ch = src[j]
        if quote is not None:
            if ch == "\\" and quote == '"':
                j += 2
                continue
            if ch == quote:
                quote = None
        elif ch in ('"', "'"):
            quote = ch
        elif ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        j += 1
    return depth <= 0 and quote is None and bool(src)


def _parse_value(src: str, lineno: int) -> tuple[Any, str]:
    src = src.lstrip()
    if not src:
        raise TomlError(f"line {lineno}: missing value")
    ch = src[0]
    if ch == '"':
        return _parse_basic_string(src, lineno)
    if ch == "'":
        end = src.find("'", 1)
        if end < 0:
            raise TomlError(f"line {lineno}: unterminated literal string")
        return src[1:end], src[end + 1 :]
    if ch == "[":
        return _parse_array(src, lineno)
    if ch == "{":
        return _parse_inline_table(src, lineno)
    # bare scalar: read to the next delimiter
    j = 0
    while j < len(src) and src[j] not in ",]}":
        j += 1
    token, rest = src[:j].strip(), src[j:]
    return _parse_scalar(token, lineno), rest


_ESCAPES = {'"': '"', "\\": "\\", "n": "\n", "t": "\t", "r": "\r", "f": "\f", "b": "\b"}


def _parse_basic_string(src: str, lineno: int) -> tuple[str, str]:
    out: list[str] = []
    j = 1
    while j < len(src):
        ch = src[j]
        if ch == "\\":
            if j + 1 >= len(src):
                raise TomlError(f"line {lineno}: dangling escape")
            esc = src[j + 1]
            if esc not in _ESCAPES:
                raise TomlError(f"line {lineno}: unsupported escape \\{esc}")
            out.append(_ESCAPES[esc])
            j += 2
            continue
        if ch == '"':
            return "".join(out), src[j + 1 :]
        out.append(ch)
        j += 1
    raise TomlError(f"line {lineno}: unterminated string")


def _parse_array(src: str, lineno: int) -> tuple[list[Any], str]:
    items: list[Any] = []
    rest = src[1:].lstrip()
    while True:
        if not rest:
            raise TomlError(f"line {lineno}: unterminated array")
        if rest[0] == "]":
            return items, rest[1:]
        value, rest = _parse_value(rest, lineno)
        items.append(value)
        rest = rest.lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif not rest.startswith("]"):
            raise TomlError(f"line {lineno}: expected ',' or ']' in array")


def _parse_inline_table(src: str, lineno: int) -> tuple[dict[str, Any], str]:
    table: dict[str, Any] = {}
    rest = src[1:].lstrip()
    while True:
        if not rest:
            raise TomlError(f"line {lineno}: unterminated inline table")
        if rest[0] == "}":
            return table, rest[1:]
        if "=" not in rest:
            raise TomlError(f"line {lineno}: expected 'key = value' in inline table")
        key_part, _, rest = rest.partition("=")
        keys = _split_header(key_part.strip(), lineno)
        value, rest = _parse_value(rest.lstrip(), lineno)
        target = _descend(table, keys[:-1], lineno)
        target[keys[-1]] = value
        rest = rest.lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif not rest.startswith("}"):
            raise TomlError(f"line {lineno}: expected ',' or '}}' in inline table")


def _parse_scalar(token: str, lineno: int) -> Any:
    if token == "true":
        return True
    if token == "false":
        return False
    cleaned = token.replace("_", "")
    try:
        return int(cleaned, 0) if cleaned.lower().startswith(("0x", "0o", "0b")) else int(cleaned)
    except ValueError:
        pass
    try:
        return float(cleaned)
    except ValueError:
        pass
    raise TomlError(f"line {lineno}: unsupported value {token!r}")
