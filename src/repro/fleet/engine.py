"""The batched multi-sim engine: chunked dispatch + streaming fold.

Naive fleet execution submits one pool task per sim; for the cheap,
fast-forwardable units a fleet is made of, pickling and task dispatch
then dominate wall-clock.  This engine packs ``chunksize`` sims per
task, warms each worker once (imports and construction memos — see
:mod:`repro.fleet.build`), and keeps at most ``jobs × 2`` chunks in
flight, so the parent folds :class:`~repro.fleet.summary.SimSummary`
objects as they arrive and its memory stays flat however large the
fleet is.

Determinism: chunks are submitted, completed-waited and folded strictly
in fleet order (``ProcessPoolExecutor`` futures are drained FIFO), so
``jobs=N`` produces a byte-identical aggregate — and JSONL stream — to
``jobs=1``.  The engine itself never reads the host clock; throughput
timing belongs to its callers (the CLI and the ``fleet`` micro
benchmark).
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from collections.abc import Iterable, Iterator
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from repro.fleet.build import run_sim
from repro.fleet.spec import ScenarioSpec
from repro.fleet.summary import FleetAggregate, SimSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry

#: outstanding chunks per worker: enough to keep every worker busy while
#: the parent folds, small enough to bound parent memory at
#: ``O(jobs × chunksize)`` summaries
_WINDOW_PER_JOB = 2


def _warm_worker() -> None:
    """Pool initializer: pay the heavy imports once per worker process."""
    import repro.fleet.build  # noqa: F401  (pulls sim, sched, workloads, numpy)


# repro: allow[CC001]  -- reaches the idempotent cycle-adapter registry; deterministic per process
def _run_chunk(specs: list[ScenarioSpec], fast_forward: bool) -> list[SimSummary]:
    """Worker-side body: run one chunk of sims, return compact summaries."""
    return [run_sim(spec, fast_forward=fast_forward) for spec in specs]


def _chunked(specs: Iterable[ScenarioSpec], size: int) -> Iterator[list[ScenarioSpec]]:
    """Split a (possibly lazy) spec stream into lists of ``size``."""
    it = iter(specs)
    while True:
        chunk = list(itertools.islice(it, size))
        if not chunk:
            return
        yield chunk


def run_fleet(
    specs: Iterable[ScenarioSpec],
    *,
    jobs: int = 1,
    chunksize: int = 16,
    fast_forward: bool = True,
    stream: str | Path | IO[str] | None = None,
    telemetry: Telemetry | None = None,
    mp_context: Any = None,
) -> FleetAggregate:
    """Run every scenario in ``specs`` and fold the summaries.

    ``specs`` may be a lazy generator (template expansion) — it is
    consumed chunk by chunk, never materialised.  ``stream`` (a path or
    text file object) receives one strict-JSON line per finished sim, in
    fleet order.  ``telemetry`` gets one span per folded chunk on the
    ``fleet`` track, spanning the cumulative simulated-ns interval the
    chunk contributed.  ``jobs`` / ``chunksize`` / ``mp_context`` choose
    the execution strategy and cannot change the result.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    aggregate = FleetAggregate()
    out: IO[str] | None
    close_after = False
    if stream is None:
        out = None
    elif hasattr(stream, "write"):
        out = stream  # type: ignore[assignment]
    else:
        out = open(stream, "w", encoding="utf-8")
        close_after = True
    chunk_idx = 0

    def _fold(summaries: list[SimSummary]) -> None:
        nonlocal chunk_idx
        span_start = aggregate.simulated_ns
        for summary in summaries:
            aggregate.fold(summary)
            if out is not None:
                line = json.dumps(summary.to_jsonable(), sort_keys=True, separators=(",", ":"))
                out.write(line + "\n")
        if telemetry is not None:
            telemetry.span(
                "fleet",
                f"chunk{chunk_idx}",
                "fleet",
                span_start,
                aggregate.simulated_ns,
                sims=len(summaries),
                misses=aggregate.misses,
            )
        chunk_idx += 1

    try:
        chunks = _chunked(specs, chunksize)
        if jobs <= 1:
            for chunk in chunks:
                _fold(_run_chunk(chunk, fast_forward))
        else:
            window = jobs * _WINDOW_PER_JOB
            with ProcessPoolExecutor(
                max_workers=jobs, mp_context=mp_context, initializer=_warm_worker
            ) as executor:
                pending: deque[Future[list[SimSummary]]] = deque()
                for chunk in chunks:
                    pending.append(executor.submit(_run_chunk, chunk, fast_forward))
                    if len(pending) >= window:
                        _fold(pending.popleft().result())
                while pending:
                    _fold(pending.popleft().result())
    finally:
        if out is not None:
            out.flush()
            if close_after:
                out.close()
    return aggregate
