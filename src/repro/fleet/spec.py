"""Scenario spec DSL: frozen dataclasses loadable from TOML.

A :class:`ScenarioSpec` is a complete, self-contained description of one
simulation — workload mix, scheduler (with CBS reservation parameters),
fault plan, horizon and seed — expressed entirely in integers (ns) and
small strings so it hashes stably, pickles cheaply to worker processes
and round-trips through JSON byte-identically.  The TOML surface uses
milliseconds (floats allowed) for every duration; parsing converts to
integer nanoseconds once, so nothing downstream ever touches float time.

Validation is strict: unknown keys, unknown scheduler/workload kinds and
out-of-range values all raise :class:`SpecError` naming the offending
key and the accepted alternatives.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.fleet._toml import load_toml
from repro.sim.time import MS

#: scheduler kinds the DSL accepts (see :mod:`repro.sched`)
SCHEDULER_KINDS = ("cbs", "edf", "fp", "stride", "rr")

#: workload kinds the DSL accepts (see :mod:`repro.workloads`)
WORKLOAD_KINDS = ("periodic", "mplayer", "video", "vlc")

#: fault kinds the DSL accepts (both wrap workload programs)
FAULT_KINDS = ("overload", "mode-switch")


class SpecError(ValueError):
    """A scenario document that cannot be turned into a valid spec."""


def _ms_to_ns(value: Any, key: str, where: str) -> int:
    """Convert a TOML millisecond value (int or float) to integer ns."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{where}: {key!r} must be a number of milliseconds, got {value!r}")
    if value < 0:
        raise SpecError(f"{where}: {key!r} must be >= 0 ms, got {value!r}")
    return round(value * MS)


def _require(table: dict[str, Any], key: str, where: str) -> Any:
    if key not in table:
        raise SpecError(f"{where}: missing required key {key!r}")
    return table[key]


def _reject_unknown(table: dict[str, Any], allowed: tuple[str, ...], where: str) -> None:
    unknown = sorted(set(table) - set(allowed))
    if unknown:
        raise SpecError(
            f"{where}: unknown key(s) {unknown}; accepted keys are {sorted(allowed)}"
        )


def _int_field(table: dict[str, Any], key: str, default: int, where: str) -> int:
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{where}: {key!r} must be an integer, got {value!r}")
    return value


@dataclass(frozen=True)
class SchedulerSpec:
    """Which scheduler dispatches the node, plus CBS exhaustion policy."""

    #: one of :data:`SCHEDULER_KINDS`
    kind: str = "cbs"
    #: CBS exhaustion policy ("hard" / "soft" / "background"); cbs only
    policy: str = "hard"

    def __post_init__(self) -> None:
        """Validate the kind/policy combination."""
        if self.kind not in SCHEDULER_KINDS:
            raise SpecError(
                f"scheduler: unknown kind {self.kind!r}; accepted kinds are "
                f"{list(SCHEDULER_KINDS)}"
            )
        if self.policy not in ("hard", "soft", "background"):
            raise SpecError(
                f"scheduler: unknown policy {self.policy!r}; accepted policies are "
                "['hard', 'soft', 'background']"
            )

    @staticmethod
    def from_dict(table: dict[str, Any]) -> SchedulerSpec:
        """Build from a parsed ``[scheduler]`` table."""
        _reject_unknown(table, ("kind", "policy"), "scheduler")
        return SchedulerSpec(
            kind=table.get("kind", "cbs"), policy=table.get("policy", "hard")
        )

    def to_jsonable(self) -> dict[str, Any]:
        """Stable JSON form (feeds :meth:`ScenarioSpec.spec_hash`)."""
        return {"kind": self.kind, "policy": self.policy}


_WORKLOAD_KEYS = (
    "kind",
    "name",
    "count",
    "seed",
    "jobs",
    "period_ms",
    "cost_ms",
    "jitter",
    "phase_ms",
    "budget_ms",
    "server_period_ms",
    "deadline_ms",
    "priority",
    "tickets",
    "adaptive",
)


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload entry: ``count`` seeded instances of a generative model.

    All durations are integer ns (the TOML surface takes milliseconds).
    Scheduler-attachment fields are interpreted by the active scheduler
    kind: ``budget_ns``/``server_period_ns`` size a CBS server shared by
    every instance (``budget_ns == 0`` leaves the instances best-effort),
    ``deadline_ns`` feeds EDF (0 = the workload period), ``priority``
    feeds fixed-priority (-1 = declaration order) and ``tickets`` feeds
    the stride scheduler.
    """

    kind: str
    name: str
    count: int = 1
    seed: int = 0
    #: periodic jobs / player frames per instance; 0 = run the whole horizon
    jobs: int = 0
    period_ns: int = 0
    cost_ns: int = 0
    #: relative cost jitter in [0, 1) (0 keeps periodic tasks fast-forwardable)
    jitter: float = 0.0
    phase_ns: int = 0
    budget_ns: int = 0
    server_period_ns: int = 0
    deadline_ns: int = 0
    priority: int = -1
    tickets: int = 1
    #: put every instance under an adaptive reservation driven by the
    #: scenario's [controller] table (requires one; cbs only)
    adaptive: bool = False

    def __post_init__(self) -> None:
        """Validate kind, count and the jitter range."""
        where = f"workload {self.name!r}"
        if self.kind not in WORKLOAD_KINDS:
            raise SpecError(
                f"{where}: unknown kind {self.kind!r}; accepted kinds are "
                f"{list(WORKLOAD_KINDS)}"
            )
        if not self.name:
            raise SpecError("workload: 'name' must be a non-empty string")
        if self.count < 1:
            raise SpecError(f"{where}: 'count' must be >= 1, got {self.count}")
        if not 0.0 <= self.jitter < 1.0:
            raise SpecError(f"{where}: 'jitter' must be in [0, 1), got {self.jitter}")
        if self.kind == "periodic" and self.cost_ns <= 0:
            raise SpecError(f"{where}: periodic workloads need 'cost_ms' > 0")
        if self.kind == "periodic" and self.period_ns <= 0:
            raise SpecError(f"{where}: periodic workloads need 'period_ms' > 0")

    @staticmethod
    def from_dict(table: dict[str, Any]) -> WorkloadSpec:
        """Build from one parsed ``[[workload]]`` entry."""
        name = str(table.get("name", ""))
        where = f"workload {name!r}" if name else "workload"
        _reject_unknown(table, _WORKLOAD_KEYS, where)
        jitter = table.get("jitter", 0.0)
        if isinstance(jitter, bool) or not isinstance(jitter, (int, float)):
            raise SpecError(f"{where}: 'jitter' must be a number, got {jitter!r}")
        adaptive = table.get("adaptive", False)
        if not isinstance(adaptive, bool):
            raise SpecError(f"{where}: 'adaptive' must be a boolean, got {adaptive!r}")
        return WorkloadSpec(
            kind=str(_require(table, "kind", where)),
            name=str(_require(table, "name", where)),
            count=_int_field(table, "count", 1, where),
            seed=_int_field(table, "seed", 0, where),
            jobs=_int_field(table, "jobs", 0, where),
            period_ns=_ms_to_ns(table.get("period_ms", 0), "period_ms", where),
            cost_ns=_ms_to_ns(table.get("cost_ms", 0), "cost_ms", where),
            jitter=float(jitter),
            phase_ns=_ms_to_ns(table.get("phase_ms", 0), "phase_ms", where),
            budget_ns=_ms_to_ns(table.get("budget_ms", 0), "budget_ms", where),
            server_period_ns=_ms_to_ns(
                table.get("server_period_ms", 0), "server_period_ms", where
            ),
            deadline_ns=_ms_to_ns(table.get("deadline_ms", 0), "deadline_ms", where),
            priority=_int_field(table, "priority", -1, where),
            tickets=_int_field(table, "tickets", 1, where),
            adaptive=adaptive,
        )

    def to_jsonable(self) -> dict[str, Any]:
        """Stable JSON form (feeds :meth:`ScenarioSpec.spec_hash`)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "count": self.count,
            "seed": self.seed,
            "jobs": self.jobs,
            "period_ns": self.period_ns,
            "cost_ns": self.cost_ns,
            "jitter": self.jitter,
            "phase_ns": self.phase_ns,
            "budget_ns": self.budget_ns,
            "server_period_ns": self.server_period_ns,
            "deadline_ns": self.deadline_ns,
            "priority": self.priority,
            "tickets": self.tickets,
            "adaptive": self.adaptive,
        }


@dataclass(frozen=True)
class FaultSpec:
    """A named :mod:`repro.faults` plan applied to the workload programs.

    ``plan`` names an entry of :data:`repro.faults.NAMED_PLANS`; ``scale``
    multiplies its intensities (0 disables it entirely, preserving the
    zero-intensity transparency contract).  ``kind`` selects the
    :class:`~repro.faults.injectors.WorkloadFaults` sub-plan: ``overload``
    inflates compute, ``mode-switch`` stretches activation periods.
    ``target`` restricts injection to workloads whose name starts with it
    (empty = all workloads).
    """

    plan: str = "zero"
    scale: float = 1.0
    kind: str = "overload"
    target: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate the plan name, kind and scale."""
        from repro.faults import NAMED_PLANS

        if self.plan not in NAMED_PLANS:
            raise SpecError(
                f"fault: unknown plan {self.plan!r}; accepted plans are "
                f"{sorted(NAMED_PLANS)}"
            )
        if self.kind not in FAULT_KINDS:
            raise SpecError(
                f"fault: unknown kind {self.kind!r}; accepted kinds are {list(FAULT_KINDS)}"
            )
        if self.scale < 0:
            raise SpecError(f"fault: 'scale' must be >= 0, got {self.scale}")

    @staticmethod
    def from_dict(table: dict[str, Any]) -> FaultSpec:
        """Build from a parsed ``[fault]`` table."""
        _reject_unknown(table, ("plan", "scale", "kind", "target", "seed"), "fault")
        scale = table.get("scale", 1.0)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)):
            raise SpecError(f"fault: 'scale' must be a number, got {scale!r}")
        return FaultSpec(
            plan=str(table.get("plan", "zero")),
            scale=float(scale),
            kind=str(table.get("kind", "overload")),
            target=str(table.get("target", "")),
            seed=_int_field(table, "seed", 0, "fault"),
        )

    @property
    def is_zero(self) -> bool:
        """True when the spec can never inject anything."""
        from repro.faults import plan_from_name

        return plan_from_name(self.plan, scale=self.scale).is_zero

    def to_jsonable(self) -> dict[str, Any]:
        """Stable JSON form (feeds :meth:`ScenarioSpec.spec_hash`)."""
        return {
            "plan": self.plan,
            "scale": self.scale,
            "kind": self.kind,
            "target": self.target,
            "seed": self.seed,
        }


#: feedback laws the [controller] table accepts
CONTROLLER_LAWS = ("lfspp", "lfs")

_CONTROLLER_KEYS = (
    "law",
    "spread",
    "window",
    "quantile",
    "sampling_period_ms",
    "boost",
    "boost_threshold",
    "rate_detection",
    "u_lub",
    "trigger",
    "burst_threshold",
    "burst_window_ms",
    "refractory_ms",
    "fallback_floor_ms",
)


@dataclass(frozen=True)
class ControllerSpec:
    """Adaptive-reservation parameters for the scenario's ``adaptive``
    workloads (the knobs of the paper's ``lfs++`` tool).

    Present, it routes the build through
    :class:`repro.core.runtime.SelfTuningRuntime`: every ``adaptive``
    workload gets a per-instance CBS server driven by the selected
    feedback law; fixed-``budget_ms`` workloads become static
    reservations admitted through the same supervisor.  Hard ranges are
    validated against :data:`repro.core.knobs.CONTROLLER_KNOBS`, the
    same registry the runtime constructors enforce.

    ``boost_threshold < 0`` disables the §4.4-remark-1 exhaustion boost
    (the paper's baseline).  ``rate_detection`` enables the period
    analyser; off (the default), the reservation period is pinned to the
    workload's declared period — the cheap, fully deterministic setting
    fleet-scale tuning sweeps run at.

    ``trigger = "event"`` switches every adaptive controller from the
    paper's clocked loop to the event-driven mode of
    :mod:`repro.core.events` — recompute on exhaustion bursts
    (``burst_threshold`` within ``burst_window_ms``) and deadline misses
    (the scenario's ``miss_threshold_ms``), spaced by ``refractory_ms``
    and floored by ``fallback_floor_ms``.
    """

    law: str = "lfspp"
    spread: float = 0.15
    window: int = 16
    quantile: float = 0.9375
    sampling_period_ns: int = 100 * MS
    boost: float = 0.25
    boost_threshold: float = -1.0
    rate_detection: bool = False
    u_lub: float = 0.95
    #: activation mode: "periodic" (every sampling_period) or "event"
    trigger: str = "periodic"
    burst_threshold: int = 3
    burst_window_ns: int = 250 * MS
    refractory_ns: int = 50 * MS
    fallback_floor_ns: int = 400 * MS

    def __post_init__(self) -> None:
        """Validate the law and every knob against the registry."""
        from repro.core.knobs import CONTROLLER_KNOBS

        if self.law not in CONTROLLER_LAWS:
            raise SpecError(
                f"controller: unknown law {self.law!r}; accepted laws are "
                f"{list(CONTROLLER_LAWS)}"
            )
        try:
            CONTROLLER_KNOBS["spread"].validate(self.spread)
            CONTROLLER_KNOBS["window"].validate(self.window)
            CONTROLLER_KNOBS["quantile"].validate(self.quantile)
            CONTROLLER_KNOBS["sampling_period"].validate(
                self.sampling_period_ns, name="sampling_period_ms"
            )
            CONTROLLER_KNOBS["boost"].validate(self.boost)
            CONTROLLER_KNOBS["burst_threshold"].validate(self.burst_threshold)
            CONTROLLER_KNOBS["burst_window"].validate(
                self.burst_window_ns, name="burst_window_ms"
            )
            CONTROLLER_KNOBS["refractory"].validate(self.refractory_ns, name="refractory_ms")
            CONTROLLER_KNOBS["fallback_floor"].validate(
                self.fallback_floor_ns, name="fallback_floor_ms"
            )
        except ValueError as exc:
            raise SpecError(f"controller: {exc}") from None
        if not 0.0 < self.u_lub <= 1.0:
            raise SpecError(f"controller: 'u_lub' must be in (0, 1], got {self.u_lub}")
        if self.trigger not in ("periodic", "event"):
            raise SpecError(
                f"controller: unknown trigger {self.trigger!r}; accepted triggers are "
                "['periodic', 'event']"
            )
        if self.refractory_ns > self.fallback_floor_ns:
            raise SpecError(
                f"controller: 'refractory_ms' ({self.refractory_ns} ns) must not exceed "
                f"'fallback_floor_ms' ({self.fallback_floor_ns} ns)"
            )

    @staticmethod
    def from_dict(table: dict[str, Any]) -> ControllerSpec:
        """Build from a parsed ``[controller]`` table."""
        _reject_unknown(table, _CONTROLLER_KEYS, "controller")

        def _float(key: str, default: float) -> float:
            value = table.get(key, default)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(f"controller: {key!r} must be a number, got {value!r}")
            return float(value)

        rate = table.get("rate_detection", False)
        if not isinstance(rate, bool):
            raise SpecError(f"controller: 'rate_detection' must be a boolean, got {rate!r}")
        return ControllerSpec(
            law=str(table.get("law", "lfspp")),
            spread=_float("spread", 0.15),
            window=_int_field(table, "window", 16, "controller"),
            quantile=_float("quantile", 0.9375),
            sampling_period_ns=_ms_to_ns(
                table.get("sampling_period_ms", 100.0), "sampling_period_ms", "controller"
            ),
            boost=_float("boost", 0.25),
            boost_threshold=_float("boost_threshold", -1.0),
            rate_detection=rate,
            u_lub=_float("u_lub", 0.95),
            trigger=str(table.get("trigger", "periodic")),
            burst_threshold=_int_field(table, "burst_threshold", 3, "controller"),
            burst_window_ns=_ms_to_ns(
                table.get("burst_window_ms", 250.0), "burst_window_ms", "controller"
            ),
            refractory_ns=_ms_to_ns(
                table.get("refractory_ms", 50.0), "refractory_ms", "controller"
            ),
            fallback_floor_ns=_ms_to_ns(
                table.get("fallback_floor_ms", 400.0), "fallback_floor_ms", "controller"
            ),
        )

    def to_jsonable(self) -> dict[str, Any]:
        """Stable JSON form (feeds :meth:`ScenarioSpec.spec_hash`)."""
        return {
            "law": self.law,
            "spread": self.spread,
            "window": self.window,
            "quantile": self.quantile,
            "sampling_period_ns": self.sampling_period_ns,
            "boost": self.boost,
            "boost_threshold": self.boost_threshold,
            "rate_detection": self.rate_detection,
            "u_lub": self.u_lub,
            "trigger": self.trigger,
            "burst_threshold": self.burst_threshold,
            "burst_window_ns": self.burst_window_ns,
            "refractory_ns": self.refractory_ns,
            "fallback_floor_ns": self.fallback_floor_ns,
        }


_SCENARIO_KEYS = ("name", "seed", "horizon_ms", "miss_threshold_ms")
_TOP_KEYS = ("scenario", "scheduler", "workload", "fault", "controller")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully concrete simulation: everything a worker needs to run it."""

    name: str
    seed: int
    horizon_ns: int
    #: wake-up→dispatch latency above this counts as a deadline miss
    miss_threshold_ns: int
    scheduler: SchedulerSpec
    workloads: tuple[WorkloadSpec, ...]
    fault: FaultSpec = field(default_factory=FaultSpec)
    #: adaptive-reservation parameters; None = no [controller] table
    controller: ControllerSpec | None = None
    #: template expansion group (one grid combo), "" for hand-written specs
    group: str = ""

    def __post_init__(self) -> None:
        """Validate the horizon and the workload list."""
        if not self.name:
            raise SpecError("scenario: 'name' must be a non-empty string")
        if self.horizon_ns <= 0:
            raise SpecError(f"scenario: 'horizon_ms' must be > 0, got {self.horizon_ns} ns")
        if self.miss_threshold_ns <= 0:
            raise SpecError(
                f"scenario: 'miss_threshold_ms' must be > 0, got {self.miss_threshold_ns} ns"
            )
        if not self.workloads:
            raise SpecError("scenario: at least one [[workload]] entry is required")
        names = [w.name for w in self.workloads]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise SpecError(f"scenario: duplicate workload name(s) {dupes}")
        adaptive = [w.name for w in self.workloads if w.adaptive]
        if adaptive and self.controller is None:
            raise SpecError(
                f"scenario: adaptive workload(s) {adaptive} need a [controller] table"
            )
        if self.controller is not None and not adaptive:
            raise SpecError(
                "scenario: [controller] present but no workload is marked "
                "adaptive = true"
            )
        if self.controller is not None and self.scheduler.kind != "cbs":
            raise SpecError(
                "scenario: [controller] requires scheduler kind 'cbs', got "
                f"{self.scheduler.kind!r}"
            )

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical JSON form: stable across processes and Python versions."""
        return {
            "name": self.name,
            "seed": self.seed,
            "horizon_ns": self.horizon_ns,
            "miss_threshold_ns": self.miss_threshold_ns,
            "scheduler": self.scheduler.to_jsonable(),
            "workloads": [w.to_jsonable() for w in self.workloads],
            "fault": self.fault.to_jsonable(),
            "controller": self.controller.to_jsonable() if self.controller else None,
            "group": self.group,
        }

    def spec_hash(self) -> str:
        """SHA-256 over the canonical JSON form (worker memo / stream key)."""
        blob = json.dumps(self.to_jsonable(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def scenario_from_dict(doc: dict[str, Any]) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from a parsed scenario document."""
    _reject_unknown(doc, _TOP_KEYS, "document")
    scenario = doc.get("scenario", {})
    if not isinstance(scenario, dict):
        raise SpecError("document: [scenario] must be a table")
    _reject_unknown(scenario, _SCENARIO_KEYS, "scenario")
    workloads_raw = doc.get("workload", [])
    if not isinstance(workloads_raw, list):
        raise SpecError("document: 'workload' must be an array of tables ([[workload]])")
    fault_raw = doc.get("fault", {})
    if not isinstance(fault_raw, dict):
        raise SpecError("document: [fault] must be a table")
    controller_raw = doc.get("controller")
    if controller_raw is not None and not isinstance(controller_raw, dict):
        raise SpecError("document: [controller] must be a table")
    return ScenarioSpec(
        name=str(_require(scenario, "name", "scenario")),
        seed=_int_field(scenario, "seed", 0, "scenario"),
        horizon_ns=_ms_to_ns(_require(scenario, "horizon_ms", "scenario"), "horizon_ms", "scenario"),
        miss_threshold_ns=_ms_to_ns(
            scenario.get("miss_threshold_ms", 10.0), "miss_threshold_ms", "scenario"
        ),
        scheduler=SchedulerSpec.from_dict(doc.get("scheduler", {})),
        workloads=tuple(WorkloadSpec.from_dict(w) for w in workloads_raw),
        fault=FaultSpec.from_dict(fault_raw),
        controller=(
            ControllerSpec.from_dict(controller_raw) if controller_raw is not None else None
        ),
    )


def scenario_from_toml(text: str) -> ScenarioSpec:
    """Parse a scenario TOML document into a :class:`ScenarioSpec`."""
    return scenario_from_dict(load_toml(text))


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Load one concrete scenario from a ``.toml`` file."""
    return scenario_from_toml(Path(path).read_text())
