"""``repro.fleet`` — fleet-scale scenario DSL + batched multi-sim engine.

The ROADMAP's "heavy traffic from millions of users" direction made
concrete: declarative scenario specs (TOML → frozen dataclasses),
parameterised templates that expand lazily into thousands of concrete
nodes, a batched process-pool engine that packs many cheap sims per
worker task (leaning on :mod:`repro.sim.cycles` fast-forward for the
steady-state legs), and streaming aggregation that keeps parent memory
flat while producing byte-identical results at any ``--jobs`` level.

Layers:

- :mod:`~repro.fleet.spec` — the scenario DSL (:class:`ScenarioSpec`
  and friends) with strict, actionable validation;
- :mod:`~repro.fleet.template` — ``[grid]``/``[jitter]`` templates and
  the lazy :func:`expand_template` generator;
- :mod:`~repro.fleet.build` — spec → kernel construction and the
  single-sim runner;
- :mod:`~repro.fleet.summary` — mergeable per-sim summaries and the
  streaming :class:`FleetAggregate`;
- :mod:`~repro.fleet.engine` — :func:`run_fleet`, the chunked pool
  dispatcher.

See ``docs/fleet.md`` for the DSL reference and the determinism
contract, and ``repro-exp fleet`` for the CLI surface.
"""

from repro.fleet.build import build_sim, run_sim
from repro.fleet.engine import run_fleet
from repro.fleet.spec import (
    FaultSpec,
    ScenarioSpec,
    SchedulerSpec,
    SpecError,
    WorkloadSpec,
    load_scenario,
    scenario_from_dict,
    scenario_from_toml,
)
from repro.fleet.summary import FleetAggregate, SimSummary, summarise_kernel
from repro.fleet.template import (
    FleetTemplate,
    expand_template,
    load_template,
    parse_template,
)

__all__ = [
    "FaultSpec",
    "FleetAggregate",
    "FleetTemplate",
    "ScenarioSpec",
    "SchedulerSpec",
    "SimSummary",
    "SpecError",
    "WorkloadSpec",
    "build_sim",
    "expand_template",
    "load_scenario",
    "load_template",
    "parse_template",
    "run_fleet",
    "run_sim",
    "scenario_from_dict",
    "scenario_from_toml",
    "summarise_kernel",
]
