"""Compact per-sim summaries and the streaming fleet aggregate.

Workers never ship kernels or traces back to the parent — each finished
sim collapses into a :class:`SimSummary`: merged Welford moments of the
wake-up→dispatch latency, a 64-bin power-of-two latency histogram (the
quantile sketch), deadline-miss and kernel counters, and the
fast-forward accounting.  Summaries are a few hundred bytes regardless
of horizon, which is what keeps parent memory flat over a million-sim
fleet.

The parent folds summaries into a :class:`FleetAggregate` in submission
order.  Every merge is either integer (histogram, counters — order
independent) or Welford's pairwise combination applied in a fixed order,
so a fleet run with ``--jobs N`` produces a byte-identical aggregate —
and :meth:`FleetAggregate.digest` — to ``--jobs 1``.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.sim.process import LatencyStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.spec import ScenarioSpec
    from repro.sim.kernel import Kernel

#: histogram bins: bin ``b`` counts samples whose ns value has bit length
#: ``b`` (bin 0 = zero-latency dispatches), so bin bounds are powers of two
HIST_BINS = 64


def _bin_index(latency: int) -> int:
    """Histogram bin for one latency sample."""
    return min(latency.bit_length(), HIST_BINS - 1)


class _SampleStats(LatencyStats):
    """LatencyStats that also bins samples and tallies deadline misses.

    Installed on every process before the run, so the histogram and miss
    tally accumulate inline without a raw sample log.  When fast-forward
    replaces it with a :class:`repro.sim.cycles._RecordingLatency`, the
    recorder's raw log is binned after the run instead — both paths see
    the identical sample stream, so they produce identical tallies.
    """

    __slots__ = ("hist", "misses", "threshold")

    def __init__(self, threshold: int) -> None:
        super().__init__()
        self.hist = [0] * HIST_BINS
        self.misses = 0
        self.threshold = threshold

    def add(self, latency: int) -> None:
        super().add(latency)
        self.hist[_bin_index(latency)] += 1
        if latency > self.threshold:
            self.misses += 1


def _merge_moments(
    n_a: int, mean_a: float, m2_a: float, n_b: int, mean_b: float, m2_b: float
) -> tuple[int, float, float]:
    """Chan's pairwise Welford combination (exact for empty sides)."""
    if n_a == 0:
        return n_b, mean_b, m2_b
    if n_b == 0:
        return n_a, mean_a, m2_a
    n = n_a + n_b
    delta = mean_b - mean_a
    mean = mean_a + delta * n_b / n
    m2 = m2_a + m2_b + delta * delta * n_a * n_b / n
    return n, mean, m2


@dataclass(frozen=True)
class SimSummary:
    """Everything the parent keeps from one finished simulation."""

    name: str
    group: str
    seed: int
    simulated_ns: int
    procs: int
    crashes: int
    #: merged wake-up→dispatch latency moments across the node's processes
    samples: int
    lat_total: int
    lat_max: int
    lat_mean: float
    lat_m2: float
    hist: tuple[int, ...]
    misses: int
    #: kernel counters
    context_switches: int
    syscalls: int
    busy_ns: int
    idle_ns: int
    cpu_ns: int
    #: fast-forward accounting
    ff_detected: bool
    cycles_skipped: int
    skipped_ns: int

    def to_jsonable(self) -> dict[str, Any]:
        """Strict-JSON form (one JSONL stream line per sim)."""
        return {
            "name": self.name,
            "group": self.group,
            "seed": self.seed,
            "simulated_ns": self.simulated_ns,
            "procs": self.procs,
            "crashes": self.crashes,
            "samples": self.samples,
            "lat_total": self.lat_total,
            "lat_max": self.lat_max,
            "lat_mean": self.lat_mean,
            "lat_m2": self.lat_m2,
            "hist": list(self.hist),
            "misses": self.misses,
            "context_switches": self.context_switches,
            "syscalls": self.syscalls,
            "busy_ns": self.busy_ns,
            "idle_ns": self.idle_ns,
            "cpu_ns": self.cpu_ns,
            "ff_detected": self.ff_detected,
            "cycles_skipped": self.cycles_skipped,
            "skipped_ns": self.skipped_ns,
        }


def summarise_kernel(kernel: Kernel, spec: ScenarioSpec, ff_report: Any | None) -> SimSummary:
    """Collapse a finished kernel into its :class:`SimSummary`.

    Latency histograms and miss tallies come from the raw sample log when
    fast-forward installed a recorder, and from the pre-installed
    :class:`_SampleStats` otherwise; per-process Welford moments merge in
    sorted-pid order so the floats are reproducible.
    """
    n = 0
    mean = 0.0
    m2 = 0.0
    lat_total = 0
    lat_max = 0
    hist = [0] * HIST_BINS
    misses = 0
    crashes = 0
    cpu_ns = 0
    threshold = spec.miss_threshold_ns
    for pid in sorted(kernel.processes):
        proc = kernel.processes[pid]
        stats = proc.sched_latency
        n, mean, m2 = _merge_moments(n, mean, m2, stats.n, stats._mean, stats._m2)
        lat_total += stats.total
        lat_max = max(lat_max, stats.max)
        log = getattr(stats, "log", None)
        if log is not None:
            for sample in log:
                hist[_bin_index(sample)] += 1
                if sample > threshold:
                    misses += 1
        else:
            hist_part = getattr(stats, "hist", None)
            if hist_part is not None:
                for b, count in enumerate(hist_part):
                    hist[b] += count
                misses += stats.misses
        if proc.crashed:
            crashes += 1
        cpu_ns += proc.cpu_time
    detected = bool(ff_report is not None and getattr(ff_report, "detected", False))
    return SimSummary(
        name=spec.name,
        group=spec.group,
        seed=spec.seed,
        simulated_ns=kernel.clock,
        procs=len(kernel.processes),
        crashes=crashes,
        samples=n,
        lat_total=lat_total,
        lat_max=lat_max,
        lat_mean=mean,
        lat_m2=m2,
        hist=tuple(hist),
        misses=misses,
        context_switches=kernel.stats.context_switches,
        syscalls=kernel.stats.syscalls,
        busy_ns=kernel.stats.busy_time,
        idle_ns=kernel.stats.idle_time,
        cpu_ns=cpu_ns,
        ff_detected=detected,
        cycles_skipped=getattr(ff_report, "cycles_skipped", 0) if ff_report else 0,
        skipped_ns=getattr(ff_report, "skipped_ns", 0) if ff_report else 0,
    )


@dataclass
class FleetAggregate:
    """The parent-side streaming fold of every :class:`SimSummary`.

    Integer fields merge order-independently; the Welford moments merge
    in fold order, which the engine fixes to fleet (submission) order —
    that is the determinism contract behind the ``--jobs N`` ==
    ``--jobs 1`` digest equality.
    """

    sims: int = 0
    procs: int = 0
    crashes: int = 0
    samples: int = 0
    lat_total: int = 0
    lat_max: int = 0
    lat_mean: float = 0.0
    lat_m2: float = 0.0
    hist: list[int] = field(default_factory=lambda: [0] * HIST_BINS)
    misses: int = 0
    context_switches: int = 0
    syscalls: int = 0
    busy_ns: int = 0
    idle_ns: int = 0
    cpu_ns: int = 0
    simulated_ns: int = 0
    ff_detected: int = 0
    cycles_skipped: int = 0
    skipped_ns: int = 0
    #: per-template-group sub-aggregates (bounded by the grid size)
    groups: dict[str, FleetAggregate] = field(default_factory=dict)

    def fold(self, summary: SimSummary) -> None:
        """Merge one sim into the aggregate (and its group sub-aggregate)."""
        self._fold_one(summary)
        if summary.group:
            sub = self.groups.get(summary.group)
            if sub is None:
                sub = self.groups[summary.group] = FleetAggregate()
            sub._fold_one(summary)

    def _fold_one(self, s: SimSummary) -> None:
        self.sims += 1
        self.procs += s.procs
        self.crashes += s.crashes
        self.samples, self.lat_mean, self.lat_m2 = _merge_moments(
            self.samples, self.lat_mean, self.lat_m2, s.samples, s.lat_mean, s.lat_m2
        )
        self.lat_total += s.lat_total
        self.lat_max = max(self.lat_max, s.lat_max)
        for b, count in enumerate(s.hist):
            self.hist[b] += count
        self.misses += s.misses
        self.context_switches += s.context_switches
        self.syscalls += s.syscalls
        self.busy_ns += s.busy_ns
        self.idle_ns += s.idle_ns
        self.cpu_ns += s.cpu_ns
        self.simulated_ns += s.simulated_ns
        self.ff_detected += int(s.ff_detected)
        self.cycles_skipped += s.cycles_skipped
        self.skipped_ns += s.skipped_ns

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def lat_std(self) -> float:
        """Sample standard deviation of the merged latency stream, ns."""
        return math.sqrt(self.lat_m2 / (self.samples - 1)) if self.samples > 1 else 0.0

    @property
    def miss_rate(self) -> float:
        """Deadline misses per latency sample (0 with no samples)."""
        return self.misses / self.samples if self.samples else 0.0

    def quantile(self, q: float) -> int:
        """Upper bound (ns) of the histogram bin holding quantile ``q``.

        Power-of-two sketch resolution: the answer is exact to a factor
        of two, which is what fleet dashboards need from a p99.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.samples == 0:
            return 0
        target = max(1, math.ceil(q * self.samples))
        seen = 0
        for b, count in enumerate(self.hist):
            seen += count
            if seen >= target:
                return (1 << b) - 1
        return (1 << HIST_BINS) - 1  # pragma: no cover - bins always cover

    def to_jsonable(self) -> dict[str, Any]:
        """Canonical strict-JSON form (groups in sorted order)."""
        doc: dict[str, Any] = {
            "sims": self.sims,
            "procs": self.procs,
            "crashes": self.crashes,
            "samples": self.samples,
            "lat_total": self.lat_total,
            "lat_max": self.lat_max,
            "lat_mean": self.lat_mean,
            "lat_m2": self.lat_m2,
            "lat_p50": self.quantile(0.5),
            "lat_p99": self.quantile(0.99),
            "hist": list(self.hist),
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "context_switches": self.context_switches,
            "syscalls": self.syscalls,
            "busy_ns": self.busy_ns,
            "idle_ns": self.idle_ns,
            "cpu_ns": self.cpu_ns,
            "simulated_ns": self.simulated_ns,
            "ff_detected": self.ff_detected,
            "cycles_skipped": self.cycles_skipped,
            "skipped_ns": self.skipped_ns,
        }
        if self.groups:
            doc["groups"] = {
                key: self.groups[key].to_jsonable() for key in sorted(self.groups)
            }
        return doc

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form — the fleet identity check."""
        blob = json.dumps(self.to_jsonable(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
