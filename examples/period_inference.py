"""Black-box period inference from a kernel trace (§4.2-4.3 standalone).

Traces an mp3 player through qtrace for a few seconds, then runs the
sparse-spectrum period analyser on growing prefixes of the trace — the
Figure 10 / Figure 11 story: the periodicity is visible after half a
second and indisputable after one.  An ASCII rendering of the amplitude
spectrum is printed for the longest trace.

Run with::

    python examples/period_inference.py
"""

import numpy as np

from repro.core.analyser import AnalyserConfig, PeriodAnalyser
from repro.core.spectrum import SpectrumConfig
from repro.sched import CbsScheduler
from repro.sim import Kernel, SEC
from repro.tracer import QTracer
from repro.viz import ascii_spectrum
from repro.workloads import AudioPlayer


def main() -> None:
    scheduler = CbsScheduler()
    kernel = Kernel(scheduler)
    tracer = QTracer()
    kernel.add_tracer(tracer)

    player = AudioPlayer()
    proc = kernel.spawn("mplayer-mp3", player.program(n_frames=150))
    tracer.trace_pid(proc.pid)

    kernel.run(4 * SEC)
    trace = np.array([e.time for e in tracer.buffer.drain() if e.pid == proc.pid])
    print(f"traced {trace.size} kernel events over 4 s of playback\n")

    config = AnalyserConfig(
        spectrum=SpectrumConfig(f_min=30.0, f_max=100.0, df=0.1),
        horizon_ns=4 * SEC,
    )
    print(f"{'tracing time':>14}  {'events':>7}  {'detected':>10}  {'period':>10}")
    for seconds in (0.2, 0.5, 1.0, 2.0, 4.0):
        upto = int(seconds * SEC)
        analyser = PeriodAnalyser(config)
        analyser.add_times(trace[trace < upto])
        estimate = analyser.analyse(upto)
        if estimate is None:
            print(f"{seconds:>13}s  {analyser.n_events:>7}  {'-':>10}  {'-':>10}")
        else:
            print(
                f"{seconds:>13}s  {estimate.n_events:>7}  "
                f"{estimate.frequency:>8.2f}Hz  {estimate.period_ns / 1e6:>8.2f}ms"
            )

    analyser = PeriodAnalyser(config)
    analyser.add_times(trace)
    amp = analyser.spectrum(4 * SEC)
    print(f"\namplitude spectrum after 4 s (true rate: {player.config.frequency:.1f} Hz):\n")
    print(ascii_spectrum(config.spectrum.frequencies(), amp))


if __name__ == "__main__":
    main()
