"""Sizing CPU reservations with the analysis toolkit (§3.2 as a tool).

Given a task's (C, P), what does a badly chosen server period cost?  And
what does packing several tasks into one reservation cost compared to
dedicated per-task servers?  This script answers both with the supply /
demand bound machinery behind Figures 1 and 2 — the quantitative
motivation for inferring each task's period and serving it in its own
reservation.

Run with::

    python examples/reservation_sizing.py
"""

from repro.analysis import (
    Task,
    min_bandwidth_dedicated,
    min_bandwidth_shared_edf,
    min_bandwidth_shared_rm,
)
from repro.analysis.tasks import total_utilisation


def single_task_story() -> None:
    task = Task(cost=20, period=100)
    print(f"task: C={task.cost} ms, P={task.period} ms (utilisation {task.utilisation:.0%})\n")
    print(f"{'server period':>14}  {'min bandwidth':>14}  {'waste':>7}")
    for period in (10, 20, 100 / 3, 40, 50, 60, 100, 110, 150, 200):
        b = min_bandwidth_dedicated(task, period)
        waste = b - task.utilisation
        marker = "  <- T = P (robust optimum)" if period == 100 else ""
        print(f"{period:>12.1f}ms  {b:>13.1%}  {waste:>6.1%}{marker}")
    print(
        "\nchoosing T equal to the task period (or an exact sub-multiple) costs"
        "\nnothing; anything else wastes up to 3x the task's own demand."
    )


def consolidation_story() -> None:
    tasks = [Task(3, 15), Task(5, 20), Task(5, 30)]
    util = total_utilisation(tasks)
    print(f"\ntask set: {[(t.cost, t.period) for t in tasks]}, cumulative utilisation {util:.1%}\n")
    print(f"{'server period':>14}  {'one server (RM)':>16}  {'one server (EDF)':>17}  {'dedicated':>10}")
    for period in (2, 5, 10, 20, 30, 60):
        rm = min_bandwidth_shared_rm(tasks, period)
        edf = min_bandwidth_shared_edf(tasks, period)
        print(
            f"{period:>12.1f}ms  {rm:>15.1%}  {edf:>16.1%}  {util:>9.1%}"
        )
    print(
        "\na shared reservation always over-provisions (and there is no obvious"
        "\nbest server period); dedicated per-task servers with correctly"
        "\ninferred periods reach the theoretical lower bound."
    )


if __name__ == "__main__":
    single_task_story()
    consolidation_story()
