"""Quickstart: self-tuning scheduling for an unmodified application.

A 25 fps video player (a stand-in for mplayer) is spawned as an ordinary
best-effort process while a CPU hog competes with it.  The self-tuning
runtime then *adopts* the player: it traces its system calls, infers the
40 ms activation period from the event spectrum, and drives a CBS
reservation with the LFS++ feedback law — no cooperation from the
application whatsoever.

Run with::

    python examples/quickstart.py
"""

from repro.core import SelfTuningRuntime
from repro.core.analyser import AnalyserConfig
from repro.core.spectrum import SpectrumConfig
from repro.metrics import InterFrameProbe
from repro.sim.instructions import Compute
from repro.sim.time import MS, SEC
from repro.workloads import VideoPlayer


def cpu_hog():
    """An infinite best-effort CPU burner."""
    while True:
        yield Compute(10 * MS)


def main() -> None:
    runtime = SelfTuningRuntime()

    # the legacy application: nothing about it knows of reservations
    player = VideoPlayer()
    proc = runtime.spawn("mplayer", player.program(n_frames=750))

    # application-level QoS instrumentation (the paper's custom player)
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(runtime.kernel)

    # competing best-effort load
    runtime.spawn("hog", cpu_hog())

    # adopt: trace + infer period + adapt the reservation
    task = runtime.adopt(
        proc,
        analyser_config=AnalyserConfig(
            spectrum=SpectrumConfig(f_min=20.0, f_max=100.0, df=0.1),
            horizon_ns=2 * SEC,
        ),
    )

    runtime.run(30 * SEC)

    period = task.controller.current_period_estimate()
    print("adopted process     :", proc.name, f"(pid {proc.pid})")
    print("frames played       :", player.frames_played)
    print("inferred period     :", f"{period / MS:.2f} ms" if period else "none")
    print("true period         :", f"{player.config.period / MS:.2f} ms")
    print("final reservation   :", f"Q={task.server.params.budget / MS:.2f} ms "
          f"T={task.server.params.period / MS:.2f} ms "
          f"({task.server.params.bandwidth:.1%} of the CPU)")
    print("application demand  :", f"{player.config.utilisation:.1%}")
    print("inter-frame time    :", f"{probe.mean_ms:.2f} +/- {probe.std_ms:.2f} ms "
          "(target: 40 ms)")


if __name__ == "__main__":
    main()
