"""LFS vs LFS++ for a video player sharing the CPU with real-time load.

The §5.4/§5.5 scenario as a script: a 25 fps player runs alongside a 40%
synthetic real-time workload (in static reservations) and the usual
desktop background.  Playback quality (inter-frame times) and the
reservation trajectory are compared between the original Legacy Feedback
Scheduler and LFS++.

Run with::

    python examples/adaptive_video_under_load.py
"""

import numpy as np

from repro.core import Lfs, LfsPlusPlus, SelfTuningRuntime
from repro.core.analyser import AnalyserConfig
from repro.core.controller import TaskControllerConfig
from repro.core.spectrum import SpectrumConfig
from repro.metrics import InterFrameProbe
from repro.sim.time import MS, SEC
from repro.workloads import VideoPlayer, periodic_task
from repro.workloads.desktop import desktop_load, desktop_suite
from repro.workloads.periodic import load_set

N_FRAMES = 1000
RT_LOAD = 0.4


def playback(law_name: str):
    runtime = SelfTuningRuntime()
    player = VideoPlayer()
    proc = runtime.spawn("mplayer", player.program(N_FRAMES))
    probe = InterFrameProbe(pid=proc.pid)
    probe.install(runtime.kernel)

    for i, cfg in enumerate(desktop_suite(99)):
        runtime.spawn(f"desktop{i}", desktop_load(cfg))
    for i, cfg in enumerate(load_set(RT_LOAD, seed=7)):
        lp = runtime.spawn(f"rtload{i}", periodic_task(cfg))
        runtime.add_static_reservation(lp, budget=int(cfg.cost * 1.1), period=cfg.period)

    if law_name == "LFS":
        feedback = Lfs()
        controller = TaskControllerConfig(sampling_period=40 * MS, use_period_estimate=False)
        analyser = None
    else:
        feedback = LfsPlusPlus()
        controller = TaskControllerConfig(sampling_period=100 * MS)
        analyser = AnalyserConfig(
            spectrum=SpectrumConfig(f_min=20.0, f_max=100.0, df=0.1), horizon_ns=2 * SEC
        )

    task = runtime.adopt(
        proc, feedback=feedback, controller_config=controller, analyser_config=analyser
    )
    runtime.run(N_FRAMES * 40 * MS)
    return player, probe, task


def main() -> None:
    print(f"{N_FRAMES} frames at 25 fps, {RT_LOAD:.0%} reserved real-time load\n")
    print(f"{'law':<6} {'mean IFT':>9} {'std IFT':>9} {'late>80ms':>10} "
          f"{'last late':>10} {'reserved':>9}")
    for law in ("LFS", "LFS++"):
        player, probe, task = playback(law)
        ift = np.array(probe.inter_frame_times) / MS
        late = np.where(ift > 80.0)[0]
        bw = np.mean([g.bandwidth for _, g in task.controller.granted_history])
        print(
            f"{law:<6} {ift.mean():>7.2f}ms {ift.std():>7.2f}ms "
            f"{late.size:>10} {late[-1] + 1 if late.size else 0:>10} {bw:>8.1%}"
        )
    print(
        "\nLFS++ converges within a handful of frames; LFS needs an order of"
        "\nmagnitude longer and keeps a visibly longer inter-frame-time tail."
    )


if __name__ == "__main__":
    main()
