"""The Wizard of OS: fully autonomous adoption of legacy applications.

No process is named, no period is given: the self-tuning daemon scans the
machine, probes every unknown best-effort process for a few seconds, and
adopts the ones with a genuine periodic structure.  The system here mixes

- a 25 fps video player (periodic — should be adopted),
- an ffmpeg transcode (CPU-bound batch — must be left alone, even though
  its execution inherits the player's rhythm through CPU gating),
- the usual desktop background mix (aperiodic — left alone).

Run with::

    python examples/autonomous_daemon.py
"""

import numpy as np

from repro.core import SelfTuningDaemon, SelfTuningRuntime
from repro.core.analyser import AnalyserConfig
from repro.core.controller import TaskControllerConfig
from repro.core.spectrum import SpectrumConfig
from repro.metrics import InterFrameProbe
from repro.sim.time import MS, SEC
from repro.workloads import FfmpegConfig, VideoPlayer, ffmpeg_transcode
from repro.workloads.desktop import desktop_load, desktop_suite
from repro.workloads.mplayer import VideoPlayerConfig


def main() -> None:
    rt = SelfTuningRuntime()

    player = VideoPlayer(VideoPlayerConfig(seed=21))
    player_proc = rt.spawn("mplayer", player.program(600))
    probe = InterFrameProbe(pid=player_proc.pid)
    probe.install(rt.kernel)

    batch = rt.spawn("ffmpeg", ffmpeg_transcode(FfmpegConfig(n_frames=6000, seed=5)))
    for i, cfg in enumerate(desktop_suite(77)):
        rt.spawn(f"desktop{i}", desktop_load(cfg))

    daemon = SelfTuningDaemon(
        rt,
        analyser_config=AnalyserConfig(
            spectrum=SpectrumConfig(f_min=20.0, f_max=100.0, df=0.1), horizon_ns=2 * SEC
        ),
        controller_config=TaskControllerConfig(sampling_period=100 * MS),
    )
    daemon.start()
    rt.run(24 * SEC)

    print("system after 24 s under the autonomous daemon:\n")
    for task in daemon.adopted:
        p = task.server.params
        print(
            f"  ADOPTED  {task.proc.name:<10} period {p.period / MS:6.2f} ms, "
            f"bandwidth {p.bandwidth:.1%}"
        )
    for pid in sorted(set(daemon.rejected)):
        name = rt.kernel.processes[pid].name
        print(f"  rejected {name:<10} (no intrinsic periodic structure)")

    ift = np.array(probe.inter_frame_times[-300:]) / MS
    print(f"\nplayer inter-frame time after adoption: {ift.mean():.2f} +/- {ift.std():.2f} ms")
    print(f"ffmpeg frames transcoded meanwhile      : {batch.syscall_count // 8}")


if __name__ == "__main__":
    main()
