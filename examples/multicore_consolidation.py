"""Consolidating several adaptive players on a multicore machine (§6).

Four unmodified 25 fps players are adopted by the self-tuning framework,
first on a single CPU (their cumulative demand exceeds the supervisor
bound, and compression degrades everybody), then on two CPUs with
worst-fit placement (everyone plays cleanly).  This is the partitioned
point in the multicore design space the paper's §6 sketches.

Run with::

    python examples/multicore_consolidation.py
"""

import numpy as np

from repro.core import LfsPlusPlus, SmpSelfTuningRuntime
from repro.core.analyser import AnalyserConfig
from repro.core.controller import TaskControllerConfig
from repro.core.spectrum import SpectrumConfig
from repro.metrics import InterFrameProbe
from repro.sim.time import MS, SEC
from repro.workloads import VideoPlayer
from repro.workloads.mplayer import VideoPlayerConfig

N_PLAYERS = 4
N_FRAMES = 400


def consolidate(n_cpus: int):
    smp = SmpSelfTuningRuntime(n_cpus)
    probes = []
    placements = []
    for i in range(N_PLAYERS):
        player = VideoPlayer(VideoPlayerConfig(seed=60 + i, phase=i * 9 * MS))
        cpu, proc, _ = smp.place(
            f"player{i}",
            player.program(N_FRAMES),
            feedback=LfsPlusPlus(),
            controller_config=TaskControllerConfig(sampling_period=100 * MS),
            analyser_config=AnalyserConfig(
                spectrum=SpectrumConfig(f_min=20.0, f_max=100.0, df=0.1), horizon_ns=2 * SEC
            ),
        )
        placements.append(cpu)
        probe = InterFrameProbe(pid=proc.pid)
        probe.install(smp.cpus[cpu].kernel)
        probes.append(probe)
    smp.run(N_FRAMES * 40 * MS)
    return smp, placements, probes


def main() -> None:
    for n_cpus in (1, 2):
        smp, placements, probes = consolidate(n_cpus)
        print(f"=== {N_PLAYERS} players on {n_cpus} CPU(s) ===")
        for i, (cpu, probe) in enumerate(zip(placements, probes)):
            ift = np.array(probe.inter_frame_times) / MS
            print(
                f"  player{i} on cpu{cpu}: IFT {ift.mean():6.2f} +/- {ift.std():5.2f} ms"
            )
        for row in smp.load_report():
            print(
                f"  cpu{row['cpu']}: granted {row['granted_bandwidth']:.1%}, "
                f"busy {row['busy_fraction']:.1%}, {row['adopted_tasks']} task(s)"
            )
        print()


if __name__ == "__main__":
    main()
