"""Record → save → analyse: the offline lfs++ workflow.

The period analyser does not need to run inside the control loop: traces
recorded by qtrace can be persisted and analysed after the fact — handy
for tuning the analyser's parameters against a corpus of recordings.
This script records a two-thread vlc playback, saves the trace in the
``qtrace v1`` text format, reloads it, and analyses each thread
separately and the merged train (which is what group adoption would see).

The same analysis is available from the command line::

    repro-exp analyze /tmp/vlc.qtrace --fmin 20 --fmax 100

Run with::

    python examples/offline_trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.core.analyser import AnalyserConfig, PeriodAnalyser
from repro.core.spectrum import SpectrumConfig
from repro.sched import CbsScheduler
from repro.sim import Kernel, SEC
from repro.tracer import EventKind, QTracer, filter_trace, load_trace, save_trace
from repro.workloads import VlcPlayer


def analyse(times, label):
    analyser = PeriodAnalyser(
        AnalyserConfig(
            spectrum=SpectrumConfig(f_min=20.0, f_max=100.0, df=0.1), horizon_ns=3 * SEC
        )
    )
    analyser.add_times(times)
    estimate = analyser.analyse(max(times) if times else 0)
    if estimate is None:
        print(f"  {label:<18} {len(times):>6} events   -> non-periodic")
    else:
        print(
            f"  {label:<18} {len(times):>6} events   -> "
            f"{estimate.frequency:6.2f} Hz ({estimate.period_ns / 1e6:.2f} ms)"
        )


def main() -> None:
    # --- record ---------------------------------------------------------
    scheduler = CbsScheduler()
    kernel = Kernel(scheduler)
    tracer = QTracer()
    kernel.add_tracer(tracer)
    player = VlcPlayer()
    decoder = kernel.spawn("vlc-decode", player.decoder_program(120))
    output = kernel.spawn("vlc-output", player.output_program(120))
    tracer.trace_pid(decoder.pid)
    tracer.trace_pid(output.pid)
    kernel.run(5 * SEC)

    # --- save -----------------------------------------------------------
    path = Path(tempfile.gettempdir()) / "vlc.qtrace"
    count = save_trace(path, tracer.buffer.drain())
    print(f"saved {count} events to {path}\n")

    # --- reload and analyse ---------------------------------------------
    events = load_trace(path)
    entries = filter_trace(events, kinds=[EventKind.SYSCALL_ENTRY])
    print("per-thread and merged period detection:")
    analyse([e.time for e in entries if e.pid == decoder.pid], "decoder thread")
    analyse([e.time for e in entries if e.pid == output.pid], "output thread")
    analyse([e.time for e in entries], "merged (group)")
    print(
        "\nboth threads and their merge carry the 25 Hz playback rate — the\n"
        "reason adopt_group() can size one reservation for the whole player."
    )


if __name__ == "__main__":
    main()
