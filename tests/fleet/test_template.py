"""Template expansion: lazy, deterministic, grid x nodes complete."""

import itertools

import pytest

from repro.fleet import expand_template, parse_template
from repro.fleet.spec import SpecError

TEMPLATE = """
[template]
name = "t"
nodes = 5
seed = 100

[scenario]
horizon_ms = 500.0

[scheduler]
kind = "edf"

[[workload]]
kind = "periodic"
name = "p"
count = 2
period_ms = 10.0
cost_ms = 1.0

[[workload]]
kind = "mplayer"
name = "a"

[grid]
"workload.p.count" = [2, 4]
"scheduler.kind" = ["edf", "rr"]

[jitter]
"workload.a.phase_ms" = 3.0
"""


def test_expansion_size_and_names():
    template = parse_template(TEMPLATE)
    assert template.size == 2 * 2 * 5
    specs = list(expand_template(template))
    assert len(specs) == template.size
    assert specs[0].name == "t/g0000/n00000"
    assert specs[-1].name == "t/g0003/n00004"
    # grid iterates in file order: first key varies slowest
    assert [s.group for s in specs] == [f"g{c:04d}" for c in range(4) for _ in range(5)]


def test_expansion_is_deterministic():
    template = parse_template(TEMPLATE)
    once = [s.to_jsonable() for s in expand_template(template)]
    again = [s.to_jsonable() for s in expand_template(template)]
    assert once == again


def test_expansion_is_lazy():
    big = TEMPLATE.replace("nodes = 5", "nodes = 1000000")
    template = parse_template(big)
    assert template.size == 4_000_000
    head = list(itertools.islice(expand_template(template), 3))
    assert [s.name for s in head] == [f"t/g0000/n{n:05d}" for n in range(3)]


def test_grid_values_are_applied():
    specs = list(expand_template(parse_template(TEMPLATE)))
    combos = {(s.workloads[0].count, s.scheduler.kind) for s in specs}
    assert combos == {(2, "edf"), (2, "rr"), (4, "edf"), (4, "rr")}


def test_seeds_and_jitter_are_per_node():
    specs = list(expand_template(parse_template(TEMPLATE)))
    assert len({s.seed for s in specs}) == len(specs)
    phases = {s.workloads[1].phase_ns for s in specs[:5]}
    assert len(phases) > 1  # jitter actually varies across nodes
    assert all(0 <= p <= 3_000_000 for p in phases)


def test_wildcard_grid_path():
    text = TEMPLATE.replace('"workload.p.count" = [2, 4]', '"workload.*.jitter" = [0.0, 0.2]')
    specs = list(expand_template(parse_template(text)))
    jitters = {(s.workloads[0].jitter, s.workloads[1].jitter) for s in specs}
    assert jitters == {(0.0, 0.0), (0.2, 0.2)}


def test_unresolvable_grid_path_fails_fast():
    text = TEMPLATE.replace('"workload.p.count"', '"workload.nosuch.count"')
    with pytest.raises(SpecError, match="nosuch"):
        parse_template(text)


def test_template_table_required():
    with pytest.raises(SpecError, match="template"):
        parse_template("[scenario]\nhorizon_ms = 1.0\n")


ADAPTIVE_TEMPLATE = """
[template]
name = "tune-grid"
nodes = 2
seed = 5

[scenario]
horizon_ms = 400.0

[controller]
law = "lfspp"
spread = 0.1

[[workload]]
kind = "mplayer"
name = "mp3"
adaptive = true

[grid]
"controller.spread" = [0.1, 0.3]
"""


def test_controller_survives_expansion():
    specs = list(expand_template(parse_template(ADAPTIVE_TEMPLATE)))
    assert len(specs) == 4  # 2 grid points x 2 nodes
    assert all(s.controller is not None for s in specs)
    assert sorted({s.controller.spread for s in specs}) == [0.1, 0.3]
    # the non-swept knobs keep the template's values
    assert all(s.controller.law == "lfspp" for s in specs)
