"""The engine's determinism contract and the build/run integration.

The load-bearing assertion: ``run_fleet(jobs=N)`` is byte-identical to
``jobs=1`` — same aggregate digest, same JSONL stream — because chunks
are folded strictly in fleet order regardless of completion order.
"""

import io
import json

import pytest

from repro.fleet import (
    expand_template,
    parse_template,
    run_fleet,
    run_sim,
    scenario_from_toml,
)

TEMPLATE = """
[template]
name = "engine-test"
nodes = 6
seed = 40

[scenario]
horizon_ms = 800.0
miss_threshold_ms = 10.0

[scheduler]
kind = "cbs"
policy = "hard"

[[workload]]
kind = "periodic"
name = "p8"
count = 2
period_ms = 8.0
cost_ms = 0.5
budget_ms = 2.5
server_period_ms = 8.0

[grid]
"scheduler.policy" = ["hard", "soft"]
"""

PLAYERS = """
[scenario]
name = "players"
seed = 11
horizon_ms = 400.0

[scheduler]
kind = "edf"

[[workload]]
kind = "mplayer"
name = "audio"
count = 2

[[workload]]
kind = "vlc"
name = "video"
"""


def _specs():
    return expand_template(parse_template(TEMPLATE))


def test_jobs_1_vs_4_byte_identical():
    serial_stream, parallel_stream = io.StringIO(), io.StringIO()
    serial = run_fleet(_specs(), jobs=1, chunksize=3, stream=serial_stream)
    parallel = run_fleet(_specs(), jobs=4, chunksize=3, stream=parallel_stream)
    assert serial.digest() == parallel.digest()
    assert serial_stream.getvalue() == parallel_stream.getvalue()
    assert serial.sims == 12


def test_chunksize_does_not_change_the_result():
    assert (
        run_fleet(_specs(), chunksize=1).digest()
        == run_fleet(_specs(), chunksize=5).digest()
        == run_fleet(_specs(), chunksize=100).digest()
    )


def test_fast_forward_equals_full_stepping():
    ff = run_fleet(_specs(), fast_forward=True)
    full = run_fleet(_specs(), fast_forward=False)
    assert ff.ff_detected == ff.sims  # purely periodic: every sim skips
    assert full.ff_detected == 0
    ff_doc, full_doc = ff.to_jsonable(), full.to_jsonable()
    for doc in (ff_doc, full_doc):
        for key in ("ff_detected", "cycles_skipped", "skipped_ns"):
            doc.pop(key)
            for group in doc.get("groups", {}).values():
                group.pop(key)
    assert ff_doc == full_doc


def test_stream_jsonl_shape(tmp_path):
    path = tmp_path / "out.jsonl"
    aggregate = run_fleet(_specs(), jobs=2, chunksize=4, stream=path)
    lines = path.read_text().splitlines()
    assert len(lines) == aggregate.sims
    records = [json.loads(line) for line in lines]
    assert [r["name"] for r in records] == sorted(r["name"] for r in records)
    assert sum(r["samples"] for r in records) == aggregate.samples


def test_telemetry_spans_per_chunk():
    from repro.obs.telemetry import Telemetry

    telemetry = Telemetry()
    run_fleet(_specs(), chunksize=5, telemetry=telemetry)
    fleet_spans = [s for s in telemetry.spans if s.cat == "fleet"]
    assert len(fleet_spans) == 3  # 12 sims / chunksize 5 -> 3 chunks


def test_run_sim_repeatable_and_player_mix_builds():
    spec = scenario_from_toml(PLAYERS)
    a, b = run_sim(spec), run_sim(spec)
    assert a == b
    assert a.procs == 4  # 2 mplayer + vlc decoder/output pair
    assert a.samples > 0


def test_parameter_validation():
    with pytest.raises(ValueError):
        run_fleet([], jobs=0)
    with pytest.raises(ValueError):
        run_fleet([], chunksize=0)
    assert run_fleet([]).sims == 0


ADAPTIVE = """
[scenario]
name = "adaptive"
seed = 21
horizon_ms = 1500.0
miss_threshold_ms = 5.0

[scheduler]
kind = "cbs"
policy = "hard"

[controller]
law = "lfspp"
spread = 0.15
sampling_period_ms = 100.0

[[workload]]
kind = "mplayer"
name = "mp3"
adaptive = true

[[workload]]
kind = "periodic"
name = "bg"
period_ms = 10.0
cost_ms = 1.0
budget_ms = 1.5
server_period_ms = 10.0
"""


class TestAdaptiveBuild:
    def test_adaptive_run_is_repeatable(self):
        a = run_sim(scenario_from_toml(ADAPTIVE))
        b = run_sim(scenario_from_toml(ADAPTIVE))
        assert a.to_jsonable() == b.to_jsonable()

    def test_closed_loop_never_fast_forwards(self):
        # even when explicitly requested: the controller keeps perturbing
        # the schedule, so there is no repeatable cycle to skip
        summary = run_sim(scenario_from_toml(ADAPTIVE), fast_forward=True)
        assert summary.ff_detected is False

    def test_controller_parameters_change_the_outcome(self):
        base = run_sim(scenario_from_toml(ADAPTIVE))
        wide = run_sim(
            scenario_from_toml(ADAPTIVE.replace("spread = 0.15", "spread = 0.45"))
        )
        assert base.to_jsonable() != wide.to_jsonable()

    def test_lfs_baseline_differs_from_lfspp(self):
        lfspp = run_sim(scenario_from_toml(ADAPTIVE))
        lfs = run_sim(scenario_from_toml(ADAPTIVE.replace('law = "lfspp"', 'law = "lfs"')))
        assert lfspp.to_jsonable() != lfs.to_jsonable()

    def test_adaptive_fleet_jobs_independent(self):
        specs = [
            scenario_from_toml(ADAPTIVE.replace('seed = 21', f'seed = {s}'))
            for s in (1, 2, 3, 4)
        ]
        serial = run_fleet(specs, jobs=1)
        parallel = run_fleet(specs, jobs=2)
        assert serial.digest() == parallel.digest()
