"""The fallback TOML subset parser must agree with stdlib ``tomllib``.

The fleet DSL runs on 3.10 (no ``tomllib``) through a bundled subset
parser; these tests force that code path on every interpreter and check
it against the stdlib parser wherever the stdlib is available.
"""

import pytest

from repro.fleet._toml import TomlError, load_toml

DOCUMENT = """
# fleet template exercising the whole supported subset
[template]
name = "cdn-edge"   # trailing comment
nodes = 200
seed = 0x10
ratio = 2.5
enabled = true

[scenario]
horizon_ms = 4_000.0

[[workload]]
kind = "mplayer"
name = "audio"
count = 40

[[workload]]
kind = "vlc"
name = "video"
count = 10
inline = { a = 1, b = "two" }

[grid]
"workload.audio.count" = [40, 60]
"scheduler.policy" = [
    "hard",
    "soft",  # multi-line array with comments
]

[jitter]
"workload.audio.phase_ms" = 5.0

[deep.nested.table]
key = 'literal \\ string'
escaped = "tab\\there"
"""


def test_fallback_matches_tomllib():
    tomllib = pytest.importorskip("tomllib")
    assert load_toml(DOCUMENT, force_fallback=True) == tomllib.loads(DOCUMENT)


def test_subset_features():
    doc = load_toml(DOCUMENT, force_fallback=True)
    assert doc["template"] == {
        "name": "cdn-edge",
        "nodes": 200,
        "seed": 16,
        "ratio": 2.5,
        "enabled": True,
    }
    assert [w["name"] for w in doc["workload"]] == ["audio", "video"]
    assert doc["workload"][1]["inline"] == {"a": 1, "b": "two"}
    assert doc["grid"]["workload.audio.count"] == [40, 60]
    assert doc["grid"]["scheduler.policy"] == ["hard", "soft"]
    assert doc["deep"]["nested"]["table"]["key"] == "literal \\ string"
    assert doc["deep"]["nested"]["table"]["escaped"] == "tab\there"


def test_quoted_keys_keep_dots_but_bare_keys_nest():
    doc = load_toml('[t]\n"a.b" = 1\nc.d = 2\n', force_fallback=True)
    assert doc == {"t": {"a.b": 1, "c": {"d": 2}}}


@pytest.mark.parametrize(
    "text",
    [
        "key",  # no '='
        "[unclosed\nx = 1",
        "[[half]\nx = 1",
        "x = ",  # missing value
        'x = "unterminated',
        "x = [1, 2",  # unterminated array, EOF
        "x = nonsense",
        "x = 1\nx = 2",  # duplicate key
        "[t]\nx = 1 garbage",
    ],
)
def test_malformed_documents_raise(text):
    with pytest.raises(TomlError):
        load_toml(text, force_fallback=True)


def test_error_carries_line_number():
    with pytest.raises(TomlError, match="line 3"):
        load_toml("[t]\na = 1\nb = oops\n", force_fallback=True)


def test_duplicate_keys_across_array_entries_are_fine():
    doc = load_toml("[[w]]\nkind = 1\n[[w]]\nkind = 2\n", force_fallback=True)
    assert [e["kind"] for e in doc["w"]] == [1, 2]
