"""Unit coverage of the mergeable summary machinery."""

import math
import random

import pytest

from repro.fleet.summary import (
    HIST_BINS,
    FleetAggregate,
    SimSummary,
    _bin_index,
    _merge_moments,
)


def _summary(**overrides) -> SimSummary:
    base = dict(
        name="s",
        group="",
        seed=0,
        simulated_ns=1_000,
        procs=1,
        crashes=0,
        samples=0,
        lat_total=0,
        lat_max=0,
        lat_mean=0.0,
        lat_m2=0.0,
        hist=tuple([0] * HIST_BINS),
        misses=0,
        context_switches=0,
        syscalls=0,
        busy_ns=0,
        idle_ns=0,
        cpu_ns=0,
        ff_detected=False,
        cycles_skipped=0,
        skipped_ns=0,
    )
    base.update(overrides)
    return SimSummary(**base)


def test_bin_index_bounds():
    assert _bin_index(0) == 0
    assert _bin_index(1) == 1
    assert _bin_index(2) == 2
    assert _bin_index(3) == 2
    assert _bin_index((1 << 40)) == 41
    assert _bin_index(1 << 200) == HIST_BINS - 1  # clamps


def test_merge_moments_matches_batch_welford():
    rng = random.Random(5)
    xs = [rng.randint(0, 10_000_000) for _ in range(500)]
    # split at an uneven point and merge the two halves' exact moments
    def moments(vals):
        n = len(vals)
        mean = sum(vals) / n
        m2 = sum((v - mean) ** 2 for v in vals)
        return n, mean, m2

    n, mean, m2 = _merge_moments(*moments(xs[:123]), *moments(xs[123:]))
    ref_n, ref_mean, ref_m2 = moments(xs)
    assert n == ref_n
    assert mean == pytest.approx(ref_mean, rel=1e-12)
    assert m2 == pytest.approx(ref_m2, rel=1e-9)


def test_merge_moments_empty_sides_are_exact():
    assert _merge_moments(0, 0.0, 0.0, 3, 1.5, 2.0) == (3, 1.5, 2.0)
    assert _merge_moments(3, 1.5, 2.0, 0, 0.0, 0.0) == (3, 1.5, 2.0)


def test_aggregate_fold_counts_and_groups():
    agg = FleetAggregate()
    agg.fold(_summary(group="g0", samples=2, lat_mean=5.0, misses=1, simulated_ns=10))
    agg.fold(_summary(group="g1", samples=2, lat_mean=7.0, simulated_ns=20))
    agg.fold(_summary(group="g0", simulated_ns=30))
    assert agg.sims == 3
    assert agg.samples == 4
    assert agg.misses == 1
    assert agg.simulated_ns == 60
    assert agg.lat_mean == pytest.approx(6.0)
    assert set(agg.groups) == {"g0", "g1"}
    assert agg.groups["g0"].sims == 2
    assert agg.groups["g1"].samples == 2


def test_quantile_reads_the_histogram():
    hist = [0] * HIST_BINS
    hist[3] = 90  # latencies in [4, 7]
    hist[10] = 10  # latencies in [512, 1023]
    agg = FleetAggregate()
    agg.fold(_summary(samples=100, hist=tuple(hist)))
    assert agg.quantile(0.5) == (1 << 3) - 1
    assert agg.quantile(0.99) == (1 << 10) - 1
    assert agg.quantile(1.0) == (1 << 10) - 1
    assert FleetAggregate().quantile(0.99) == 0
    with pytest.raises(ValueError):
        agg.quantile(1.5)


def test_lat_std_and_miss_rate():
    agg = FleetAggregate()
    assert agg.lat_std == 0.0
    assert agg.miss_rate == 0.0
    agg.fold(_summary(samples=5, lat_mean=10.0, lat_m2=40.0, misses=2))
    assert agg.lat_std == pytest.approx(math.sqrt(40.0 / 4))
    assert agg.miss_rate == pytest.approx(0.4)


def test_digest_is_canonical_and_sensitive():
    a, b = FleetAggregate(), FleetAggregate()
    for agg in (a, b):
        agg.fold(_summary(samples=1, lat_mean=3.0))
    assert a.digest() == b.digest()
    b.fold(_summary())
    assert a.digest() != b.digest()
