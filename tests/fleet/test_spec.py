"""Scenario-DSL round trips and the strictness of its validation.

Satellite contract: TOML -> :class:`ScenarioSpec` -> deterministic
expansion, with unknown keys and invalid enumerations rejected by
actionable errors (the message must name the bad key *and* the accepted
alternatives).
"""

import pytest

from repro.fleet import ScenarioSpec, scenario_from_dict, scenario_from_toml
from repro.fleet.spec import SpecError

SCENARIO = """
[scenario]
name = "node"
seed = 7
horizon_ms = 1500.0
miss_threshold_ms = 12.0

[scheduler]
kind = "cbs"
policy = "soft"

[[workload]]
kind = "mplayer"
name = "audio"
count = 3
cost_ms = 0.5
jitter = 0.1
budget_ms = 4.0
server_period_ms = 10.0

[[workload]]
kind = "periodic"
name = "p10"
period_ms = 10.0
cost_ms = 1.0

[fault]
plan = "mid-burst"
scale = 0.5
kind = "overload"
target = "audio"
seed = 3
"""


def test_round_trip_through_jsonable():
    spec = scenario_from_toml(SCENARIO)
    assert spec.name == "node"
    assert spec.seed == 7
    assert spec.horizon_ns == 1_500_000_000
    assert spec.miss_threshold_ns == 12_000_000
    assert spec.scheduler.kind == "cbs"
    assert spec.scheduler.policy == "soft"
    assert [w.name for w in spec.workloads] == ["audio", "p10"]
    assert spec.workloads[0].count == 3
    assert spec.workloads[0].budget_ns == 4_000_000
    assert spec.fault.plan == "mid-burst"
    assert not spec.fault.is_zero
    # the jsonable form is stable and reparses to an equal spec
    doc = spec.to_jsonable()
    assert doc == scenario_from_toml(SCENARIO).to_jsonable()
    assert spec.spec_hash() == scenario_from_toml(SCENARIO).spec_hash()


def test_parse_is_deterministic_and_hash_is_content_addressed():
    a, b = scenario_from_toml(SCENARIO), scenario_from_toml(SCENARIO)
    assert a == b
    assert a.spec_hash() == b.spec_hash()
    shifted = scenario_from_toml(SCENARIO.replace("seed = 7", "seed = 8"))
    assert shifted.spec_hash() != a.spec_hash()


def test_defaults_are_minimal():
    spec = scenario_from_dict(
        {
            "scenario": {"name": "n", "horizon_ms": 100.0},
            "workload": [{"kind": "mplayer", "name": "a"}],
        }
    )
    assert isinstance(spec, ScenarioSpec)
    assert spec.scheduler.kind == "cbs"
    assert spec.fault.is_zero
    assert spec.miss_threshold_ns == 10_000_000  # 10 ms default


class TestActionableErrors:
    def test_unknown_scenario_key(self):
        with pytest.raises(SpecError) as exc:
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0, "bogus": 1},
                    "workload": [{"kind": "mplayer", "name": "a"}],
                }
            )
        assert "bogus" in str(exc.value) and "accepted keys" in str(exc.value)

    def test_unknown_workload_key(self):
        with pytest.raises(SpecError, match="typo_ms"):
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [{"kind": "mplayer", "name": "a", "typo_ms": 5}],
                }
            )

    def test_invalid_scheduler_kind_lists_alternatives(self):
        with pytest.raises(SpecError) as exc:
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "scheduler": {"kind": "cfs"},
                    "workload": [{"kind": "mplayer", "name": "a"}],
                }
            )
        message = str(exc.value)
        assert "cfs" in message and "cbs" in message and "edf" in message

    def test_invalid_fault_plan_lists_catalogue(self):
        with pytest.raises(SpecError) as exc:
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [{"kind": "mplayer", "name": "a"}],
                    "fault": {"plan": "nope"},
                }
            )
        message = str(exc.value)
        assert "nope" in message and "mid-burst" in message

    def test_duplicate_workload_names(self):
        with pytest.raises(SpecError, match="duplicate"):
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [
                        {"kind": "mplayer", "name": "a"},
                        {"kind": "periodic", "name": "a", "period_ms": 10.0, "cost_ms": 1.0},
                    ],
                }
            )

    def test_empty_workloads(self):
        with pytest.raises(SpecError):
            scenario_from_dict({"scenario": {"name": "n", "horizon_ms": 1.0}})

    def test_periodic_requires_period(self):
        with pytest.raises(SpecError):
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [{"kind": "periodic", "name": "p", "cost_ms": 1.0}],
                }
            )


ADAPTIVE_SCENARIO = """
[scenario]
name = "adaptive"
seed = 3
horizon_ms = 500.0

[controller]
law = "lfspp"
spread = 0.2
window = 8
quantile = 0.75
sampling_period_ms = 80.0
boost = 0.1
boost_threshold = 0.3
rate_detection = true
u_lub = 0.9

[[workload]]
kind = "mplayer"
name = "mp3"
adaptive = true
"""


class TestControllerSpec:
    def test_parse_and_round_trip(self):
        spec = scenario_from_toml(ADAPTIVE_SCENARIO)
        c = spec.controller
        assert (c.law, c.spread, c.window, c.quantile) == ("lfspp", 0.2, 8, 0.75)
        assert c.sampling_period_ns == 80_000_000
        assert (c.boost, c.boost_threshold) == (0.1, 0.3)
        assert c.rate_detection is True
        assert c.u_lub == 0.9
        # the jsonable form feeds spec_hash: it must carry the controller
        assert spec.to_jsonable()["controller"]["law"] == "lfspp"
        assert spec.spec_hash() == scenario_from_toml(ADAPTIVE_SCENARIO).spec_hash()

    def test_controller_enters_the_content_hash(self):
        base = scenario_from_toml(ADAPTIVE_SCENARIO)
        other = scenario_from_toml(ADAPTIVE_SCENARIO.replace("spread = 0.2", "spread = 0.3"))
        assert base.spec_hash() != other.spec_hash()

    def test_defaults_are_the_paper_defaults(self):
        spec = scenario_from_toml(
            '[scenario]\nname = "a"\nhorizon_ms = 100.0\n[controller]\n'
            '[[workload]]\nkind = "mplayer"\nname = "m"\nadaptive = true\n'
        )
        c = spec.controller
        assert (c.law, c.spread, c.window, c.quantile) == ("lfspp", 0.15, 16, 0.9375)
        assert c.sampling_period_ns == 100_000_000
        assert c.boost_threshold == -1.0  # boost disabled, the paper baseline
        assert c.rate_detection is False

    def test_unknown_law_lists_alternatives(self):
        with pytest.raises(SpecError, match=r"unknown law.*lfspp.*lfs"):
            scenario_from_toml(ADAPTIVE_SCENARIO.replace('law = "lfspp"', 'law = "pid"'))

    def test_knob_ranges_enforced_through_the_registry(self):
        with pytest.raises(SpecError, match="quantile"):
            scenario_from_toml(
                ADAPTIVE_SCENARIO.replace("quantile = 0.75", "quantile = 1.5")
            )
        with pytest.raises(SpecError, match="sampling_period"):
            scenario_from_toml(
                ADAPTIVE_SCENARIO.replace(
                    "sampling_period_ms = 80.0", "sampling_period_ms = 0.0"
                )
            )

    def test_unknown_controller_key(self):
        with pytest.raises(SpecError, match=r"controller: unknown key\(s\) \['oops'\]"):
            scenario_from_toml(ADAPTIVE_SCENARIO + "\n[controller.oops]\n")

    def test_adaptive_workload_requires_a_controller_table(self):
        with pytest.raises(SpecError, match=r"adaptive workload\(s\).*controller"):
            scenario_from_toml(
                '[scenario]\nname = "a"\nhorizon_ms = 100.0\n'
                '[[workload]]\nkind = "mplayer"\nname = "m"\nadaptive = true\n'
            )

    def test_controller_requires_an_adaptive_workload(self):
        with pytest.raises(SpecError, match="no workload is marked"):
            scenario_from_toml(
                '[scenario]\nname = "a"\nhorizon_ms = 100.0\n[controller]\n'
                '[[workload]]\nkind = "mplayer"\nname = "m"\n'
            )

    def test_controller_requires_cbs(self):
        with pytest.raises(SpecError, match="requires scheduler kind 'cbs'"):
            scenario_from_toml(
                ADAPTIVE_SCENARIO + '\n[scheduler]\nkind = "edf"\n'
            )


EVENT_SCENARIO = ADAPTIVE_SCENARIO.replace(
    "[controller]",
    '[controller]\ntrigger = "event"\nburst_threshold = 2\n'
    "burst_window_ms = 200.0\nrefractory_ms = 40.0\nfallback_floor_ms = 300.0",
)


class TestEventTriggerSpec:
    def test_parse_and_round_trip(self):
        spec = scenario_from_toml(EVENT_SCENARIO)
        c = spec.controller
        assert c.trigger == "event"
        assert c.burst_threshold == 2
        assert c.burst_window_ns == 200_000_000
        assert c.refractory_ns == 40_000_000
        assert c.fallback_floor_ns == 300_000_000
        doc = spec.to_jsonable()["controller"]
        assert doc["trigger"] == "event"
        assert doc["burst_window_ns"] == 200_000_000
        assert spec.spec_hash() == scenario_from_toml(EVENT_SCENARIO).spec_hash()

    def test_default_trigger_is_periodic(self):
        assert scenario_from_toml(ADAPTIVE_SCENARIO).controller.trigger == "periodic"

    def test_trigger_enters_the_content_hash(self):
        periodic = scenario_from_toml(ADAPTIVE_SCENARIO)
        event = scenario_from_toml(
            ADAPTIVE_SCENARIO.replace("[controller]", '[controller]\ntrigger = "event"')
        )
        assert periodic.spec_hash() != event.spec_hash()

    def test_unknown_trigger_lists_alternatives(self):
        with pytest.raises(SpecError, match=r"trigger.*periodic.*event"):
            scenario_from_toml(
                EVENT_SCENARIO.replace('trigger = "event"', 'trigger = "hybrid"')
            )

    def test_event_knobs_validated_through_the_registry(self):
        with pytest.raises(SpecError, match="burst_threshold"):
            scenario_from_toml(
                EVENT_SCENARIO.replace("burst_threshold = 2", "burst_threshold = 0")
            )
        with pytest.raises(SpecError, match="refractory"):
            scenario_from_toml(
                EVENT_SCENARIO.replace("refractory_ms = 40.0", "refractory_ms = 0.0")
            )

    def test_refractory_must_not_exceed_floor(self):
        with pytest.raises(SpecError, match="refractory.*fallback_floor"):
            scenario_from_toml(
                EVENT_SCENARIO.replace("refractory_ms = 40.0", "refractory_ms = 400.0")
            )
