"""Scenario-DSL round trips and the strictness of its validation.

Satellite contract: TOML -> :class:`ScenarioSpec` -> deterministic
expansion, with unknown keys and invalid enumerations rejected by
actionable errors (the message must name the bad key *and* the accepted
alternatives).
"""

import pytest

from repro.fleet import ScenarioSpec, scenario_from_dict, scenario_from_toml
from repro.fleet.spec import SpecError

SCENARIO = """
[scenario]
name = "node"
seed = 7
horizon_ms = 1500.0
miss_threshold_ms = 12.0

[scheduler]
kind = "cbs"
policy = "soft"

[[workload]]
kind = "mplayer"
name = "audio"
count = 3
cost_ms = 0.5
jitter = 0.1
budget_ms = 4.0
server_period_ms = 10.0

[[workload]]
kind = "periodic"
name = "p10"
period_ms = 10.0
cost_ms = 1.0

[fault]
plan = "mid-burst"
scale = 0.5
kind = "overload"
target = "audio"
seed = 3
"""


def test_round_trip_through_jsonable():
    spec = scenario_from_toml(SCENARIO)
    assert spec.name == "node"
    assert spec.seed == 7
    assert spec.horizon_ns == 1_500_000_000
    assert spec.miss_threshold_ns == 12_000_000
    assert spec.scheduler.kind == "cbs"
    assert spec.scheduler.policy == "soft"
    assert [w.name for w in spec.workloads] == ["audio", "p10"]
    assert spec.workloads[0].count == 3
    assert spec.workloads[0].budget_ns == 4_000_000
    assert spec.fault.plan == "mid-burst"
    assert not spec.fault.is_zero
    # the jsonable form is stable and reparses to an equal spec
    doc = spec.to_jsonable()
    assert doc == scenario_from_toml(SCENARIO).to_jsonable()
    assert spec.spec_hash() == scenario_from_toml(SCENARIO).spec_hash()


def test_parse_is_deterministic_and_hash_is_content_addressed():
    a, b = scenario_from_toml(SCENARIO), scenario_from_toml(SCENARIO)
    assert a == b
    assert a.spec_hash() == b.spec_hash()
    shifted = scenario_from_toml(SCENARIO.replace("seed = 7", "seed = 8"))
    assert shifted.spec_hash() != a.spec_hash()


def test_defaults_are_minimal():
    spec = scenario_from_dict(
        {
            "scenario": {"name": "n", "horizon_ms": 100.0},
            "workload": [{"kind": "mplayer", "name": "a"}],
        }
    )
    assert isinstance(spec, ScenarioSpec)
    assert spec.scheduler.kind == "cbs"
    assert spec.fault.is_zero
    assert spec.miss_threshold_ns == 10_000_000  # 10 ms default


class TestActionableErrors:
    def test_unknown_scenario_key(self):
        with pytest.raises(SpecError) as exc:
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0, "bogus": 1},
                    "workload": [{"kind": "mplayer", "name": "a"}],
                }
            )
        assert "bogus" in str(exc.value) and "accepted keys" in str(exc.value)

    def test_unknown_workload_key(self):
        with pytest.raises(SpecError, match="typo_ms"):
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [{"kind": "mplayer", "name": "a", "typo_ms": 5}],
                }
            )

    def test_invalid_scheduler_kind_lists_alternatives(self):
        with pytest.raises(SpecError) as exc:
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "scheduler": {"kind": "cfs"},
                    "workload": [{"kind": "mplayer", "name": "a"}],
                }
            )
        message = str(exc.value)
        assert "cfs" in message and "cbs" in message and "edf" in message

    def test_invalid_fault_plan_lists_catalogue(self):
        with pytest.raises(SpecError) as exc:
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [{"kind": "mplayer", "name": "a"}],
                    "fault": {"plan": "nope"},
                }
            )
        message = str(exc.value)
        assert "nope" in message and "mid-burst" in message

    def test_duplicate_workload_names(self):
        with pytest.raises(SpecError, match="duplicate"):
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [
                        {"kind": "mplayer", "name": "a"},
                        {"kind": "periodic", "name": "a", "period_ms": 10.0, "cost_ms": 1.0},
                    ],
                }
            )

    def test_empty_workloads(self):
        with pytest.raises(SpecError):
            scenario_from_dict({"scenario": {"name": "n", "horizon_ms": 1.0}})

    def test_periodic_requires_period(self):
        with pytest.raises(SpecError):
            scenario_from_dict(
                {
                    "scenario": {"name": "n", "horizon_ms": 1.0},
                    "workload": [{"kind": "periodic", "name": "p", "cost_ms": 1.0}],
                }
            )
