"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import _parse_overrides, main


class TestOverrideParsing:
    def test_literals(self):
        assert _parse_overrides(["reps=10", "x=0.5"]) == {"reps": 10, "x": 0.5}

    def test_tuples(self):
        assert _parse_overrides(["horizons_s=(1.0,2.0)"]) == {"horizons_s": (1.0, 2.0)}

    def test_strings_fall_through(self):
        assert _parse_overrides(["name=qtrace"]) == {"name": "qtrace"}

    def test_missing_equals_rejected(self):
        with pytest.raises(SystemExit):
            _parse_overrides(["oops"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "tab03" in out

    def test_run_fig01(self, capsys):
        assert main(["run", "fig01", "t_step_ms=20.0"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out
        assert "min_bandwidth" in out

    def test_run_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_run_with_csv_export(self, tmp_path, capsys):
        out_path = tmp_path / "fig01.csv"
        assert main(["run", "fig01", "t_step_ms=20.0", "--csv", str(out_path)]) == 0
        text = out_path.read_text()
        assert "server_period_ms" in text
        assert "series,min_bandwidth" in text

    def test_list_includes_ablations(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "abl-smp" in out and "abl-detector" in out

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])
